//! The View side: turning unit beans into [`presentation::UnitContent`].
//!
//! This is the job §3 assigns to custom tags: "transforming the content
//! stored in the unit beans into HTML". The conversion resolves the page's
//! navigable links into concrete hrefs (row anchors, form actions, pager
//! links) using the controller-mapped URLs — templates never embed control
//! logic (§3's first key issue).

use crate::beans::{BeanRow, NestedBeanRow, UnitBean};
use crate::request::build_url;
use crate::services::ParamMap;
use descriptors::{DescriptorSet, PageDescriptor, ParamBinding, UnitDescriptor, UnitLinkSpec};
use presentation::{
    AnchorRef, ContentBody, ContentRow, FormContent, FormField, NestedRow, Pager, UnitContent,
};
use relstore::Value;

/// Resolve one link parameter against a row.
fn row_param(p: &ParamBinding, row: &BeanRow) -> Option<(String, String)> {
    match p.source_kind.as_str() {
        "oid" => row.oid().map(|oid| (p.name.clone(), oid.to_string())),
        "attribute" => row.get(&p.source).map(|v| (p.name.clone(), v.render())),
        "constant" => Some((p.name.clone(), p.source.clone())),
        _ => None,
    }
}

/// Build the href of a link for one row.
fn row_href(link: &UnitLinkSpec, row: &BeanRow) -> String {
    let params: Vec<(String, String)> = link
        .params
        .iter()
        .filter_map(|p| row_param(p, row))
        .collect();
    build_url(&link.target_url, &params)
}

fn display_pairs(row: &BeanRow) -> Vec<(String, String)> {
    row.values
        .iter()
        .filter(|(n, _)| !n.eq_ignore_ascii_case("oid"))
        .map(|(n, v)| (n.clone(), v.render()))
        .collect()
}

fn nested_rows(rows: &[NestedBeanRow], link: Option<&UnitLinkSpec>) -> Vec<NestedRow> {
    rows.iter()
        .map(|r| {
            let is_leaf = r.children.is_empty();
            NestedRow {
                fields: display_pairs(&r.row),
                anchor: match (is_leaf, link) {
                    (true, Some(l)) => Some(AnchorRef {
                        href: row_href(l, &r.row),
                        label: l.label.clone(),
                    }),
                    _ => None,
                },
                children: nested_rows(&r.children, link),
            }
        })
        .collect()
}

/// Convert a computed bean into renderable content.
///
/// `request_params` feeds pager links and form hidden fields so navigation
/// preserves page context.
pub fn unit_content(
    desc: &UnitDescriptor,
    page: &PageDescriptor,
    bean: &UnitBean,
    request_params: &ParamMap,
) -> UnitContent {
    let links: Vec<&UnitLinkSpec> = page.links.iter().filter(|l| l.from == desc.id).collect();
    let primary = links.first().copied();
    let mut actions = Vec::new();

    let body = match bean {
        UnitBean::Single(row) => {
            // unit-level actions: every outgoing link of a data unit,
            // parameterised by its single instance
            if let Some(r) = row {
                for l in &links {
                    actions.push(AnchorRef {
                        href: row_href(l, r),
                        label: if l.label.is_empty() {
                            l.target_url.clone()
                        } else {
                            l.label.clone()
                        },
                    });
                }
            }
            ContentBody::Single(row.as_ref().map(display_pairs).unwrap_or_default())
        }
        UnitBean::Rows { rows, .. } => {
            let multichoice = desc.unit_type == "multichoice";
            ContentBody::Rows(
                rows.iter()
                    .map(|r| ContentRow {
                        fields: display_pairs(r),
                        anchor: primary.map(|l| AnchorRef {
                            href: row_href(l, r),
                            label: l.label.clone(),
                        }),
                        checkbox: if multichoice {
                            r.oid().map(|o| o.to_string())
                        } else {
                            None
                        },
                    })
                    .collect(),
            )
        }
        UnitBean::Nested(rows) => ContentBody::Nested(nested_rows(rows, primary)),
        UnitBean::Form => {
            let action = primary
                .map(|l| l.target_url.clone())
                .unwrap_or_else(|| page.url.clone());
            // fields named after the link parameters they feed, so the
            // target receives them under the names it expects
            let mut fields = Vec::new();
            for f in &desc.fields {
                let param_name = primary
                    .and_then(|l| {
                        l.params
                            .iter()
                            .find(|p| p.source_kind == "field" && p.source == f.name)
                    })
                    .map(|p| p.name.clone())
                    .unwrap_or_else(|| f.name.clone());
                fields.push(FormField {
                    name: param_name,
                    label: f.name.clone(),
                    input_type: match f.field_type.as_str() {
                        "Integer" | "Float" => "number".into(),
                        "Boolean" => "checkbox".into(),
                        "Date" => "date".into(),
                        _ => "text".into(),
                    },
                    required: f.required,
                    pattern: f.pattern.clone(),
                });
            }
            // propagate constant/oid link params as hidden inputs
            let hidden: Vec<(String, String)> = primary
                .map(|l| {
                    l.params
                        .iter()
                        .filter_map(|p| match p.source_kind.as_str() {
                            "constant" => Some((p.name.clone(), p.source.clone())),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default();
            ContentBody::Form(FormContent {
                action,
                fields,
                submit_label: primary
                    .map(|l| l.label.clone())
                    .filter(|l| !l.is_empty())
                    .unwrap_or_else(|| "Submit".into()),
                hidden,
            })
        }
        UnitBean::Raw(html) => ContentBody::Raw(html.clone()),
    };

    // scroller pager
    let pager = match (bean, desc.block_size) {
        (UnitBean::Rows { rows, total }, Some(block)) if desc.unit_type == "scroller" => {
            let offset = request_params
                .get("block_offset")
                .and_then(|v| match v {
                    Value::Integer(i) => Some(*i as usize),
                    Value::Text(s) => s.parse().ok(),
                    _ => None,
                })
                .unwrap_or(0);
            let mk = |off: usize| {
                let mut params: Vec<(String, String)> = request_params
                    .iter()
                    .filter(|(k, _)| k.as_str() != "block_offset")
                    .map(|(k, v)| (k.clone(), v.render()))
                    .collect();
                params.push(("block_offset".into(), off.to_string()));
                build_url(&page.url, &params)
            };
            Some(Pager {
                prev: (offset > 0).then(|| mk(offset.saturating_sub(block))),
                next: (offset + rows.len() < *total).then(|| mk(offset + block)),
                position: if *total == 0 {
                    "0 of 0".into()
                } else {
                    format!("{}-{} of {}", offset + 1, offset + rows.len(), total)
                },
            })
        }
        _ => None,
    };

    UnitContent {
        unit: desc.id.clone(),
        unit_type: desc.unit_type.clone(),
        title: desc.name.clone(),
        body,
        pager,
        actions,
    }
}

/// Global navigation of a site view: its landmark pages.
///
/// Renders into one reused buffer: every landmark appends in place via
/// [`presentation::escape_html_into`] instead of minting per-row `format!`
/// temporaries (the allocation-churn bug this renderer used to have).
pub fn navigation_html(set: &DescriptorSet, site_view: &str, current: &str) -> String {
    let mut out = String::from("<nav class=\"landmarks\">");
    for p in set
        .pages
        .iter()
        .filter(|p| p.site_view == site_view && p.landmark)
    {
        if p.id == current {
            out.push_str("<span class=\"current\">");
            presentation::escape_html_into(&mut out, &p.name);
            out.push_str("</span> ");
        } else {
            out.push_str("<a href=\"");
            out.push_str(&p.url);
            out.push_str("\">");
            presentation::escape_html_into(&mut out, &p.name);
            out.push_str("</a> ");
        }
    }
    out.push_str("</nav>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use descriptors::{ControllerConfig, FieldSpec, QuerySpec};

    fn page(links: Vec<UnitLinkSpec>) -> PageDescriptor {
        PageDescriptor {
            id: "page0".into(),
            name: "P".into(),
            site_view: "sv".into(),
            url: "/sv/p".into(),
            units: vec!["unit0".into()],
            edges: vec![],
            links,
            request_params: vec![],
            layout: "single-column".into(),
            template: "t.jsp".into(),
            landmark: false,
            protected: false,
        }
    }

    fn desc(unit_type: &str) -> UnitDescriptor {
        UnitDescriptor {
            id: "unit0".into(),
            name: "My unit".into(),
            unit_type: unit_type.into(),
            page: "page0".into(),
            entity_table: Some("t".into()),
            queries: vec![QuerySpec {
                name: "main".into(),
                sql: String::new(),
                inputs: vec![],
                bean: vec![],
            }],
            block_size: None,
            fields: vec![],
            optimized: false,
            service: String::new(),
            depends_on: vec![],
            cache: None,
        }
    }

    fn link(params: Vec<ParamBinding>) -> UnitLinkSpec {
        UnitLinkSpec {
            from: "unit0".into(),
            target_url: "/sv/detail".into(),
            label: "open".into(),
            params,
        }
    }

    fn oid_param() -> ParamBinding {
        ParamBinding {
            name: "item".into(),
            source_kind: "oid".into(),
            source: String::new(),
        }
    }

    fn row(oid: i64, title: &str) -> BeanRow {
        BeanRow {
            values: vec![
                ("oid".into(), Value::Integer(oid)),
                ("title".into(), Value::Text(title.into())),
            ],
        }
    }

    #[test]
    fn index_rows_get_anchors_with_oid() {
        let d = desc("index");
        let p = page(vec![link(vec![oid_param()])]);
        let bean = UnitBean::Rows {
            rows: vec![row(1, "a"), row(2, "b")],
            total: 2,
        };
        let c = unit_content(&d, &p, &bean, &ParamMap::new());
        let ContentBody::Rows(rows) = &c.body else {
            panic!()
        };
        assert_eq!(rows[0].anchor.as_ref().unwrap().href, "/sv/detail?item=1");
        assert_eq!(rows[1].anchor.as_ref().unwrap().href, "/sv/detail?item=2");
        // oid never shows as a field
        assert_eq!(rows[0].fields, vec![("title".to_string(), "a".to_string())]);
    }

    #[test]
    fn multichoice_rows_get_checkboxes() {
        let mut d = desc("multichoice");
        d.unit_type = "multichoice".into();
        let p = page(vec![]);
        let bean = UnitBean::Rows {
            rows: vec![row(5, "x")],
            total: 1,
        };
        let c = unit_content(&d, &p, &bean, &ParamMap::new());
        let ContentBody::Rows(rows) = &c.body else {
            panic!()
        };
        assert_eq!(rows[0].checkbox.as_deref(), Some("5"));
    }

    #[test]
    fn data_unit_exposes_actions() {
        let d = desc("data");
        let p = page(vec![link(vec![oid_param()])]);
        let bean = UnitBean::Single(Some(row(7, "TODS")));
        let c = unit_content(&d, &p, &bean, &ParamMap::new());
        assert_eq!(c.actions.len(), 1);
        assert_eq!(c.actions[0].href, "/sv/detail?item=7");
        let ContentBody::Single(fields) = &c.body else {
            panic!()
        };
        assert_eq!(fields.len(), 1);
    }

    #[test]
    fn hierarchy_anchors_on_leaves_only() {
        let d = desc("hierarchy");
        let p = page(vec![link(vec![oid_param()])]);
        let bean = UnitBean::Nested(vec![NestedBeanRow {
            row: row(1, "issue"),
            children: vec![NestedBeanRow {
                row: row(2, "paper"),
                children: vec![],
            }],
        }]);
        let c = unit_content(&d, &p, &bean, &ParamMap::new());
        let ContentBody::Nested(rows) = &c.body else {
            panic!()
        };
        assert!(rows[0].anchor.is_none());
        assert_eq!(
            rows[0].children[0].anchor.as_ref().unwrap().href,
            "/sv/detail?item=2"
        );
    }

    #[test]
    fn form_fields_renamed_to_link_params() {
        let mut d = desc("entry");
        d.fields = vec![FieldSpec {
            name: "keyword".into(),
            field_type: "String".into(),
            required: true,
            pattern: None,
        }];
        let p = page(vec![link(vec![ParamBinding {
            name: "kw".into(),
            source_kind: "field".into(),
            source: "keyword".into(),
        }])]);
        let c = unit_content(&d, &p, &UnitBean::Form, &ParamMap::new());
        let ContentBody::Form(f) = &c.body else {
            panic!()
        };
        assert_eq!(f.action, "/sv/detail");
        assert_eq!(f.fields[0].name, "kw");
        assert_eq!(f.fields[0].label, "keyword");
        assert!(f.fields[0].required);
    }

    #[test]
    fn scroller_pager_links_preserve_params() {
        let mut d = desc("scroller");
        d.block_size = Some(10);
        let p = page(vec![]);
        let bean = UnitBean::Rows {
            rows: (0..10).map(|i| row(i, "x")).collect(),
            total: 25,
        };
        let mut params = ParamMap::new();
        params.insert("block_offset".into(), Value::Integer(10));
        params.insert("category".into(), Value::Text("notebooks".into()));
        let c = unit_content(&d, &p, &bean, &params);
        let pager = c.pager.unwrap();
        assert_eq!(pager.position, "11-20 of 25");
        assert!(pager.prev.unwrap().contains("block_offset=0"));
        let next = pager.next.unwrap();
        assert!(next.contains("block_offset=20"));
        assert!(next.contains("category=notebooks"));
    }

    #[test]
    fn navigation_marks_current_page() {
        let mut p1 = page(vec![]);
        p1.landmark = true;
        let mut p2 = page(vec![]);
        p2.id = "page1".into();
        p2.name = "Other".into();
        p2.url = "/sv/other".into();
        p2.landmark = true;
        let set = DescriptorSet {
            units: vec![],
            pages: vec![p1, p2],
            operations: vec![],
            controller: ControllerConfig::default(),
        };
        let nav = navigation_html(&set, "sv", "page0");
        assert!(nav.contains("<span class=\"current\">P</span>"));
        assert!(nav.contains("<a href=\"/sv/other\">Other</a>"));
    }

    #[test]
    fn navigation_reuses_one_buffer_instead_of_per_row_temporaries() {
        // 32 landmark pages: the old renderer minted >=2 format!/escape
        // temporaries per landmark (>=64 allocations); the reused-buffer
        // form only pays for growth of the single output String.
        let landmarks = 32;
        let pages: Vec<PageDescriptor> = (0..landmarks)
            .map(|i| {
                let mut p = page(vec![]);
                p.id = format!("page{i}");
                p.name = format!("Page & {i}");
                p.url = format!("/sv/p{i}");
                p.landmark = true;
                p
            })
            .collect();
        let set = DescriptorSet {
            units: vec![],
            pages,
            operations: vec![],
            controller: ControllerConfig::default(),
        };
        // warm-up outside the measured window (lazy runtime init)
        let warm = navigation_html(&set, "sv", "page0");
        assert!(warm.contains("Page &amp; 31"));
        let (allocs, nav) =
            crate::alloc_counter::allocations_during(|| navigation_html(&set, "sv", "page0"));
        assert_eq!(nav, warm);
        assert!(
            allocs < landmarks,
            "navigation_html allocated {allocs} times for {landmarks} landmarks \
             (per-row temporaries are back)"
        );
    }
}
