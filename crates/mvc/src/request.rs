//! Transport-independent request/response types.
//!
//! The `httpd` crate adapts real HTTP traffic onto these; tests and
//! benches drive the controller directly with them.

use std::collections::BTreeMap;

/// A request entering the Controller.
#[derive(Debug, Clone, Default)]
pub struct WebRequest {
    /// Path without query string, e.g. `/acmdl/volume_page`.
    pub path: String,
    /// Decoded query/form parameters (sorted map: deterministic
    /// fingerprints for caching).
    pub params: BTreeMap<String, String>,
    /// Session cookie, if any.
    pub session: Option<String>,
    /// User-Agent header (drives §5 device adaptation).
    pub user_agent: String,
    /// `If-None-Match` header: the validator of a conditional GET. When
    /// it matches the page's current `ETag`, the controller answers
    /// `304 Not Modified` without computing the page.
    pub if_none_match: Option<String>,
}

impl WebRequest {
    pub fn get(path: impl Into<String>) -> WebRequest {
        WebRequest {
            path: path.into(),
            ..WebRequest::default()
        }
    }

    pub fn with_param(mut self, name: impl Into<String>, value: impl Into<String>) -> WebRequest {
        self.params.insert(name.into(), value.into());
        self
    }

    pub fn with_session(mut self, sid: impl Into<String>) -> WebRequest {
        self.session = Some(sid.into());
        self
    }

    pub fn with_user_agent(mut self, ua: impl Into<String>) -> WebRequest {
        self.user_agent = ua.into();
        self
    }

    pub fn with_if_none_match(mut self, etag: impl Into<String>) -> WebRequest {
        self.if_none_match = Some(etag.into());
        self
    }

    /// Stable fingerprint of the parameters (cache keys).
    pub fn params_fingerprint(&self) -> String {
        let mut s = String::new();
        for (k, v) in &self.params {
            s.push_str(k);
            s.push('=');
            s.push_str(v);
            s.push('&');
        }
        s
    }
}

/// The response leaving the Controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebResponse {
    pub status: u16,
    pub content_type: String,
    pub body: String,
    /// Session id to set as a cookie, if a new session was created.
    pub set_session: Option<String>,
    /// Strong entity tag derived from the page's dependency versions;
    /// `None` when conditional GET is disabled.
    pub etag: Option<String>,
}

impl WebResponse {
    pub fn html(body: String) -> WebResponse {
        WebResponse {
            status: 200,
            content_type: "text/html; charset=utf-8".into(),
            body,
            set_session: None,
            etag: None,
        }
    }

    pub fn not_found(path: &str) -> WebResponse {
        WebResponse {
            status: 404,
            content_type: "text/html; charset=utf-8".into(),
            body: format!("<html><body><h1>404</h1><p>no mapping for {path}</p></body></html>"),
            set_session: None,
            etag: None,
        }
    }

    pub fn error(status: u16, message: &str) -> WebResponse {
        WebResponse {
            status,
            content_type: "text/html; charset=utf-8".into(),
            body: format!("<html><body><h1>{status}</h1><p>{message}</p></body></html>"),
            set_session: None,
            etag: None,
        }
    }
}

/// A [`WebResponse`] whose body is still a sequence of render chunks:
/// cache-resident fragments stay `Shared` (refcounted, uncopied) and the
/// serving tier assembles the wire bytes with a vectored write. This is
/// the zero-copy exit of the Controller; [`WebResponseParts::flatten`]
/// recovers the flat form for tests and non-HTTP callers.
#[derive(Debug, Clone)]
pub struct WebResponseParts {
    pub status: u16,
    pub content_type: String,
    pub body: Vec<presentation::HtmlChunk>,
    /// Session id to set as a cookie, if a new session was created.
    pub set_session: Option<String>,
    /// Strong entity tag derived from the page's dependency versions;
    /// `None` when conditional GET is disabled.
    pub etag: Option<String>,
}

impl WebResponseParts {
    /// Wrap an already-flat body in a single owned chunk.
    pub fn from_flat(resp: WebResponse) -> WebResponseParts {
        WebResponseParts {
            status: resp.status,
            content_type: resp.content_type,
            body: vec![presentation::HtmlChunk::Owned(resp.body)],
            set_session: resp.set_session,
            etag: resp.etag,
        }
    }

    /// Total body length in bytes across all chunks.
    pub fn body_len(&self) -> usize {
        self.body.iter().map(|c| c.as_bytes().len()).sum()
    }

    /// Concatenate the chunks back into a flat [`WebResponse`] (copies —
    /// the compatibility path, not the serving path).
    pub fn flatten(self) -> WebResponse {
        let mut body = String::with_capacity(self.body_len());
        for chunk in self.body {
            match chunk {
                presentation::HtmlChunk::Owned(s) => body.push_str(&s),
                presentation::HtmlChunk::Shared(a) => body.push_str(&String::from_utf8_lossy(&a)),
            }
        }
        WebResponse {
            status: self.status,
            content_type: self.content_type,
            body,
            set_session: self.set_session,
            etag: self.etag,
        }
    }
}

/// Percent-encode a query-string component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode a percent-encoded component.
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() {
                    let hex = &s[i + 1..i + 3];
                    if let Ok(v) = u8::from_str_radix(hex, 16) {
                        out.push(v);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Build a URL with query parameters.
pub fn build_url(path: &str, params: &[(String, String)]) -> String {
    if params.is_empty() {
        return path.to_string();
    }
    let qs: Vec<String> = params
        .iter()
        .map(|(k, v)| format!("{}={}", url_encode(k), url_encode(v)))
        .collect();
    format!("{path}?{}", qs.join("&"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_independent() {
        let a = WebRequest::get("/x")
            .with_param("b", "2")
            .with_param("a", "1");
        let b = WebRequest::get("/x")
            .with_param("a", "1")
            .with_param("b", "2");
        assert_eq!(a.params_fingerprint(), b.params_fingerprint());
        assert_eq!(a.params_fingerprint(), "a=1&b=2&");
    }

    #[test]
    fn url_encode_decode_round_trip() {
        for s in ["hello world", "a=b&c", "100%", "héllo", "plain"] {
            assert_eq!(url_decode(&url_encode(s)), s);
        }
    }

    #[test]
    fn build_url_formats_query() {
        assert_eq!(build_url("/p", &[]), "/p");
        assert_eq!(build_url("/p", &[("a".into(), "1 2".into())]), "/p?a=1+2");
    }

    #[test]
    fn decode_tolerates_malformed_percent() {
        assert_eq!(url_decode("%zz"), "%zz");
        assert_eq!(url_decode("abc%"), "abc%");
    }
}
