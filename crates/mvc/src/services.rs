//! Generic unit services — Fig. 5.
//!
//! "For each type of unit, a single generic service is designed, which
//! factors out the commonalities of unit-specific services. This generic
//! service is parametric with respect to the features of individual
//! units." Eleven dedicated classes replace thousands; each interprets a
//! [`UnitDescriptor`] at runtime.
//!
//! The registry also hosts **plug-in units** (§7) and **user-supplied
//! service overrides** (§6: "each descriptor refers to the business
//! component to use for filling the content of a unit; this component can
//! be completely overridden by a user-supplied one").

use crate::beans::{BeanRow, NestedBeanRow, UnitBean};
use crate::error::{MvcError, Result};
use descriptors::{QuerySpec, UnitDescriptor};
use relstore::{Database, Params, ResultSet, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Parameters flowing into a unit or operation computation.
pub type ParamMap = BTreeMap<String, Value>;

/// Stable fingerprint of a parameter map (bean-cache keys).
pub fn fingerprint(params: &ParamMap) -> String {
    let mut s = String::new();
    for (k, v) in params {
        s.push_str(k);
        s.push('=');
        s.push_str(&v.render());
        s.push('&');
    }
    s
}

/// A business component computing one kind of unit.
pub trait UnitService: Send + Sync {
    fn compute(&self, desc: &UnitDescriptor, params: &ParamMap, db: &Database) -> Result<UnitBean>;

    /// Compute with request tracing: the default implementation wraps
    /// [`UnitService::compute`] in a `sql` span, since the generic services
    /// are query-dominated. Services that do no database work (or that want
    /// finer-grained spans) can override this; plug-ins that ignore tracing
    /// keep working unchanged.
    fn compute_traced(
        &self,
        desc: &UnitDescriptor,
        params: &ParamMap,
        db: &Database,
        ctx: &mut obs::RequestContext,
    ) -> Result<UnitBean> {
        let token = ctx.enter("sql");
        let r = self.compute(desc, params, db);
        ctx.exit(token);
        r
    }
}

/// Bind a query's named inputs from the parameter map.
fn bind(q: &QuerySpec, params: &ParamMap, unit: &str) -> Result<Params> {
    let mut out = Params::new();
    for input in &q.inputs {
        match params.get(input) {
            Some(v) => out.set(input.clone(), v.clone()),
            None => {
                return Err(MvcError::MissingParameter {
                    unit: unit.to_string(),
                    param: input.clone(),
                })
            }
        }
    }
    Ok(out)
}

/// Pack a result set into bean rows following the descriptor's bean shape
/// (all result columns when the shape is empty). Column positions are
/// resolved once per result set, not per cell.
fn pack(rs: &ResultSet, q: &QuerySpec) -> Vec<BeanRow> {
    let mut rows = Vec::with_capacity(rs.len());
    if q.bean.is_empty() {
        for row in rs.rows() {
            let values = rs
                .columns()
                .iter()
                .zip(row)
                .map(|(col, v)| (col.clone(), v.clone()))
                .collect();
            rows.push(BeanRow { values });
        }
    } else {
        let positions: Vec<(usize, Option<usize>)> = q
            .bean
            .iter()
            .enumerate()
            .map(|(i, p)| (i, rs.column_index(&p.column)))
            .collect();
        for row in rs.rows() {
            let values = positions
                .iter()
                .map(|&(i, pos)| {
                    let v = pos.map(|c| row[c].clone()).unwrap_or(Value::Null);
                    (q.bean[i].name.clone(), v)
                })
                .collect();
            rows.push(BeanRow { values });
        }
    }
    rows
}

fn main_query(desc: &UnitDescriptor) -> Result<&QuerySpec> {
    desc.main_query()
        .ok_or_else(|| MvcError::MissingDescriptor(format!("{}: main query", desc.id)))
}

/// Generic service for data units: a single instance.
pub struct GenericDataService;

impl UnitService for GenericDataService {
    fn compute(&self, desc: &UnitDescriptor, params: &ParamMap, db: &Database) -> Result<UnitBean> {
        let q = main_query(desc)?;
        let rs = db.query(&q.sql, &bind(q, params, &desc.id)?)?;
        Ok(UnitBean::Single(pack(&rs, q).into_iter().next()))
    }
}

/// Generic service for index, multidata, and multichoice units: all
/// matching rows.
pub struct GenericIndexService;

impl UnitService for GenericIndexService {
    fn compute(&self, desc: &UnitDescriptor, params: &ParamMap, db: &Database) -> Result<UnitBean> {
        let q = main_query(desc)?;
        let rs = db.query(&q.sql, &bind(q, params, &desc.id)?)?;
        let rows = pack(&rs, q);
        let total = rows.len();
        Ok(UnitBean::Rows { rows, total })
    }
}

/// Generic service for scroller units: one block of rows plus the total.
pub struct GenericScrollerService;

impl UnitService for GenericScrollerService {
    fn compute(&self, desc: &UnitDescriptor, params: &ParamMap, db: &Database) -> Result<UnitBean> {
        let q = main_query(desc)?;
        let block = desc.block_size.unwrap_or(10).max(1);
        let offset = match params.get("block_offset") {
            Some(Value::Integer(i)) if *i >= 0 => *i as usize,
            Some(Value::Text(s)) => s.parse().unwrap_or(0),
            _ => 0,
        };
        // fetch everything once (the simulated data tier is in memory),
        // then slice the requested block; `total` drives the pager
        let mut effective = params.clone();
        effective.insert("block_limit".into(), Value::Integer(i64::MAX / 2));
        effective.insert("block_offset".into(), Value::Integer(0));
        let rs = db.query(&q.sql, &bind(q, &effective, &desc.id)?)?;
        let all = pack(&rs, q);
        let total = all.len();
        let rows: Vec<BeanRow> = all.into_iter().skip(offset).take(block).collect();
        Ok(UnitBean::Rows { rows, total })
    }
}

/// Generic service for hierarchical indexes: one query per level,
/// recursively keyed by the parent oid.
pub struct GenericHierarchyService;

impl GenericHierarchyService {
    fn level(
        &self,
        desc: &UnitDescriptor,
        level: usize,
        parent_params: &ParamMap,
        db: &Database,
    ) -> Result<Vec<NestedBeanRow>> {
        let Some(q) = desc
            .queries
            .iter()
            .find(|q| q.name == format!("level{level}"))
        else {
            return Ok(Vec::new());
        };
        let rs = db.query(&q.sql, &bind(q, parent_params, &desc.id)?)?;
        let rows = pack(&rs, q);
        let mut out = Vec::with_capacity(rows.len());
        let has_next = desc
            .queries
            .iter()
            .any(|q| q.name == format!("level{}", level + 1));
        for row in rows {
            let children = if has_next {
                let mut child_params = ParamMap::new();
                if let Some(oid) = row.oid() {
                    child_params.insert("parent".into(), Value::Integer(oid));
                }
                self.level(desc, level + 1, &child_params, db)?
            } else {
                Vec::new()
            };
            out.push(NestedBeanRow { row, children });
        }
        Ok(out)
    }
}

impl UnitService for GenericHierarchyService {
    fn compute(&self, desc: &UnitDescriptor, params: &ParamMap, db: &Database) -> Result<UnitBean> {
        Ok(UnitBean::Nested(self.level(desc, 0, params, db)?))
    }
}

/// Generic service for entry units: no database work.
pub struct GenericEntryService;

impl UnitService for GenericEntryService {
    fn compute(&self, _: &UnitDescriptor, _: &ParamMap, _: &Database) -> Result<UnitBean> {
        Ok(UnitBean::Form)
    }

    fn compute_traced(
        &self,
        desc: &UnitDescriptor,
        params: &ParamMap,
        db: &Database,
        _ctx: &mut obs::RequestContext,
    ) -> Result<UnitBean> {
        // entry units issue no queries — no `sql` span
        self.compute(desc, params, db)
    }
}

/// The service registry: resolves the business component named in a
/// descriptor, supporting overrides and plug-ins.
pub struct ServiceRegistry {
    by_name: HashMap<String, Arc<dyn UnitService>>,
    /// Fallback per unit type when the descriptor names an unknown
    /// component.
    by_type: HashMap<String, Arc<dyn UnitService>>,
}

impl ServiceRegistry {
    /// Registry with the standard generic services registered under both
    /// their component names and their unit types.
    pub fn standard() -> ServiceRegistry {
        let mut r = ServiceRegistry {
            by_name: HashMap::new(),
            by_type: HashMap::new(),
        };
        let data: Arc<dyn UnitService> = Arc::new(GenericDataService);
        let index: Arc<dyn UnitService> = Arc::new(GenericIndexService);
        let scroller: Arc<dyn UnitService> = Arc::new(GenericScrollerService);
        let hierarchy: Arc<dyn UnitService> = Arc::new(GenericHierarchyService);
        let entry: Arc<dyn UnitService> = Arc::new(GenericEntryService);
        r.register("GenericDataService", "data", Arc::clone(&data));
        r.register("GenericIndexService", "index", Arc::clone(&index));
        r.register("GenericMultidataService", "multidata", Arc::clone(&index));
        r.register(
            "GenericMultichoiceService",
            "multichoice",
            Arc::clone(&index),
        );
        r.register("GenericScrollerService", "scroller", scroller);
        r.register("GenericHierarchyService", "hierarchy", hierarchy);
        r.register("GenericEntryService", "entry", entry);
        r
    }

    /// Register a service under a component name and unit type.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        unit_type: impl Into<String>,
        service: Arc<dyn UnitService>,
    ) {
        self.by_name.insert(name.into(), Arc::clone(&service));
        self.by_type.insert(unit_type.into(), service);
    }

    /// Register a user override by component name only (§6).
    pub fn register_override(&mut self, name: impl Into<String>, service: Arc<dyn UnitService>) {
        self.by_name.insert(name.into(), service);
    }

    /// Resolve the component for a descriptor: by component name first,
    /// then by unit type.
    pub fn resolve(&self, desc: &UnitDescriptor) -> Result<Arc<dyn UnitService>> {
        self.by_name
            .get(&desc.service)
            .or_else(|| self.by_type.get(&desc.unit_type))
            .cloned()
            .ok_or_else(|| MvcError::NoService(desc.service.clone()))
    }

    /// Number of distinct registered service components (the "11 unit
    /// services" count of §8).
    pub fn service_count(&self) -> usize {
        self.by_name.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use descriptors::BeanProperty;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE volume (oid INTEGER PRIMARY KEY AUTOINCREMENT, title TEXT NOT NULL);
             CREATE TABLE issue (oid INTEGER PRIMARY KEY AUTOINCREMENT, number INTEGER, volume_oid INTEGER);
             CREATE INDEX ix ON issue (volume_oid);",
        )
        .unwrap();
        for i in 1..=3 {
            db.execute(
                "INSERT INTO volume (title) VALUES (:t)",
                &Params::new().bind("t", format!("Vol {i}")),
            )
            .unwrap();
        }
        for v in 1..=3i64 {
            for n in 1..=2i64 {
                db.execute(
                    "INSERT INTO issue (number, volume_oid) VALUES (:n, :v)",
                    &Params::new().bind("n", n).bind("v", v),
                )
                .unwrap();
            }
        }
        db
    }

    fn desc(id: &str, unit_type: &str, service: &str, queries: Vec<QuerySpec>) -> UnitDescriptor {
        UnitDescriptor {
            id: id.into(),
            name: id.into(),
            unit_type: unit_type.into(),
            page: "page0".into(),
            entity_table: Some("volume".into()),
            queries,
            block_size: None,
            fields: vec![],
            optimized: false,
            service: service.into(),
            depends_on: vec!["volume".into()],
            cache: None,
        }
    }

    fn q(name: &str, sql: &str, inputs: &[&str]) -> QuerySpec {
        QuerySpec {
            name: name.into(),
            sql: sql.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            bean: vec![],
        }
    }

    #[test]
    fn data_service_returns_single() {
        let db = db();
        let d = desc(
            "u1",
            "data",
            "GenericDataService",
            vec![q(
                "main",
                "SELECT t.oid, t.title FROM volume t WHERE t.oid = :oid",
                &["oid"],
            )],
        );
        let mut p = ParamMap::new();
        p.insert("oid".into(), Value::Integer(2));
        let b = GenericDataService.compute(&d, &p, &db).unwrap();
        let UnitBean::Single(Some(row)) = b else {
            panic!("expected single row")
        };
        assert_eq!(row.get("title"), Some(&Value::Text("Vol 2".into())));
    }

    #[test]
    fn data_service_empty_on_no_match() {
        let db = db();
        let d = desc(
            "u1",
            "data",
            "GenericDataService",
            vec![q(
                "main",
                "SELECT t.oid FROM volume t WHERE t.oid = :oid",
                &["oid"],
            )],
        );
        let mut p = ParamMap::new();
        p.insert("oid".into(), Value::Integer(99));
        assert_eq!(
            GenericDataService.compute(&d, &p, &db).unwrap(),
            UnitBean::Single(None)
        );
    }

    #[test]
    fn missing_parameter_is_reported() {
        let db = db();
        let d = desc(
            "u1",
            "data",
            "GenericDataService",
            vec![q(
                "main",
                "SELECT t.oid FROM volume t WHERE t.oid = :oid",
                &["oid"],
            )],
        );
        let err = GenericDataService
            .compute(&d, &ParamMap::new(), &db)
            .unwrap_err();
        assert!(matches!(err, MvcError::MissingParameter { .. }));
    }

    #[test]
    fn index_service_returns_all_rows() {
        let db = db();
        let d = desc(
            "u2",
            "index",
            "GenericIndexService",
            vec![q(
                "main",
                "SELECT t.oid, t.title FROM volume t ORDER BY t.oid",
                &[],
            )],
        );
        let b = GenericIndexService
            .compute(&d, &ParamMap::new(), &db)
            .unwrap();
        let UnitBean::Rows { rows, total } = b else {
            panic!()
        };
        assert_eq!(rows.len(), 3);
        assert_eq!(total, 3);
    }

    #[test]
    fn scroller_slices_blocks() {
        let db = db();
        let mut d = desc(
            "u3",
            "scroller",
            "GenericScrollerService",
            vec![q(
                "main",
                "SELECT t.oid FROM issue t ORDER BY t.oid LIMIT :block_limit OFFSET :block_offset",
                &["block_limit", "block_offset"],
            )],
        );
        d.block_size = Some(4);
        let mut p = ParamMap::new();
        p.insert("block_offset".into(), Value::Integer(4));
        let b = GenericScrollerService.compute(&d, &p, &db).unwrap();
        let UnitBean::Rows { rows, total } = b else {
            panic!()
        };
        assert_eq!(total, 6);
        assert_eq!(rows.len(), 2); // last block of 6 with offset 4
        assert_eq!(rows[0].oid(), Some(5));
    }

    #[test]
    fn hierarchy_nests_children() {
        let db = db();
        let d = desc(
            "u4",
            "hierarchy",
            "GenericHierarchyService",
            vec![
                q(
                    "level0",
                    "SELECT t.oid, t.title FROM volume t ORDER BY t.oid",
                    &[],
                ),
                q(
                    "level1",
                    "SELECT t.oid, t.number FROM issue t WHERE t.volume_oid = :parent ORDER BY t.oid",
                    &["parent"],
                ),
            ],
        );
        let b = GenericHierarchyService
            .compute(&d, &ParamMap::new(), &db)
            .unwrap();
        let UnitBean::Nested(rows) = b else { panic!() };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].children.len(), 2);
        assert_eq!(
            rows[0].children[0].row.get("number"),
            Some(&Value::Integer(1))
        );
    }

    #[test]
    fn bean_shape_renames_columns() {
        let db = db();
        let d = desc(
            "u5",
            "data",
            "GenericDataService",
            vec![QuerySpec {
                name: "main".into(),
                sql: "SELECT t.oid, t.title FROM volume t WHERE t.oid = :oid".into(),
                inputs: vec!["oid".into()],
                bean: vec![BeanProperty {
                    name: "displayTitle".into(),
                    column: "title".into(),
                    attr_type: "String".into(),
                }],
            }],
        );
        let mut p = ParamMap::new();
        p.insert("oid".into(), Value::Integer(1));
        let UnitBean::Single(Some(row)) = GenericDataService.compute(&d, &p, &db).unwrap() else {
            panic!()
        };
        assert_eq!(row.values.len(), 1);
        assert_eq!(row.get("displayTitle"), Some(&Value::Text("Vol 1".into())));
    }

    #[test]
    fn registry_resolves_and_overrides() {
        let mut r = ServiceRegistry::standard();
        let d = desc("u", "index", "GenericIndexService", vec![]);
        assert!(r.resolve(&d).is_ok());
        // unknown component name falls back to the unit type
        let d2 = desc("u", "index", "SomethingElse", vec![]);
        assert!(r.resolve(&d2).is_ok());
        // user override (§6)
        struct Custom;
        impl UnitService for Custom {
            fn compute(&self, _: &UnitDescriptor, _: &ParamMap, _: &Database) -> Result<UnitBean> {
                Ok(UnitBean::Raw("<custom/>".into()))
            }
        }
        r.register_override("MyTunedService", Arc::new(Custom));
        let d3 = desc("u", "index", "MyTunedService", vec![]);
        let db = db();
        assert_eq!(
            r.resolve(&d3)
                .unwrap()
                .compute(&d3, &ParamMap::new(), &db)
                .unwrap(),
            UnitBean::Raw("<custom/>".into())
        );
        // unknown type + unknown name fails
        let d4 = desc("u", "weird", "Nope", vec![]);
        assert!(matches!(r.resolve(&d4), Err(MvcError::NoService(_))));
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let mut a = ParamMap::new();
        a.insert("b".into(), Value::Integer(2));
        a.insert("a".into(), Value::Text("x".into()));
        assert_eq!(fingerprint(&a), "a=x&b=2&");
    }
}
