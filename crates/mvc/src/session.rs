//! Session-level state (§1: "session-level information and
//! personalization aspects").
//!
//! Hardened for long-running serving: session ids mix a per-process
//! random nonce through SipHash (so `sess-00000001`-style guessing finds
//! nothing), every entry carries a last-access stamp, and an
//! opportunistic TTL sweep reaps idle sessions so the store no longer
//! grows without bound. Expired or forged ids presented by a client
//! simply mint a fresh session — never an error.

use obs::Counter;
use parking_lot::Mutex;
use relstore::Value;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle time after which a session is reaped by the TTL sweep.
pub const DEFAULT_SESSION_TTL: Duration = Duration::from_secs(30 * 60);

/// One user session: variables plus the authenticated principal.
#[derive(Debug, Clone, Default)]
pub struct Session {
    pub vars: HashMap<String, Value>,
    /// oid of the logged-in user row, when authenticated.
    pub user: Option<i64>,
    /// Group of the logged-in user (drives site-view protection).
    pub group: Option<String>,
}

struct SessionEntry {
    session: Arc<Mutex<Session>>,
    last_access: Instant,
}

/// Thread-safe session store keyed by opaque session ids, bounded in time
/// by a TTL sweep.
pub struct SessionManager {
    sessions: Mutex<HashMap<String, SessionEntry>>,
    counter: AtomicU64,
    /// Per-process random nonce mixed into every id (sourced from the
    /// std `RandomState` per-process hash keys — no external RNG dep).
    nonce: u64,
    ttl: Duration,
    /// Next time the opportunistic sweep may run.
    next_sweep: Mutex<Instant>,
    /// Sessions reaped by the TTL sweep (typically a clone of
    /// `obs::MetricsRegistry::sessions_expired`).
    expired: Arc<Counter>,
}

impl Default for SessionManager {
    fn default() -> SessionManager {
        SessionManager::new()
    }
}

fn process_nonce() -> u64 {
    // RandomState's hash keys are seeded randomly once per process; a
    // hasher built from a fresh RandomState therefore yields a value an
    // outside client cannot predict, without pulling in an RNG crate.
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(std::process::id() as u64);
    if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        h.write_u128(t.as_nanos());
    }
    h.finish()
}

impl SessionManager {
    pub fn new() -> SessionManager {
        Self::with_config(DEFAULT_SESSION_TTL, Arc::new(Counter::new()))
    }

    /// Full-control constructor: idle TTL plus the counter the sweep
    /// reports into (pass `registry.sessions_expired.clone()` to surface
    /// evictions at `/metrics`).
    pub fn with_config(ttl: Duration, expired: Arc<Counter>) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            counter: AtomicU64::new(0),
            nonce: process_nonce(),
            ttl,
            next_sweep: Mutex::new(Instant::now()),
            expired,
        }
    }

    /// The configured idle TTL.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Sessions reaped by the TTL sweep so far.
    pub fn expired_total(&self) -> u64 {
        self.expired.get()
    }

    fn mint_id(&self, n: u64) -> String {
        // SipHash over the secret nonce: sequential counters map to
        // unlinkable tags, so observing `sess-…` cookies does not let a
        // client forge a neighbour's id.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u64(self.nonce);
        h.write_u64(n);
        let tag = h.finish();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        h2.write_u64(self.nonce.rotate_left(17));
        h2.write_u64(tag);
        format!("sess-{tag:016x}{:016x}", h2.finish())
    }

    /// Create a fresh session, returning its id.
    pub fn create(&self) -> String {
        self.create_at(Instant::now())
    }

    /// [`SessionManager::create`] at an explicit instant (deterministic
    /// TTL tests). Runs the opportunistic sweep when due.
    pub fn create_at(&self, now: Instant) -> String {
        self.maybe_sweep(now);
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let id = self.mint_id(n);
        self.sessions.lock().insert(
            id.clone(),
            SessionEntry {
                session: Arc::new(Mutex::new(Session::default())),
                last_access: now,
            },
        );
        id
    }

    /// Fetch an existing, unexpired session; refreshes its last-access
    /// stamp. An expired id is reaped on contact and yields `None`.
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<Session>>> {
        self.get_at(id, Instant::now())
    }

    /// [`SessionManager::get`] at an explicit instant.
    pub fn get_at(&self, id: &str, now: Instant) -> Option<Arc<Mutex<Session>>> {
        let mut sessions = self.sessions.lock();
        match sessions.get_mut(id) {
            Some(e) if now.duration_since(e.last_access) >= self.ttl => {
                sessions.remove(id);
                self.expired.inc();
                None
            }
            Some(e) => {
                e.last_access = now;
                Some(Arc::clone(&e.session))
            }
            None => None,
        }
    }

    /// Fetch or create: returns `(id, session, created)`. Expired and
    /// forged ids mint a fresh session (never an error — the cookie the
    /// client sent is simply replaced).
    pub fn get_or_create(&self, id: Option<&str>) -> (String, Arc<Mutex<Session>>, bool) {
        self.get_or_create_at(id, Instant::now())
    }

    /// [`SessionManager::get_or_create`] at an explicit instant.
    pub fn get_or_create_at(
        &self,
        id: Option<&str>,
        now: Instant,
    ) -> (String, Arc<Mutex<Session>>, bool) {
        if let Some(id) = id {
            if let Some(s) = self.get_at(id, now) {
                return (id.to_string(), s, false);
            }
        }
        let id = self.create_at(now);
        let s = self.get_at(&id, now).unwrap();
        (id, s, true)
    }

    /// Destroy a session (logout).
    pub fn destroy(&self, id: &str) -> bool {
        self.sessions.lock().remove(id).is_some()
    }

    /// Reap every session idle for at least the TTL; returns how many
    /// were dropped. Runs opportunistically from `create`, but can be
    /// driven explicitly (tests, maintenance endpoints).
    pub fn sweep_expired_at(&self, now: Instant) -> usize {
        let mut sessions = self.sessions.lock();
        let before = sessions.len();
        let ttl = self.ttl;
        sessions.retain(|_, e| now.duration_since(e.last_access) < ttl);
        let dropped = before - sessions.len();
        self.expired.add(dropped as u64);
        dropped
    }

    /// [`SessionManager::sweep_expired_at`] with the real clock.
    pub fn sweep_expired(&self) -> usize {
        self.sweep_expired_at(Instant::now())
    }

    /// Run the sweep if the throttle window (¼ TTL) has elapsed — keeps
    /// `create` O(1) amortized instead of O(sessions) per call.
    fn maybe_sweep(&self, now: Instant) {
        {
            let mut next = self.next_sweep.lock();
            if now < *next {
                return;
            }
            *next = now + self.ttl / 4;
        }
        self.sweep_expired_at(now);
    }

    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_destroy() {
        let m = SessionManager::new();
        let id = m.create();
        assert!(m.get(&id).is_some());
        m.get(&id).unwrap().lock().user = Some(42);
        assert_eq!(m.get(&id).unwrap().lock().user, Some(42));
        assert!(m.destroy(&id));
        assert!(m.get(&id).is_none());
        assert!(!m.destroy(&id));
    }

    #[test]
    fn get_or_create_reuses_valid_ids() {
        let m = SessionManager::new();
        let (id, _, created) = m.get_or_create(None);
        assert!(created);
        let (id2, _, created2) = m.get_or_create(Some(&id));
        assert_eq!(id, id2);
        assert!(!created2);
        // stale cookie → new session
        let (id3, _, created3) = m.get_or_create(Some("sess-bogus"));
        assert_ne!(id, id3);
        assert!(created3);
    }

    #[test]
    fn ids_are_unique() {
        let m = SessionManager::new();
        let a = m.create();
        let b = m.create();
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ids_are_not_sequential_or_cross_process_guessable() {
        let m = SessionManager::new();
        let a = m.create();
        let b = m.create();
        // the legacy scheme was `sess-{n:08x}`: 13 chars, counter visible
        assert!(a.len() > 20, "id too short to carry a nonce: {a}");
        assert_ne!(&a[..10], &b[..10], "ids share a guessable prefix");
        assert!(m.get("sess-00000000").is_none(), "legacy id must not hit");
        assert!(m.get("sess-00000001").is_none());
        // two managers (≈ two processes) never mint each other's ids
        let other = SessionManager::new();
        let c = other.create();
        assert!(m.get(&c).is_none(), "foreign-process id resolved: {c}");
    }

    #[test]
    fn expired_sessions_are_reaped_on_contact() {
        let ttl = Duration::from_secs(60);
        let m = SessionManager::with_config(ttl, Arc::new(Counter::new()));
        let t0 = Instant::now();
        let id = m.create_at(t0);
        m.get_at(&id, t0).unwrap().lock().user = Some(7);

        // still alive inside the TTL, and the access refreshes the stamp
        assert!(m.get_at(&id, t0 + Duration::from_secs(40)).is_some());
        assert!(m.get_at(&id, t0 + Duration::from_secs(80)).is_some());

        // 60s of silence → reaped on next contact, counted, fresh session
        let late = t0 + Duration::from_secs(80 + 61);
        let (id2, s2, created) = m.get_or_create_at(Some(&id), late);
        assert!(created, "expired id must mint a fresh session");
        assert_ne!(id, id2);
        assert_eq!(s2.lock().user, None, "state must not leak across expiry");
        assert_eq!(m.expired_total(), 1);
    }

    #[test]
    fn sweep_reaps_idle_sessions_in_bulk() {
        let ttl = Duration::from_secs(10);
        let m = SessionManager::with_config(ttl, Arc::new(Counter::new()));
        let t0 = Instant::now();
        for _ in 0..5 {
            m.create_at(t0);
        }
        let live = m.create_at(t0 + Duration::from_secs(8));
        assert_eq!(m.len(), 6);
        assert_eq!(m.sweep_expired_at(t0 + Duration::from_secs(12)), 5);
        assert_eq!(m.len(), 1);
        assert!(m.get_at(&live, t0 + Duration::from_secs(12)).is_some());
        assert_eq!(m.expired_total(), 5);
    }

    #[test]
    fn create_sweeps_opportunistically() {
        let ttl = Duration::from_secs(10);
        let m = SessionManager::with_config(ttl, Arc::new(Counter::new()));
        let t0 = Instant::now();
        for _ in 0..4 {
            m.create_at(t0);
        }
        // far future create: the throttled sweep runs and reaps the idle 4
        m.create_at(t0 + Duration::from_secs(3600));
        assert_eq!(m.len(), 1);
        assert_eq!(m.expired_total(), 4);
    }

    #[test]
    fn expirations_report_into_a_shared_counter() {
        let shared = Arc::new(Counter::new());
        let m = SessionManager::with_config(Duration::from_secs(1), Arc::clone(&shared));
        let t0 = Instant::now();
        m.create_at(t0);
        m.sweep_expired_at(t0 + Duration::from_secs(2));
        assert_eq!(shared.get(), 1, "shared obs counter must see the sweep");
    }

    #[test]
    fn session_vars_hold_values() {
        let m = SessionManager::new();
        let id = m.create();
        let s = m.get(&id).unwrap();
        s.lock()
            .vars
            .insert("trolley_total".into(), Value::Real(99.5));
        assert_eq!(s.lock().vars.get("trolley_total"), Some(&Value::Real(99.5)));
    }
}
