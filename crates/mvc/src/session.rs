//! Session-level state (§1: "session-level information and
//! personalization aspects").

use parking_lot::Mutex;
use relstore::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One user session: variables plus the authenticated principal.
#[derive(Debug, Clone, Default)]
pub struct Session {
    pub vars: HashMap<String, Value>,
    /// oid of the logged-in user row, when authenticated.
    pub user: Option<i64>,
    /// Group of the logged-in user (drives site-view protection).
    pub group: Option<String>,
}

/// Thread-safe session store keyed by opaque session ids.
#[derive(Default)]
pub struct SessionManager {
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    counter: AtomicU64,
}

impl SessionManager {
    pub fn new() -> SessionManager {
        SessionManager::default()
    }

    /// Create a fresh session, returning its id.
    pub fn create(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        // opaque but deterministic-per-process id; sufficient for a
        // simulated container
        let id = format!("sess-{n:08x}");
        self.sessions
            .lock()
            .insert(id.clone(), Arc::new(Mutex::new(Session::default())));
        id
    }

    /// Fetch an existing session.
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<Session>>> {
        self.sessions.lock().get(id).cloned()
    }

    /// Fetch or create: returns `(id, session, created)`.
    pub fn get_or_create(&self, id: Option<&str>) -> (String, Arc<Mutex<Session>>, bool) {
        if let Some(id) = id {
            if let Some(s) = self.get(id) {
                return (id.to_string(), s, false);
            }
        }
        let id = self.create();
        let s = self.get(&id).unwrap();
        (id, s, true)
    }

    /// Destroy a session (logout).
    pub fn destroy(&self, id: &str) -> bool {
        self.sessions.lock().remove(id).is_some()
    }

    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_destroy() {
        let m = SessionManager::new();
        let id = m.create();
        assert!(m.get(&id).is_some());
        m.get(&id).unwrap().lock().user = Some(42);
        assert_eq!(m.get(&id).unwrap().lock().user, Some(42));
        assert!(m.destroy(&id));
        assert!(m.get(&id).is_none());
        assert!(!m.destroy(&id));
    }

    #[test]
    fn get_or_create_reuses_valid_ids() {
        let m = SessionManager::new();
        let (id, _, created) = m.get_or_create(None);
        assert!(created);
        let (id2, _, created2) = m.get_or_create(Some(&id));
        assert_eq!(id, id2);
        assert!(!created2);
        // stale cookie → new session
        let (id3, _, created3) = m.get_or_create(Some("sess-bogus"));
        assert_ne!(id, id3);
        assert!(created3);
    }

    #[test]
    fn ids_are_unique() {
        let m = SessionManager::new();
        let a = m.create();
        let b = m.create();
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn session_vars_hold_values() {
        let m = SessionManager::new();
        let id = m.create();
        let s = m.get(&id).unwrap();
        s.lock()
            .vars
            .insert("trolley_total".into(), Value::Real(99.5));
        assert_eq!(s.lock().vars.get("trolley_total"), Some(&Value::Real(99.5)));
    }
}
