//! The request observability spine.
//!
//! The paper's argument (§4–§6, Fig. 3/5/6) is about knowing *where a
//! data-intensive request spends its time*: controller dispatch, generic
//! unit services, the two-level cache, the SQL tier, and the app-server
//! marshalling boundary. This crate is the measurement substrate every
//! tier plugs into instead of reimplementing:
//!
//! - [`trace::RequestContext`] — a per-request id, optional deadline, and
//!   a hierarchical span tree (`request > page:Home > unit:idx3 > sql`)
//!   timed with monotonic clocks;
//! - [`metrics::MetricsRegistry`] — process-wide atomic counters and
//!   histograms (requests, per-unit-kind service time, bean/fragment
//!   cache traffic, SQL prepares vs. plan-cache hits, rows scanned,
//!   KO-flow occurrences, app-server marshalling bytes);
//! - export surfaces — Prometheus-style text for a `/metrics` endpoint,
//!   a compact `X-Trace` header summary, and a JSON trace dump.
//!
//! Dependency direction: every runtime crate (relstore, cache, mvc,
//! httpd, core) depends on `obs`; `obs` depends on nothing heavier than
//! the vendored `parking_lot`.

pub mod metrics;
pub mod trace;

pub use metrics::{
    AnalyzeCounters, CacheCounters, Counter, DbCounters, Gauge, Histogram, HttpCounters,
    MaintCounters, MetricsRegistry, ReplCounters, ReplicaGauges, WalCounters,
};
pub use trace::{RequestContext, Span, SpanToken};
