//! Process-wide atomic counters and histograms, with a Prometheus-style
//! text export for the `/metrics` endpoint.
//!
//! One [`MetricsRegistry`] is wired into a deployment (`core::app`) and
//! shared by every tier: the controller counts dispatches and KO flows,
//! the bean/fragment caches report hits and misses through
//! [`CacheCounters`], the SQL tier reports prepares vs. plan-cache hits
//! and rows scanned through [`DbCounters`], and the app-server boundary
//! reports marshalled bytes. Everything is lock-free on the hot path.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (live snapshots, live row
/// versions). Signed so concurrent decrements racing past zero are safe.
#[derive(Debug, Default)]
pub struct Gauge(std::sync::atomic::AtomicI64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(std::sync::atomic::AtomicI64::new(0))
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds, in microseconds (log-spaced, +Inf
/// implied). Chosen to resolve both in-memory unit computations (tens of
/// µs) and whole requests (tens of ms).
pub const BUCKET_BOUNDS_US: [u64; 12] = [
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000,
];

/// A fixed-bucket latency histogram (microseconds).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn observe_us(&self, us: u64) {
        self.observe(us)
    }

    /// Record a unitless value (e.g. a group-commit batch size). The
    /// bucket bounds of [`BUCKET_BOUNDS_US`] are just numbers; only the
    /// caller decides whether they mean microseconds or counts.
    pub fn observe(&self, value: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Total of observed values, unitless twin of [`Histogram::sum_us`].
    pub fn sum(&self) -> u64 {
        self.sum_us()
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum_us() as f64 / c as f64
        }
    }

    /// Estimated value at quantile `q` ∈ [0, 1]: the upper bound of the
    /// log-spaced bucket holding the q-th observation (the +Inf bucket
    /// reports the largest finite bound). 0 when empty. Coarse by design —
    /// good enough for p50/p95/p99 reporting in the serving bench.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        for (bound, cum) in self.cumulative_buckets() {
            if cum >= rank {
                return bound.unwrap_or(*BUCKET_BOUNDS_US.last().unwrap());
            }
        }
        *BUCKET_BOUNDS_US.last().unwrap()
    }

    /// Cumulative bucket counts in bound order, then the +Inf bucket.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            out.push((BUCKET_BOUNDS_US.get(i).copied(), acc));
        }
        out
    }
}

/// The counter block one cache level reports into (bean or fragment).
#[derive(Debug, Default)]
pub struct CacheCounters {
    pub hits: Counter,
    pub misses: Counter,
    pub insertions: Counter,
    pub invalidations: Counter,
    pub evictions: Counter,
    pub expirations: Counter,
}

impl CacheCounters {
    pub fn new() -> CacheCounters {
        CacheCounters::default()
    }

    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.get();
        let m = self.misses.get();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// The counter block the SQL tier reports into.
#[derive(Debug, Default)]
pub struct DbCounters {
    /// Statements actually parsed/planned.
    pub prepares: Counter,
    /// Executions that reused an already-planned `Arc<Statement>`.
    pub plan_cache_hits: Counter,
    /// Statements executed (reads + writes).
    pub statements_executed: Counter,
    /// Rows touched while evaluating statements.
    pub rows_scanned: Counter,
    /// WHERE/JOIN predicates answered by a PK or secondary index probe
    /// instead of a scan (the planner's derived-index payoff).
    pub index_probes: Counter,
    /// Equi-joins executed with a build/probe hash table instead of the
    /// nested-loop scan fallback.
    pub hash_joins: Counter,
    /// ORDER BY + LIMIT queries answered by the bounded Top-K heap
    /// instead of a full materialize + sort.
    pub topk_shortcuts: Counter,
    /// Table accesses that fell back to a full scan (no usable index,
    /// no hashable equi-conjunct).
    pub scan_fallbacks: Counter,
    /// Rows scanned by one SELECT — the per-query distribution behind
    /// the `rows_scanned` total (unitless histogram).
    pub rows_scanned_per_query: Histogram,
    /// Statements that lost a first-writer-wins race under snapshot
    /// isolation and surfaced `WriteConflict` to the caller.
    pub write_conflicts: Counter,
    /// Row versions reclaimed by MVCC vacuum (superseded below every
    /// live snapshot's horizon).
    pub vacuum_reclaimed: Counter,
    /// Read snapshots currently pinned by open transactions.
    pub snapshots_active: Gauge,
    /// Row versions currently held in version chains (visible + pending
    /// + retained-for-snapshots).
    pub versions_live: Gauge,
    /// The low-water LSN the last vacuum pass was allowed to reclaim
    /// below — min of local pinned snapshots and the external replication
    /// horizon. 0 until the first vacuum runs.
    pub vacuum_horizon_lsn: Gauge,
}

impl DbCounters {
    pub fn new() -> DbCounters {
        DbCounters::default()
    }
}

/// The counter block the durability subsystem (write-ahead log) reports
/// into: flush economics, log volume, and recovery cost.
#[derive(Debug, Default)]
pub struct WalCounters {
    /// Physical flushes (write + sync of the group-commit buffer).
    pub flushes: Counter,
    /// Real write/sync failures while flushing the log. Distinct from
    /// injected crash points, which simulate power loss and are silent by
    /// design; a non-zero value here means the kernel refused a write
    /// while committers were still waiting for acks.
    pub flush_errors: Counter,
    /// Bytes appended to the log file.
    pub bytes_written: Counter,
    /// Commit records appended (one per committed transaction).
    pub records_appended: Counter,
    /// Snapshots written.
    pub snapshots: Counter,
    /// Committed transactions made durable per flush (group-commit batch
    /// size, recorded as a histogram so the economics are visible).
    pub group_batch_size: Histogram,
    /// Time spent replaying snapshot + log tail at recovery, in µs.
    pub recovery_micros: Histogram,
}

impl WalCounters {
    pub fn new() -> WalCounters {
        WalCounters::default()
    }
}

/// The counter block the whole-application model checker reports into:
/// analyzer runs, findings by stable code, and analysis latency.
#[derive(Debug, Default)]
pub struct AnalyzeCounters {
    /// Analyzer runs (one per checked deploy or explicit analysis).
    pub runs: Counter,
    /// Findings keyed by `(code, severity)` — rendered as the labelled
    /// `analyze_diagnostics_total{code,severity}` family.
    diagnostics: Mutex<BTreeMap<(String, String), u64>>,
    /// Distribution-safety findings (`AZ4xx`) keyed by code — rendered as
    /// the labelled `analyze_distribution_total{code}` family, split out
    /// from `diagnostics` so replicated/sharded deploys are monitorable
    /// on their own.
    distribution: Mutex<BTreeMap<String, u64>>,
    /// Wall time of one whole-model analysis, in µs.
    pub analysis_micros: Histogram,
}

impl AnalyzeCounters {
    pub fn new() -> AnalyzeCounters {
        AnalyzeCounters::default()
    }

    /// Count `n` findings with the given stable code and severity.
    pub fn record_diagnostics(&self, code: &str, severity: &str, n: u64) {
        let mut map = self.diagnostics.lock();
        *map.entry((code.to_string(), severity.to_string()))
            .or_insert(0) += n;
    }

    /// Snapshot of per-(code, severity) finding counts.
    pub fn diagnostic_counts(&self) -> Vec<((String, String), u64)> {
        self.diagnostics
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Count `n` distribution-safety findings (`AZ4xx`) with `code`.
    pub fn record_distribution(&self, code: &str, n: u64) {
        let mut map = self.distribution.lock();
        *map.entry(code.to_string()).or_insert(0) += n;
    }

    /// Snapshot of per-code distribution finding counts.
    pub fn distribution_counts(&self) -> Vec<(String, u64)> {
        self.distribution
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// The counter block the incremental cache-maintenance layer reports
/// into: WAL-driven bean patching, dirty-fragment re-render, and
/// conditional-GET economics.
#[derive(Debug, Default)]
pub struct MaintCounters {
    /// Cached beans updated in place from a durable `ChangeRecord`
    /// instead of being dropped.
    pub patches_applied: Counter,
    /// Beans dropped back to recompute because the delta was not
    /// patchable — keyed by reason, rendered as the labelled
    /// `cache_patch_fallbacks_total{reason}` family.
    fallbacks: Mutex<BTreeMap<String, u64>>,
    /// Page fragments re-rendered because their unit's bean changed
    /// (clean fragments keep serving the same interned bytes).
    pub fragment_rerenders: Counter,
    /// Conditional GETs answered `304 Not Modified` from the page
    /// version, skipping compute and body bytes entirely.
    pub http_304: Counter,
    /// Wall time to apply one durable batch to every dependent bean and
    /// fragment, in µs.
    pub apply_micros: Histogram,
}

impl MaintCounters {
    pub fn new() -> MaintCounters {
        MaintCounters::default()
    }

    /// Count one fallback-to-recompute with a stable `reason` tag.
    pub fn record_fallback(&self, reason: &str) {
        let mut map = self.fallbacks.lock();
        *map.entry(reason.to_string()).or_insert(0) += 1;
    }

    /// Snapshot of per-reason fallback counts.
    pub fn fallback_counts(&self) -> Vec<(String, u64)> {
        self.fallbacks
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Total fallbacks across all reasons.
    pub fn fallbacks_total(&self) -> u64 {
        self.fallbacks.lock().values().sum()
    }
}

/// The counter block the web tier (`httpd`) reports into: connection
/// lifecycle and keep-alive economics.
#[derive(Debug, Default)]
pub struct HttpCounters {
    /// TCP connections accepted and handed to the worker pool.
    pub connections: Counter,
    /// Requests fully serviced (all connections, all workers).
    pub requests: Counter,
    /// Requests serviced per connection before it closed — the keep-alive
    /// amortization factor (1 everywhere ⇒ `Connection: close` traffic).
    pub requests_per_conn: Histogram,
    /// Connections closed because the per-connection request cap was hit.
    pub conn_cap_closes: Counter,
    /// Connections closed by the idle read timeout.
    pub idle_timeouts: Counter,
    /// Requests rejected with `431 Request Header Fields Too Large`.
    pub header_overflows: Counter,
    /// Requests shed with `503` + `Retry-After` because the in-flight
    /// budget was exhausted (admission control, not a failure).
    pub admission_rejects: Counter,
    /// Readable-connection hand-offs from the reactor to the worker
    /// pool. An idle keep-alive connection adds nothing here between
    /// requests — the no-polling invariant, asserted by tests.
    pub dispatches: Counter,
    /// Vectored (`writev`) response flushes — the zero-copy write path.
    pub vectored_writes: Counter,
    /// Client sockets currently open (accepted minus closed).
    pub open_fds: Gauge,
    /// Connections dispatched to a worker and not yet finished — the
    /// admission-control pressure signal.
    pub in_flight: Gauge,
}

impl HttpCounters {
    pub fn new() -> HttpCounters {
        HttpCounters::default()
    }
}

/// Per-replica progress gauges: how far one replica's apply loop has
/// gotten, and how far behind the leader's durable LSN it is.
#[derive(Debug, Default)]
pub struct ReplicaGauges {
    /// Last LSN this replica has fully applied.
    pub applied_lsn: Gauge,
    /// Leader durable LSN minus applied LSN at last refresh.
    pub lag_lsn: Gauge,
}

/// The counter block the replication/partitioning tier reports into:
/// routing decisions, shipped batches, and per-replica lag.
#[derive(Debug, Default)]
pub struct ReplCounters {
    /// Reads that wanted a replica but were redirected to the leader
    /// because no replica had caught up to the session's last-write LSN.
    pub stale_redirects: Counter,
    /// Change batches applied by replicas (first delivery).
    pub batches_applied: Counter,
    /// Change batches skipped as duplicates (reconnect replay overlap).
    pub batches_duplicate: Counter,
    /// Reads routed per target (`leader`, `replica-0`, `shard-1`, ...) —
    /// rendered as the labelled `repl_reads_total{target}` family.
    reads: Mutex<BTreeMap<String, u64>>,
    /// Per-replica progress gauges, keyed by replica name.
    replicas: Mutex<BTreeMap<String, Arc<ReplicaGauges>>>,
}

impl ReplCounters {
    pub fn new() -> ReplCounters {
        ReplCounters::default()
    }

    /// Count one read routed to `target`.
    pub fn record_read(&self, target: &str) {
        let mut map = self.reads.lock();
        *map.entry(target.to_string()).or_insert(0) += 1;
    }

    /// Snapshot of per-target read counts.
    pub fn read_counts(&self) -> Vec<(String, u64)> {
        self.reads
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Reads routed to one specific target so far.
    pub fn reads_for(&self, target: &str) -> u64 {
        self.reads.lock().get(target).copied().unwrap_or(0)
    }

    /// The progress gauges for one replica (created on first use; the
    /// `Arc` is cached by the replica's apply loop).
    pub fn replica_gauges(&self, name: &str) -> Arc<ReplicaGauges> {
        let mut map = self.replicas.lock();
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(ReplicaGauges::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Replicas observed so far, with their progress gauges.
    pub fn replica_lag(&self) -> Vec<(String, Arc<ReplicaGauges>)> {
        self.replicas
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

/// The process-wide registry every tier plugs into.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    // -- controller / dispatch ------------------------------------------------
    pub requests: Counter,
    pub page_requests: Counter,
    pub operation_requests: Counter,
    pub forwards: Counter,
    pub errors: Counter,
    /// OK/KO chains that took a KO link (§3's failure flows).
    pub ko_flows: Counter,
    // -- tiers ----------------------------------------------------------------
    pub bean_cache: Arc<CacheCounters>,
    pub fragment_cache: Arc<CacheCounters>,
    pub db: Arc<DbCounters>,
    /// Durability subsystem (write-ahead log) counters.
    pub wal: Arc<WalCounters>,
    /// Whole-application model checker counters.
    pub analyze: Arc<AnalyzeCounters>,
    /// Web-tier connection lifecycle counters (`httpd`).
    pub http: Arc<HttpCounters>,
    /// Incremental cache-maintenance counters (`webcache::maintain`).
    pub maint: Arc<MaintCounters>,
    /// Replication/partitioning tier counters (`repl`).
    pub repl: Arc<ReplCounters>,
    /// Sessions evicted by the TTL sweep (`mvc::SessionManager` holds a
    /// clone of this counter).
    pub sessions_expired: Arc<Counter>,
    /// Bytes crossing the app-server marshalling boundary (Fig. 6).
    pub appserver_bytes_marshalled: Counter,
    pub appserver_requests: Counter,
    // -- timing ---------------------------------------------------------------
    /// End-to-end request latency, recorded by `httpd`.
    pub request_latency: Histogram,
    /// Per-unit-kind service time (`data`, `index`, `scroller`, ...).
    unit_service_time: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::default())
    }

    /// The service-time histogram for one unit kind (created on first
    /// use; the `Arc` can be cached by hot paths).
    pub fn unit_histogram(&self, kind: &str) -> Arc<Histogram> {
        let mut map = self.unit_service_time.lock();
        if let Some(h) = map.get(kind) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(kind.to_string(), Arc::clone(&h));
        h
    }

    /// Unit kinds observed so far, with their histograms.
    pub fn unit_histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.unit_service_time
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Render the whole registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        fn counter_into(out: &mut String, name: &str, help: &str, v: u64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        fn gauge_into(out: &mut String, name: &str, help: &str, v: i64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        counter_into(
            &mut out,
            "webml_requests_total",
            "Requests dispatched by the controller",
            self.requests.get(),
        );
        counter_into(
            &mut out,
            "webml_page_requests_total",
            "Page-service dispatches",
            self.page_requests.get(),
        );
        counter_into(
            &mut out,
            "webml_operation_requests_total",
            "Operation-service dispatches",
            self.operation_requests.get(),
        );
        counter_into(
            &mut out,
            "webml_forwards_total",
            "Internal controller forwards",
            self.forwards.get(),
        );
        counter_into(
            &mut out,
            "webml_errors_total",
            "Requests that ended in an error response",
            self.errors.get(),
        );
        counter_into(
            &mut out,
            "webml_ko_flows_total",
            "Operation chains that took a KO link",
            self.ko_flows.get(),
        );
        for (level, c) in [
            ("bean", &self.bean_cache),
            ("fragment", &self.fragment_cache),
        ] {
            for (event, v) in [
                ("hits", c.hits.get()),
                ("misses", c.misses.get()),
                ("insertions", c.insertions.get()),
                ("invalidations", c.invalidations.get()),
                ("evictions", c.evictions.get()),
                ("expirations", c.expirations.get()),
            ] {
                let name = format!("webml_cache_{event}_total");
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name}{{level=\"{level}\"}} {v}");
            }
        }
        counter_into(
            &mut out,
            "webml_sql_prepares_total",
            "SQL statements parsed and planned",
            self.db.prepares.get(),
        );
        counter_into(
            &mut out,
            "webml_sql_plan_cache_hits_total",
            "Executions that reused a prepared plan",
            self.db.plan_cache_hits.get(),
        );
        counter_into(
            &mut out,
            "webml_sql_statements_total",
            "SQL statements executed",
            self.db.statements_executed.get(),
        );
        counter_into(
            &mut out,
            "webml_sql_rows_scanned_total",
            "Rows touched by the SQL tier",
            self.db.rows_scanned.get(),
        );
        counter_into(
            &mut out,
            "db_index_probes_total",
            "Predicates answered by a PK or secondary index probe",
            self.db.index_probes.get(),
        );
        counter_into(
            &mut out,
            "db_hash_joins_total",
            "Equi-joins executed with a build/probe hash table",
            self.db.hash_joins.get(),
        );
        counter_into(
            &mut out,
            "db_topk_shortcuts_total",
            "ORDER BY + LIMIT queries answered by the bounded Top-K heap",
            self.db.topk_shortcuts.get(),
        );
        counter_into(
            &mut out,
            "db_scan_fallbacks_total",
            "Table accesses that fell back to a full scan",
            self.db.scan_fallbacks.get(),
        );
        Self::render_histogram(
            &mut out,
            "db_rows_scanned_per_query",
            "",
            &self.db.rows_scanned_per_query,
        );
        counter_into(
            &mut out,
            "db_write_conflicts_total",
            "Statements that lost a first-writer-wins race under snapshot isolation",
            self.db.write_conflicts.get(),
        );
        counter_into(
            &mut out,
            "db_vacuum_reclaimed_total",
            "Row versions reclaimed by MVCC vacuum",
            self.db.vacuum_reclaimed.get(),
        );
        gauge_into(
            &mut out,
            "db_snapshots_active",
            "Read snapshots currently pinned by open transactions",
            self.db.snapshots_active.get(),
        );
        gauge_into(
            &mut out,
            "db_versions_live",
            "Row versions currently held in MVCC version chains",
            self.db.versions_live.get(),
        );
        gauge_into(
            &mut out,
            "db_vacuum_horizon_lsn",
            "Low-water LSN the last vacuum pass could reclaim below",
            self.db.vacuum_horizon_lsn.get(),
        );
        counter_into(
            &mut out,
            "webml_appserver_marshalled_bytes_total",
            "Bytes crossing the app-server boundary",
            self.appserver_bytes_marshalled.get(),
        );
        counter_into(
            &mut out,
            "webml_appserver_requests_total",
            "Page computations served by app-server clones",
            self.appserver_requests.get(),
        );
        counter_into(
            &mut out,
            "http_connections_total",
            "TCP connections accepted by the web tier",
            self.http.connections.get(),
        );
        counter_into(
            &mut out,
            "http_requests_total",
            "HTTP requests serviced by the web tier",
            self.http.requests.get(),
        );
        counter_into(
            &mut out,
            "http_conn_cap_closes_total",
            "Connections closed by the per-connection request cap",
            self.http.conn_cap_closes.get(),
        );
        counter_into(
            &mut out,
            "http_idle_timeouts_total",
            "Connections closed by the idle read timeout",
            self.http.idle_timeouts.get(),
        );
        counter_into(
            &mut out,
            "http_header_overflows_total",
            "Requests rejected with 431 Request Header Fields Too Large",
            self.http.header_overflows.get(),
        );
        counter_into(
            &mut out,
            "http_admission_rejects_total",
            "Requests shed with 503 + Retry-After by admission control",
            self.http.admission_rejects.get(),
        );
        counter_into(
            &mut out,
            "http_reactor_dispatches_total",
            "Readable-connection hand-offs from the reactor to workers",
            self.http.dispatches.get(),
        );
        counter_into(
            &mut out,
            "http_vectored_writes_total",
            "Vectored (writev) response flushes on the zero-copy path",
            self.http.vectored_writes.get(),
        );
        gauge_into(
            &mut out,
            "http_open_fds",
            "Client sockets currently open in the web tier",
            self.http.open_fds.get(),
        );
        gauge_into(
            &mut out,
            "http_in_flight",
            "Connections dispatched to a worker and not yet finished",
            self.http.in_flight.get(),
        );
        Self::render_histogram(
            &mut out,
            "http_requests_per_conn",
            "",
            &self.http.requests_per_conn,
        );
        counter_into(
            &mut out,
            "cache_patches_applied_total",
            "Cached beans updated in place from durable change records",
            self.maint.patches_applied.get(),
        );
        // labelled family: the header is always emitted so scrapers learn
        // the name even before the first fallback
        let _ = writeln!(
            out,
            "# HELP cache_patch_fallbacks_total Beans dropped to recompute, by reason"
        );
        let _ = writeln!(out, "# TYPE cache_patch_fallbacks_total counter");
        for (reason, v) in self.maint.fallback_counts() {
            let _ = writeln!(
                out,
                "cache_patch_fallbacks_total{{reason=\"{reason}\"}} {v}"
            );
        }
        counter_into(
            &mut out,
            "fragment_rerenders_total",
            "Page fragments re-rendered because their unit bean changed",
            self.maint.fragment_rerenders.get(),
        );
        counter_into(
            &mut out,
            "http_304_total",
            "Conditional GETs answered 304 Not Modified from the page version",
            self.maint.http_304.get(),
        );
        Self::render_histogram(&mut out, "maint_apply_micros", "", &self.maint.apply_micros);
        counter_into(
            &mut out,
            "webml_sessions_expired_total",
            "Sessions evicted by the TTL sweep",
            self.sessions_expired.get(),
        );
        counter_into(
            &mut out,
            "wal_flushes",
            "Write-ahead log physical flushes (write + sync)",
            self.wal.flushes.get(),
        );
        counter_into(
            &mut out,
            "wal_flush_errors",
            "Write-ahead log flushes that failed with a real I/O error",
            self.wal.flush_errors.get(),
        );
        counter_into(
            &mut out,
            "wal_bytes_written",
            "Bytes appended to the write-ahead log",
            self.wal.bytes_written.get(),
        );
        counter_into(
            &mut out,
            "wal_records_appended",
            "Commit records appended to the write-ahead log",
            self.wal.records_appended.get(),
        );
        counter_into(
            &mut out,
            "wal_snapshots",
            "Snapshots written by the durability subsystem",
            self.wal.snapshots.get(),
        );
        Self::render_histogram(
            &mut out,
            "wal_group_batch_size",
            "",
            &self.wal.group_batch_size,
        );
        Self::render_histogram(
            &mut out,
            "wal_recovery_micros",
            "",
            &self.wal.recovery_micros,
        );
        counter_into(
            &mut out,
            "analyze_runs_total",
            "Whole-model analyzer runs",
            self.analyze.runs.get(),
        );
        // labelled family: the header is always emitted so scrapers learn
        // the name even before the first finding
        let _ = writeln!(
            out,
            "# HELP analyze_diagnostics_total Analyzer findings by stable code and severity"
        );
        let _ = writeln!(out, "# TYPE analyze_diagnostics_total counter");
        for ((code, severity), v) in self.analyze.diagnostic_counts() {
            let _ = writeln!(
                out,
                "analyze_diagnostics_total{{code=\"{code}\",severity=\"{severity}\"}} {v}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP analyze_distribution_total Distribution-safety findings (AZ4xx) by stable code"
        );
        let _ = writeln!(out, "# TYPE analyze_distribution_total counter");
        for (code, v) in self.analyze.distribution_counts() {
            let _ = writeln!(out, "analyze_distribution_total{{code=\"{code}\"}} {v}");
        }
        Self::render_histogram(
            &mut out,
            "analyze_run_micros",
            "",
            &self.analyze.analysis_micros,
        );
        counter_into(
            &mut out,
            "repl_stale_redirects_total",
            "Reads redirected to the leader because every replica lagged the session",
            self.repl.stale_redirects.get(),
        );
        counter_into(
            &mut out,
            "repl_batches_applied_total",
            "Change batches applied by replicas",
            self.repl.batches_applied.get(),
        );
        counter_into(
            &mut out,
            "repl_batches_duplicate_total",
            "Change batches skipped as reconnect-replay duplicates",
            self.repl.batches_duplicate.get(),
        );
        // labelled family: the header is always emitted so scrapers learn
        // the name even before the first routed read
        let _ = writeln!(
            out,
            "# HELP repl_reads_total Reads routed per target (leader, replica-N, shard-N)"
        );
        let _ = writeln!(out, "# TYPE repl_reads_total counter");
        for (target, v) in self.repl.read_counts() {
            let _ = writeln!(out, "repl_reads_total{{target=\"{target}\"}} {v}");
        }
        let replicas = self.repl.replica_lag();
        let _ = writeln!(out, "# HELP repl_applied_lsn Last LSN applied per replica");
        let _ = writeln!(out, "# TYPE repl_applied_lsn gauge");
        for (name, g) in &replicas {
            let _ = writeln!(
                out,
                "repl_applied_lsn{{replica=\"{name}\"}} {}",
                g.applied_lsn.get()
            );
        }
        let _ = writeln!(
            out,
            "# HELP repl_lag_lsn Leader durable LSN minus applied LSN per replica"
        );
        let _ = writeln!(out, "# TYPE repl_lag_lsn gauge");
        for (name, g) in &replicas {
            let _ = writeln!(
                out,
                "repl_lag_lsn{{replica=\"{name}\"}} {}",
                g.lag_lsn.get()
            );
        }
        Self::render_histogram(
            &mut out,
            "webml_request_latency_us",
            "",
            &self.request_latency,
        );
        for (kind, h) in self.unit_histograms() {
            Self::render_histogram(
                &mut out,
                "webml_unit_service_time_us",
                &format!("{{kind=\"{kind}\"}}"),
                &h,
            );
        }
        out
    }

    fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let base = if labels.is_empty() {
            String::new()
        } else {
            let inner = &labels[1..labels.len() - 1];
            format!("{inner},")
        };
        for (bound, cum) in h.cumulative_buckets() {
            let le = match bound {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "{name}_bucket{{{base}le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_sum{labels} {}", h.sum_us());
        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::new();
        h.observe_us(5); // bucket le=10
        h.observe_us(99); // le=100
        h.observe_us(1_000_000); // +Inf
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 1_000_104);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (Some(10), 1));
        assert_eq!(buckets[3], (Some(100), 2));
        assert_eq!(buckets.last().unwrap(), &(None, 3));
        assert!((h.mean_us() - 1_000_104.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let reg = MetricsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    reg.requests.inc();
                    reg.bean_cache.hits.inc();
                    reg.request_latency.observe_us(7);
                    reg.unit_histogram("index").observe_us(3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.requests.get(), 8000);
        assert_eq!(reg.bean_cache.hits.get(), 8000);
        assert_eq!(reg.request_latency.count(), 8000);
        assert_eq!(reg.unit_histogram("index").count(), 8000);
    }

    #[test]
    fn analyze_counters_render_labelled_family() {
        let reg = MetricsRegistry::new();
        // the family header is present even before any finding
        let empty = reg.render_prometheus();
        assert!(empty.contains("# TYPE analyze_diagnostics_total counter"));
        assert!(empty.contains("analyze_runs_total 0"));
        reg.analyze.runs.inc();
        reg.analyze.record_diagnostics("AZ001", "error", 2);
        reg.analyze.record_diagnostics("AZ103", "warning", 1);
        reg.analyze.analysis_micros.observe_us(450);
        let text = reg.render_prometheus();
        assert!(text.contains("analyze_diagnostics_total{code=\"AZ001\",severity=\"error\"} 2"));
        assert!(text.contains("analyze_diagnostics_total{code=\"AZ103\",severity=\"warning\"} 1"));
        assert!(text.contains("# TYPE analyze_run_micros histogram"));
        assert!(text.contains("analyze_runs_total 1"));
    }

    #[test]
    fn distribution_counters_render_labelled_family() {
        let reg = MetricsRegistry::new();
        let empty = reg.render_prometheus();
        assert!(empty.contains("# TYPE analyze_distribution_total counter"));
        reg.analyze.record_distribution("AZ401", 1);
        reg.analyze.record_distribution("AZ402", 2);
        reg.analyze.record_distribution("AZ401", 1);
        let text = reg.render_prometheus();
        assert!(text.contains("analyze_distribution_total{code=\"AZ401\"} 2"));
        assert!(text.contains("analyze_distribution_total{code=\"AZ402\"} 2"));
        assert_eq!(reg.analyze.distribution_counts().len(), 2);
    }

    #[test]
    fn prometheus_export_shape() {
        let reg = MetricsRegistry::new();
        reg.requests.inc();
        reg.bean_cache.hits.inc();
        reg.bean_cache.misses.inc();
        reg.db.prepares.inc();
        reg.db.plan_cache_hits.add(3);
        reg.request_latency.observe_us(120);
        reg.unit_histogram("data").observe_us(40);
        let text = reg.render_prometheus();
        assert!(text.contains("webml_requests_total 1"));
        assert!(text.contains("webml_cache_hits_total{level=\"bean\"} 1"));
        assert!(text.contains("webml_cache_misses_total{level=\"bean\"} 1"));
        assert!(text.contains("webml_cache_hits_total{level=\"fragment\"} 0"));
        assert!(text.contains("webml_sql_prepares_total 1"));
        assert!(text.contains("webml_sql_plan_cache_hits_total 3"));
        assert!(text.contains("webml_request_latency_us_count 1"));
        assert!(text.contains("webml_unit_service_time_us_count{kind=\"data\"} 1"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn prometheus_export_includes_wal_metrics() {
        let reg = MetricsRegistry::new();
        reg.wal.flushes.inc();
        reg.wal.bytes_written.add(128);
        reg.wal.group_batch_size.observe(4); // a count, not a duration
        reg.wal.recovery_micros.observe_us(900);
        let text = reg.render_prometheus();
        assert!(text.contains("wal_flushes 1"));
        assert!(text.contains("wal_flush_errors 0"));
        assert!(text.contains("wal_bytes_written 128"));
        assert!(text.contains("wal_group_batch_size_count 1"));
        assert!(text.contains("wal_group_batch_size_sum 4"));
        assert!(text.contains("wal_recovery_micros_sum 900"));
    }

    #[test]
    fn planner_counters_render() {
        let reg = MetricsRegistry::new();
        reg.db.index_probes.add(4);
        reg.db.hash_joins.inc();
        reg.db.topk_shortcuts.add(2);
        reg.db.scan_fallbacks.add(3);
        reg.db.rows_scanned_per_query.observe(7);
        let text = reg.render_prometheus();
        assert!(text.contains("db_index_probes_total 4"));
        assert!(text.contains("db_hash_joins_total 1"));
        assert!(text.contains("db_topk_shortcuts_total 2"));
        assert!(text.contains("db_scan_fallbacks_total 3"));
        assert!(text.contains("db_rows_scanned_per_query_count 1"));
        assert!(text.contains("db_rows_scanned_per_query_sum 7"));
    }

    #[test]
    fn mvcc_counters_render() {
        let reg = MetricsRegistry::new();
        reg.db.write_conflicts.inc();
        reg.db.vacuum_reclaimed.add(12);
        reg.db.snapshots_active.add(3);
        reg.db.snapshots_active.add(-1);
        reg.db.versions_live.set(42);
        let text = reg.render_prometheus();
        assert!(text.contains("db_write_conflicts_total 1"));
        assert!(text.contains("db_vacuum_reclaimed_total 12"));
        assert!(text.contains("# TYPE db_snapshots_active gauge"));
        assert!(text.contains("db_snapshots_active 2"));
        assert!(text.contains("# TYPE db_versions_live gauge"));
        assert!(text.contains("db_versions_live 42"));
    }

    #[test]
    fn http_counters_render() {
        let reg = MetricsRegistry::new();
        reg.http.connections.inc();
        reg.http.requests.add(5);
        reg.http.requests_per_conn.observe(5);
        reg.http.header_overflows.inc();
        reg.http.admission_rejects.add(3);
        reg.http.dispatches.add(7);
        reg.http.vectored_writes.add(6);
        reg.http.open_fds.add(2);
        reg.http.in_flight.add(1);
        reg.sessions_expired.add(2);
        let text = reg.render_prometheus();
        assert!(text.contains("http_connections_total 1"));
        assert!(text.contains("http_requests_total 5"));
        assert!(text.contains("http_requests_per_conn_count 1"));
        assert!(text.contains("http_requests_per_conn_sum 5"));
        assert!(text.contains("http_header_overflows_total 1"));
        assert!(text.contains("http_admission_rejects_total 3"));
        assert!(text.contains("http_reactor_dispatches_total 7"));
        assert!(text.contains("http_vectored_writes_total 6"));
        assert!(text.contains("# TYPE http_open_fds gauge"));
        assert!(text.contains("http_open_fds 2"));
        assert!(text.contains("http_in_flight 1"));
        assert!(text.contains("webml_sessions_expired_total 2"));
    }

    #[test]
    fn repl_counters_render_labelled_families() {
        let reg = MetricsRegistry::new();
        // family headers present even before any replica exists
        let empty = reg.render_prometheus();
        assert!(empty.contains("# TYPE repl_reads_total counter"));
        assert!(empty.contains("# TYPE repl_lag_lsn gauge"));
        assert!(empty.contains("repl_stale_redirects_total 0"));
        reg.repl.record_read("leader");
        reg.repl.record_read("replica-0");
        reg.repl.record_read("replica-0");
        reg.repl.stale_redirects.inc();
        reg.repl.batches_applied.add(4);
        reg.repl.batches_duplicate.inc();
        let g = reg.repl.replica_gauges("replica-0");
        g.applied_lsn.set(17);
        g.lag_lsn.set(3);
        reg.db.vacuum_horizon_lsn.set(14);
        let text = reg.render_prometheus();
        assert!(text.contains("repl_reads_total{target=\"leader\"} 1"));
        assert!(text.contains("repl_reads_total{target=\"replica-0\"} 2"));
        assert_eq!(reg.repl.reads_for("replica-0"), 2);
        assert!(text.contains("repl_stale_redirects_total 1"));
        assert!(text.contains("repl_batches_applied_total 4"));
        assert!(text.contains("repl_batches_duplicate_total 1"));
        assert!(text.contains("repl_applied_lsn{replica=\"replica-0\"} 17"));
        assert!(text.contains("repl_lag_lsn{replica=\"replica-0\"} 3"));
        assert!(text.contains("db_vacuum_horizon_lsn 14"));
    }

    #[test]
    fn maint_counters_render() {
        let reg = MetricsRegistry::new();
        // family header present even before any fallback
        let empty = reg.render_prometheus();
        assert!(empty.contains("# TYPE cache_patch_fallbacks_total counter"));
        assert!(empty.contains("cache_patches_applied_total 0"));
        reg.maint.patches_applied.add(5);
        reg.maint.record_fallback("join");
        reg.maint.record_fallback("join");
        reg.maint.record_fallback("like-predicate");
        reg.maint.fragment_rerenders.add(3);
        reg.maint.http_304.add(7);
        reg.maint.apply_micros.observe_us(42);
        let text = reg.render_prometheus();
        assert!(text.contains("cache_patches_applied_total 5"));
        assert!(text.contains("cache_patch_fallbacks_total{reason=\"join\"} 2"));
        assert!(text.contains("cache_patch_fallbacks_total{reason=\"like-predicate\"} 1"));
        assert!(text.contains("fragment_rerenders_total 3"));
        assert!(text.contains("http_304_total 7"));
        assert!(text.contains("maint_apply_micros_count 1"));
        assert_eq!(reg.maint.fallbacks_total(), 3);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for _ in 0..90 {
            h.observe_us(40); // bucket le=50
        }
        for _ in 0..10 {
            h.observe_us(4_000); // bucket le=5000
        }
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.9), 50);
        assert_eq!(h.quantile(0.99), 5_000);
        h.observe_us(10_000_000); // +Inf bucket
        assert_eq!(h.quantile(1.0), *BUCKET_BOUNDS_US.last().unwrap());
    }

    #[test]
    fn hit_ratio() {
        let c = CacheCounters::new();
        assert_eq!(c.hit_ratio(), 0.0);
        c.hits.add(3);
        c.misses.add(1);
        assert!((c.hit_ratio() - 0.75).abs() < 1e-9);
    }
}
