//! Per-request hierarchical span trees with monotonic-clock timing.
//!
//! A [`RequestContext`] is minted at the `httpd` boundary (or created
//! detached for legacy call paths, benches, and worker clones), threaded
//! by `&mut` through controller → page → unit service → SQL, and closed
//! when the response is written. Spans form an arena-backed tree:
//! `enter` pushes a child of the currently open span, `exit` closes it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One timed node in the span tree.
#[derive(Debug, Clone)]
pub struct Span {
    pub name: String,
    /// Arena index of the parent; `None` only for the root.
    pub parent: Option<usize>,
    /// Root is depth 0.
    pub depth: usize,
    /// Microseconds since the context started.
    pub start_us: u64,
    /// `None` while still open.
    pub dur_us: Option<u64>,
}

/// Opaque handle returned by [`RequestContext::enter`]; pass it back to
/// [`RequestContext::exit`]. Misuse (double exit, out-of-order exit) is
/// tolerated: `exit` closes everything opened after the token too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(usize);

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// The observability context carried through one request.
#[derive(Debug)]
pub struct RequestContext {
    pub request_id: String,
    started: Instant,
    deadline: Option<Instant>,
    spans: Vec<Span>,
    /// Stack of open span indices; `open[0]` is always the root until
    /// [`finish`](RequestContext::finish).
    open: Vec<usize>,
    detached: bool,
}

impl RequestContext {
    /// Mint a context for an incoming request. The root span is named
    /// `request`.
    pub fn new(request_id: impl Into<String>) -> RequestContext {
        let mut ctx = RequestContext {
            request_id: request_id.into(),
            started: Instant::now(),
            deadline: None,
            spans: Vec::with_capacity(16),
            open: Vec::with_capacity(8),
            detached: false,
        };
        ctx.spans.push(Span {
            name: "request".into(),
            parent: None,
            depth: 0,
            start_us: 0,
            dur_us: None,
        });
        ctx.open.push(0);
        ctx
    }

    /// Mint a context with a fresh process-unique id (`req-N`).
    pub fn next() -> RequestContext {
        let n = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        RequestContext::new(format!("req-{n}"))
    }

    /// A context for call paths that predate the observability spine
    /// (legacy APIs, benches, app-server worker clones). Fully
    /// functional, but marked so exporters can tell it was not minted at
    /// the HTTP boundary.
    pub fn detached() -> RequestContext {
        let mut ctx = RequestContext::next();
        ctx.detached = true;
        ctx
    }

    pub fn is_detached(&self) -> bool {
        self.detached
    }

    /// Set an absolute deadline `budget` from now.
    pub fn with_deadline(mut self, budget: Duration) -> RequestContext {
        self.deadline = Some(self.started + budget);
        self
    }

    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// Microseconds since the context was minted.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Open a child span of the innermost open span.
    pub fn enter(&mut self, name: impl Into<String>) -> SpanToken {
        let parent = self.open.last().copied();
        let depth = parent.map_or(0, |p| self.spans[p].depth + 1);
        let idx = self.spans.len();
        self.spans.push(Span {
            name: name.into(),
            parent,
            depth,
            start_us: self.elapsed_us(),
            dur_us: None,
        });
        self.open.push(idx);
        SpanToken(idx)
    }

    /// Close the span for `token` (and, defensively, anything opened
    /// after it that was left open). Returns the span's duration in µs.
    pub fn exit(&mut self, token: SpanToken) -> u64 {
        let now = self.elapsed_us();
        let mut duration = 0;
        while let Some(&top) = self.open.last() {
            if top < token.0 {
                break; // token already closed (double exit) — no-op
            }
            self.open.pop();
            let span = &mut self.spans[top];
            if span.dur_us.is_none() {
                span.dur_us = Some(now - span.start_us);
            }
            if top == token.0 {
                duration = span.dur_us.unwrap_or(0);
                break;
            }
        }
        duration
    }

    /// Run `f` inside a span; exit is guaranteed even on early return
    /// (but not across panics — the tree is per-request and dropped).
    pub fn in_span<T>(&mut self, name: impl Into<String>, f: impl FnOnce(&mut Self) -> T) -> T {
        let token = self.enter(name);
        let out = f(self);
        self.exit(token);
        out
    }

    /// Close every open span including the root; returns total request
    /// duration in µs. Idempotent.
    pub fn finish(&mut self) -> u64 {
        let now = self.elapsed_us();
        while let Some(top) = self.open.pop() {
            let span = &mut self.spans[top];
            if span.dur_us.is_none() {
                span.dur_us = Some(now - span.start_us);
            }
        }
        self.spans[0].dur_us.unwrap_or(now)
    }

    /// All spans in creation (= start-time) order; index 0 is the root.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// `true` when every `enter` has been matched by an `exit` (root
    /// included only after [`finish`](RequestContext::finish)).
    pub fn balanced(&self) -> bool {
        self.open.is_empty()
    }

    /// Number of currently open spans (root counts until `finish`).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Deepest level in the tree; the root is level 0, so a
    /// `request > page > unit > sql` trace reports 3.
    pub fn max_depth(&self) -> usize {
        self.spans.iter().map(|s| s.depth).max().unwrap_or(0)
    }

    /// Compact single-line summary for the `X-Trace` response header:
    /// `id;name~depth~start_us+dur_us;...` using only header-safe chars
    /// (`;` and `~` inside span names are sanitised to `_`).
    pub fn trace_summary(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 24);
        out.push_str(&self.request_id);
        for s in &self.spans {
            out.push(';');
            for c in s.name.chars() {
                if c == ';' || c == '~' || c.is_control() {
                    out.push('_');
                } else {
                    out.push(c);
                }
            }
            out.push('~');
            out.push_str(&s.depth.to_string());
            out.push('~');
            out.push_str(&s.start_us.to_string());
            out.push('+');
            out.push_str(&s.dur_us.unwrap_or(0).to_string());
        }
        out
    }

    /// JSON trace dump (for tests and benches): a nested tree of
    /// `{"name", "start_us", "dur_us", "children": [...]}` objects under
    /// `{"request_id", "detached", "trace"}`.
    pub fn to_json(&self) -> String {
        fn escape(s: &str, out: &mut String) {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        fn write_node(spans: &[Span], children: &[Vec<usize>], idx: usize, out: &mut String) {
            out.push_str("{\"name\":");
            escape(&spans[idx].name, out);
            out.push_str(&format!(
                ",\"start_us\":{},\"dur_us\":{},\"children\":[",
                spans[idx].start_us,
                spans[idx].dur_us.unwrap_or(0)
            ));
            for (i, &c) in children[idx].iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_node(spans, children, c, out);
            }
            out.push_str("]}");
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                children[p].push(i);
            }
        }
        let mut out = String::with_capacity(128 + self.spans.len() * 48);
        out.push_str("{\"request_id\":");
        escape(&self.request_id, &mut out);
        out.push_str(&format!(",\"detached\":{},\"trace\":", self.detached));
        write_node(&self.spans, &children, 0, &mut out);
        out.push('}');
        out
    }
}

impl Default for RequestContext {
    fn default() -> RequestContext {
        RequestContext::next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_ordering() {
        let mut ctx = RequestContext::new("r1");
        let page = ctx.enter("page:Home");
        let unit = ctx.enter("unit:idx3");
        let sql = ctx.enter("sql");
        assert_eq!(ctx.max_depth(), 3);
        ctx.exit(sql);
        ctx.exit(unit);
        let unit2 = ctx.enter("unit:d1");
        ctx.exit(unit2);
        ctx.exit(page);
        ctx.finish();
        assert!(ctx.balanced());
        let spans = ctx.spans();
        assert_eq!(spans[0].name, "request");
        assert_eq!(spans[1].name, "page:Home");
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[3].parent, Some(2));
        assert_eq!(spans[4].parent, Some(1));
        // start times are monotone in creation order
        for w in spans.windows(2) {
            assert!(w[0].start_us <= w[1].start_us);
        }
        // children are contained in their parents
        for s in &spans[1..] {
            let p = &spans[s.parent.unwrap()];
            assert!(s.start_us >= p.start_us);
            assert!(
                s.start_us + s.dur_us.unwrap() <= p.start_us + p.dur_us.unwrap(),
                "child escapes parent"
            );
        }
    }

    #[test]
    fn exit_closes_abandoned_children() {
        let mut ctx = RequestContext::new("r2");
        let outer = ctx.enter("outer");
        let _leaked = ctx.enter("leaked");
        ctx.exit(outer); // must close `leaked` too
        assert_eq!(ctx.open_spans(), 1); // only root
        assert!(ctx.spans().iter().skip(1).all(|s| s.dur_us.is_some()));
        // double-exit is a no-op
        ctx.exit(outer);
        assert_eq!(ctx.open_spans(), 1);
    }

    #[test]
    fn in_span_scopes_and_returns() {
        let mut ctx = RequestContext::new("r3");
        let v = ctx.in_span("page:P", |ctx| {
            ctx.in_span("unit:U", |ctx| ctx.in_span("sql", |_| 42))
        });
        assert_eq!(v, 42);
        assert_eq!(ctx.max_depth(), 3);
        ctx.finish();
        assert!(ctx.balanced());
    }

    #[test]
    fn finish_is_idempotent_and_total() {
        let mut ctx = RequestContext::new("r4");
        ctx.enter("a");
        std::thread::sleep(Duration::from_millis(2));
        let total = ctx.finish();
        assert!(total >= 2_000, "expected >= 2000us, got {total}");
        let again = ctx.finish();
        assert_eq!(total, again);
    }

    #[test]
    fn summary_and_json_shapes() {
        let mut ctx = RequestContext::new("req-9");
        ctx.in_span("page:Home", |ctx| ctx.in_span("unit:u1;v~2", |_| ()));
        ctx.finish();
        let s = ctx.trace_summary();
        assert!(s.starts_with("req-9;request~0~0+"));
        assert!(s.contains(";page:Home~1~"));
        // `;` and `~` in span names are sanitised so the record format
        // stays parseable
        assert!(s.contains(";unit:u1_v_2~2~"));
        let j = ctx.to_json();
        assert!(j.contains("\"request_id\":\"req-9\""));
        assert!(j.contains("\"name\":\"page:Home\""));
    }

    #[test]
    fn deadline() {
        let ctx = RequestContext::new("r5").with_deadline(Duration::from_secs(60));
        assert!(!ctx.deadline_exceeded());
        let ctx2 = RequestContext::new("r6").with_deadline(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(1));
        assert!(ctx2.deadline_exceeded());
    }

    #[test]
    fn unique_detached_ids() {
        let a = RequestContext::detached();
        let b = RequestContext::detached();
        assert!(a.is_detached());
        assert_ne!(a.request_id, b.request_id);
    }
}
