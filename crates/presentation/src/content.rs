//! The device-independent content of a computed unit.
//!
//! The MVC runtime turns unit beans into [`UnitContent`]; the unit rules of
//! [`crate::rules`] turn `UnitContent` into markup. This is the custom-tag
//! boundary of §3: tags "transform the content stored in the unit beans
//! into HTML" without knowing how the beans were computed.

/// A hyperlink produced by a unit row (href + anchor label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnchorRef {
    pub href: String,
    pub label: String,
}

/// One row of an index-like unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContentRow {
    /// Displayed fields in order: (label, value).
    pub fields: Vec<(String, String)>,
    /// Row anchor (index units link each row).
    pub anchor: Option<AnchorRef>,
    /// Checkbox value for multichoice rows.
    pub checkbox: Option<String>,
}

/// One row of a hierarchical index, with nested children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NestedRow {
    pub fields: Vec<(String, String)>,
    pub anchor: Option<AnchorRef>,
    pub children: Vec<NestedRow>,
}

/// One input of a rendered form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormField {
    pub name: String,
    pub label: String,
    /// HTML input type (`text`, `number`, `checkbox`, ...).
    pub input_type: String,
    pub required: bool,
    /// Client-side validation pattern, emitted as a `pattern` attribute
    /// (§1: "client-side processing (like input validation) should be
    /// factored out of the code generation process").
    pub pattern: Option<String>,
}

/// The content of an entry unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormContent {
    /// Submit target URL.
    pub action: String,
    pub fields: Vec<FormField>,
    pub submit_label: String,
    /// Hidden parameters propagated with the form.
    pub hidden: Vec<(String, String)>,
}

/// Scroller block-navigation state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pager {
    pub prev: Option<String>,
    pub next: Option<String>,
    /// e.g. "11-20 of 134".
    pub position: String,
}

/// Kind-specific payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentBody {
    /// Data unit: one instance as (label, value) pairs.
    Single(Vec<(String, String)>),
    /// Index / multidata / multichoice / scroller rows.
    Rows(Vec<ContentRow>),
    /// Hierarchical index.
    Nested(Vec<NestedRow>),
    /// Entry unit form.
    Form(FormContent),
    /// Raw markup from a plug-in unit.
    Raw(String),
}

/// The complete renderable content of one computed unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitContent {
    /// Unit descriptor id.
    pub unit: String,
    /// WebML type name (drives unit-rule matching).
    pub unit_type: String,
    /// Displayed unit title (the unit's model name).
    pub title: String,
    pub body: ContentBody,
    pub pager: Option<Pager>,
    /// Unit-level action links (e.g. "edit" from a data unit).
    pub actions: Vec<AnchorRef>,
}

impl UnitContent {
    /// Number of instance rows (for stats and paging UIs).
    pub fn row_count(&self) -> usize {
        match &self.body {
            ContentBody::Single(_) => 1,
            ContentBody::Rows(r) => r.len(),
            ContentBody::Nested(r) => r.len(),
            ContentBody::Form(_) | ContentBody::Raw(_) => 0,
        }
    }
}

/// HTML-escape a text fragment.
pub fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_html_into(&mut out, s);
    out
}

/// HTML-escape `s` directly into `out` — the allocation-free form for
/// render loops that reuse one buffer across many values.
pub fn escape_html_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_count_by_body() {
        let single = UnitContent {
            unit: "u".into(),
            unit_type: "data".into(),
            title: "T".into(),
            body: ContentBody::Single(vec![("a".into(), "1".into())]),
            pager: None,
            actions: vec![],
        };
        assert_eq!(single.row_count(), 1);
        let rows = UnitContent {
            body: ContentBody::Rows(vec![ContentRow::default(), ContentRow::default()]),
            ..single.clone()
        };
        assert_eq!(rows.row_count(), 2);
        let form = UnitContent {
            body: ContentBody::Form(FormContent {
                action: "/x".into(),
                fields: vec![],
                submit_label: "Go".into(),
                hidden: vec![],
            }),
            ..single
        };
        assert_eq!(form.row_count(), 0);
    }

    #[test]
    fn escape_html_covers_specials() {
        assert_eq!(escape_html("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(escape_html("plain"), "plain");
    }
}
