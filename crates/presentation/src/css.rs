//! Modular CSS generation.
//!
//! §5: "graphic properties should not be coded as tag attributes in the
//! HTML mark-up, but should be factored out into Cascading Style Sheets
//! ... A good practice ... is to leverage the conceptual model to
//! modularise the CSS rules. A set of rules can be designed for each WebML
//! unit, by identifying the different graphic elements needed to present a
//! certain kind of unit."

use crate::rules::RuleSet;
use std::fmt::Write;

/// One CSS rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CssRule {
    pub selector: String,
    pub declarations: Vec<(String, String)>,
}

impl CssRule {
    pub fn new(selector: impl Into<String>) -> CssRule {
        CssRule {
            selector: selector.into(),
            declarations: Vec::new(),
        }
    }

    pub fn decl(mut self, prop: impl Into<String>, value: impl Into<String>) -> CssRule {
        self.declarations.push((prop.into(), value.into()));
        self
    }
}

/// A stylesheet: a named, ordered set of rules grouped by the unit kind
/// they present (the conceptual-model-driven modularisation of §5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stylesheet {
    pub name: String,
    /// `(module, rules)` — one module per unit kind plus `page`.
    pub modules: Vec<(String, Vec<CssRule>)>,
}

impl Stylesheet {
    /// Generate the stylesheet backing a rule set: a `page` module plus
    /// one module per unit kind the rule set knows about.
    pub fn for_rule_set(rs: &RuleSet, unit_types: &[&str]) -> Stylesheet {
        let mut modules = Vec::new();
        modules.push((
            "page".to_string(),
            vec![
                CssRule::new("body")
                    .decl("font-family", "Verdana, sans-serif")
                    .decl("margin", "0"),
                CssRule::new(".banner")
                    .decl("background", "#003366")
                    .decl("color", "#ffffff")
                    .decl("padding", "8px"),
                CssRule::new(".footer")
                    .decl("border-top", "1px solid #ccc")
                    .decl("font-size", "80%"),
                CssRule::new(".page-grid td").decl("vertical-align", "top"),
                CssRule::new("nav.landmarks a").decl("margin-right", "12px"),
            ],
        ));
        for ut in unit_types {
            let rule = rs.unit_rule_for(ut);
            let box_class = rule.map(|r| r.box_class.clone()).unwrap_or("unit".into());
            let mut rules = vec![
                CssRule::new(format!(".{box_class}-{ut}"))
                    .decl("border", "1px solid #dddddd")
                    .decl("margin", "6px")
                    .decl("padding", "6px"),
                CssRule::new(format!(".{box_class}-{ut} .unit-title"))
                    .decl("font-size", "110%")
                    .decl("color", "#003366"),
            ];
            if rule.is_some_and(|r| r.zebra) {
                rules.push(
                    CssRule::new(format!(".{box_class}-{ut} .row.alt"))
                        .decl("background", "#f4f4f8"),
                );
            }
            if rule.is_some_and(|r| r.mouse_over_effect) {
                rules.push(
                    CssRule::new(format!(".{box_class}-{ut} .hover")).decl("background", "#ffffcc"),
                );
            }
            modules.push((ut.to_string(), rules));
        }
        Stylesheet {
            name: rs.name.clone(),
            modules,
        }
    }

    /// Total number of rules across modules.
    pub fn rule_count(&self) -> usize {
        self.modules.iter().map(|(_, r)| r.len()).sum()
    }

    /// Render to CSS text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "/* stylesheet: {} */", self.name);
        for (module, rules) in &self.modules {
            let _ = writeln!(out, "/* module: {module} */");
            for r in rules {
                let _ = writeln!(out, "{} {{", r.selector);
                for (p, v) in &r.declarations {
                    let _ = writeln!(out, "  {p}: {v};");
                }
                let _ = writeln!(out, "}}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    #[test]
    fn generates_module_per_unit_kind() {
        let rs = RuleSet::default_desktop("b2c");
        let css = Stylesheet::for_rule_set(&rs, &["data", "index", "entry"]);
        assert_eq!(css.modules.len(), 4); // page + 3 unit kinds
        let text = css.render();
        assert!(text.contains("/* module: index */"));
        assert!(text.contains(".unit-data"));
        assert!(text.contains(".unit-index .row.alt")); // zebra on by default
    }

    #[test]
    fn render_is_valid_css_shape() {
        let rs = RuleSet::minimal_device("pda");
        let css = Stylesheet::for_rule_set(&rs, &["data"]).render();
        assert_eq!(css.matches('{').count(), css.matches('}').count());
        assert!(css.contains("body {"));
    }

    #[test]
    fn rule_count_sums_modules() {
        let rs = RuleSet::default_desktop("x");
        let css = Stylesheet::for_rule_set(&rs, &["data", "index"]);
        assert!(css.rule_count() >= 9);
    }
}
