//! Multi-device adaptation.
//!
//! §5: "Different XSL rules can be designed addressing the presentation
//! requirements of alternative devices; then, the most appropriate rules
//! can be dynamically applied at runtime, based on the user agent declared
//! in the HTTP request."

use crate::rules::RuleSet;

/// One device class and the user-agent substrings that identify it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceClass {
    pub name: String,
    /// Case-insensitive substrings matched against the User-Agent header.
    pub ua_markers: Vec<String>,
}

/// Maps User-Agent strings to rule sets.
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    /// Ordered: first match wins.
    classes: Vec<(DeviceClass, RuleSet)>,
    /// Fallback rule set when nothing matches.
    default_rules: Option<RuleSet>,
}

impl DeviceRegistry {
    pub fn new() -> DeviceRegistry {
        DeviceRegistry::default()
    }

    /// A registry with the three classic classes: desktop (default),
    /// PDA/phone, and WAP.
    pub fn standard() -> DeviceRegistry {
        let mut r = DeviceRegistry::new();
        r.register(
            DeviceClass {
                name: "pda".into(),
                ua_markers: vec!["pda".into(), "mobile".into(), "palm".into(), "phone".into()],
            },
            RuleSet::minimal_device("pda"),
        );
        r.register(
            DeviceClass {
                name: "wap".into(),
                ua_markers: vec!["wap".into(), "wml".into()],
            },
            RuleSet::minimal_device("wap"),
        );
        r.set_default(RuleSet::default_desktop("desktop"));
        r
    }

    pub fn register(&mut self, class: DeviceClass, rules: RuleSet) {
        self.classes.push((class, rules));
    }

    pub fn set_default(&mut self, rules: RuleSet) {
        self.default_rules = Some(rules);
    }

    /// Select the rule set for a User-Agent header value.
    pub fn select(&self, user_agent: &str) -> Option<&RuleSet> {
        let ua = user_agent.to_ascii_lowercase();
        for (class, rules) in &self.classes {
            if class.ua_markers.iter().any(|m| ua.contains(m.as_str())) {
                return Some(rules);
            }
        }
        self.default_rules.as_ref()
    }

    /// Name of the device class matched by a User-Agent.
    pub fn classify(&self, user_agent: &str) -> &str {
        let ua = user_agent.to_ascii_lowercase();
        for (class, _) in &self.classes {
            if class.ua_markers.iter().any(|m| ua.contains(m.as_str())) {
                return &class.name;
            }
        }
        "desktop"
    }

    /// All registered rule sets (default last), for compile-time styling
    /// of every device variant.
    pub fn rule_sets(&self) -> Vec<&RuleSet> {
        let mut v: Vec<&RuleSet> = self.classes.iter().map(|(_, r)| r).collect();
        if let Some(d) = &self.default_rules {
            v.push(d);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_classifies() {
        let r = DeviceRegistry::standard();
        assert_eq!(r.classify("Mozilla/5.0 (Windows NT 10.0)"), "desktop");
        assert_eq!(r.classify("SuperBrowser Mobile/1.0"), "pda");
        assert_eq!(r.classify("Nokia-WAP-Gateway"), "wap");
    }

    #[test]
    fn select_returns_matching_rules() {
        let r = DeviceRegistry::standard();
        assert_eq!(r.select("PalmOS PDA").unwrap().name, "pda");
        assert_eq!(r.select("Firefox").unwrap().name, "desktop");
    }

    #[test]
    fn first_match_wins() {
        let mut r = DeviceRegistry::new();
        r.register(
            DeviceClass {
                name: "a".into(),
                ua_markers: vec!["x".into()],
            },
            RuleSet::minimal_device("a"),
        );
        r.register(
            DeviceClass {
                name: "b".into(),
                ua_markers: vec!["x".into()],
            },
            RuleSet::minimal_device("b"),
        );
        assert_eq!(r.classify("x-agent"), "a");
    }

    #[test]
    fn rule_sets_include_default_last() {
        let r = DeviceRegistry::standard();
        let sets = r.rule_sets();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets.last().unwrap().name, "desktop");
    }

    #[test]
    fn empty_registry_selects_none() {
        let r = DeviceRegistry::new();
        assert!(r.select("anything").is_none());
        assert_eq!(r.classify("anything"), "desktop");
    }
}
