//! # presentation — templates, layout rules, CSS, and device adaptation
//!
//! §5 of the paper factors presentation out of code generation:
//!
//! * the generator emits **template skeletons** ([`skeleton`]) — minimal
//!   layout grids containing `webml:` custom tags;
//! * **page rules** and **unit rules** ([`rules`]) — our XSLT analogue —
//!   transform skeletons into styled templates, either once at compile
//!   time or per request at runtime;
//! * graphic properties live in **modular CSS** ([`css`]), one module per
//!   unit kind, leveraging the conceptual model;
//! * rule sets are selected per **device class** from the User-Agent
//!   ([`device`]), enabling multi-device applications from one model.
//!
//! The dynamic content itself flows through [`content::UnitContent`], the
//! custom-tag boundary between the business tier and the view.

pub mod content;
pub mod css;
pub mod device;
pub mod rules;
pub mod skeleton;

pub use content::{
    escape_html, escape_html_into, AnchorRef, ContentBody, ContentRow, FormContent, FormField,
    NestedRow, Pager, UnitContent,
};
pub use css::{CssRule, Stylesheet};
pub use device::{DeviceClass, DeviceRegistry};
pub use rules::{
    render_template, render_template_chunks, HtmlChunk, PageRule, RuleSet, StyledTemplate, UnitRule,
};
pub use skeleton::{TemplateNode, TemplateSkeleton};
