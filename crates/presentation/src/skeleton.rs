//! Template skeletons — Fig. 7, left side.
//!
//! §5: the generator produces "a page template skeleton, which includes all
//! the custom tags corresponding to the units of the page, but only the
//! minimal HTML mark-up needed to define the layout grid of the page and
//! the position of the various units in such a grid". XSLT-like rules (see
//! [`crate::rules`]) then transform the skeleton into the final template.

use std::fmt::Write;

/// One node of a template tree (skeleton or styled template alike).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateNode {
    /// A plain HTML element.
    Element {
        tag: String,
        attrs: Vec<(String, String)>,
        children: Vec<TemplateNode>,
    },
    /// Literal text.
    Text(String),
    /// A `webml:` custom tag — the placeholder where a unit's dynamic
    /// content is produced at request time from its unit beans (§3: "in
    /// the View, content units map to custom tags transforming the content
    /// stored in the unit beans into HTML").
    UnitSlot {
        /// Unit descriptor id.
        unit: String,
        /// WebML unit type (selects the unit rule and the runtime tag).
        unit_type: String,
    },
    /// Placeholder substituted with the site-view navigation (landmark
    /// pages) by the page rule.
    NavSlot,
}

impl TemplateNode {
    pub fn element(tag: impl Into<String>) -> TemplateNode {
        TemplateNode::Element {
            tag: tag.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> TemplateNode {
        if let TemplateNode::Element { attrs, .. } = &mut self {
            attrs.push((name.into(), value.into()));
        }
        self
    }

    pub fn with_child(mut self, child: TemplateNode) -> TemplateNode {
        if let TemplateNode::Element { children, .. } = &mut self {
            children.push(child);
        }
        self
    }

    pub fn with_text(self, t: impl Into<String>) -> TemplateNode {
        self.with_child(TemplateNode::Text(t.into()))
    }

    /// Visit every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&TemplateNode)) {
        f(self);
        if let TemplateNode::Element { children, .. } = self {
            for c in children {
                c.walk(f);
            }
        }
    }

    /// Collect the unit ids referenced by slots under this node.
    pub fn unit_slots(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |n| {
            if let TemplateNode::UnitSlot { unit, .. } = n {
                out.push(unit.clone());
            }
        });
        out
    }

    /// Serialize to template source text. Unit slots render as
    /// `<webml:TYPEUnit unit="ID"/>` custom tags — the JSP-with-custom-tags
    /// file a WebRatio project would contain.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        self.write_source(&mut out, 0);
        out
    }

    fn write_source(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            TemplateNode::Text(t) => {
                let _ = writeln!(out, "{pad}{t}");
            }
            TemplateNode::UnitSlot { unit, unit_type } => {
                let _ = writeln!(out, "{pad}<webml:{unit_type}Unit unit=\"{unit}\"/>");
            }
            TemplateNode::NavSlot => {
                let _ = writeln!(out, "{pad}<webml:navigation/>");
            }
            TemplateNode::Element {
                tag,
                attrs,
                children,
            } => {
                let mut open = format!("{pad}<{tag}");
                for (n, v) in attrs {
                    let _ = write!(open, " {n}=\"{v}\"");
                }
                if children.is_empty() {
                    let _ = writeln!(out, "{open}/>");
                } else {
                    let _ = writeln!(out, "{open}>");
                    for c in children {
                        c.write_source(out, depth + 1);
                    }
                    let _ = writeln!(out, "{pad}</{tag}>");
                }
            }
        }
    }
}

/// The skeleton of one page template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSkeleton {
    /// Page descriptor id.
    pub page: String,
    pub page_name: String,
    /// Layout category name (drives page-rule selection).
    pub layout: String,
    pub root: TemplateNode,
}

impl TemplateSkeleton {
    /// Build the minimal layout grid for a list of unit slots: a single
    /// table with one cell per unit, arranged into the given number of
    /// columns — exactly the "minimal HTML mark-up needed to define the
    /// layout grid" of §5.
    pub fn grid(
        page: impl Into<String>,
        page_name: impl Into<String>,
        layout: impl Into<String>,
        units: &[(String, String)],
        columns: usize,
    ) -> TemplateSkeleton {
        let columns = columns.max(1);
        let mut table = TemplateNode::element("table");
        let mut row = TemplateNode::element("tr");
        for (i, (unit, unit_type)) in units.iter().enumerate() {
            if i > 0 && i % columns == 0 {
                table = table.with_child(row);
                row = TemplateNode::element("tr");
            }
            row = row.with_child(
                TemplateNode::element("td").with_child(TemplateNode::UnitSlot {
                    unit: unit.clone(),
                    unit_type: unit_type.clone(),
                }),
            );
        }
        table = table.with_child(row);
        let body = TemplateNode::element("body")
            .with_child(TemplateNode::NavSlot)
            .with_child(table);
        TemplateSkeleton {
            page: page.into(),
            page_name: page_name.into(),
            layout: layout.into(),
            root: TemplateNode::element("html").with_child(body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skeleton() -> TemplateSkeleton {
        TemplateSkeleton::grid(
            "page2",
            "Volume Page",
            "two-columns",
            &[
                ("unit5".into(), "data".into()),
                ("unit7".into(), "hierarchy".into()),
                ("unit8".into(), "entry".into()),
            ],
            2,
        )
    }

    #[test]
    fn grid_places_units_in_rows() {
        let s = skeleton();
        assert_eq!(s.root.unit_slots(), vec!["unit5", "unit7", "unit8"]);
        let src = s.root.to_source();
        assert!(src.contains("<webml:dataUnit unit=\"unit5\"/>"));
        assert!(src.contains("<webml:hierarchyUnit unit=\"unit7\"/>"));
        // 3 units in 2 columns = 2 rows
        assert_eq!(src.matches("<tr>").count(), 2);
    }

    #[test]
    fn skeleton_is_minimal() {
        // §5: the skeleton has no presentation attributes at all
        let src = skeleton().root.to_source();
        assert!(!src.contains("class="));
        assert!(!src.contains("style="));
        assert!(!src.contains("<head"));
    }

    #[test]
    fn builder_nests() {
        let n = TemplateNode::element("div")
            .with_attr("id", "x")
            .with_child(TemplateNode::element("span").with_text("hi"));
        let src = n.to_source();
        assert!(src.contains("<div id=\"x\">"));
        assert!(src.contains("<span>"));
        assert!(src.contains("hi"));
    }

    #[test]
    fn walk_counts_nodes() {
        let s = skeleton();
        let mut n = 0;
        s.root.walk(&mut |_| n += 1);
        assert!(n > 8);
    }

    #[test]
    fn zero_columns_clamped() {
        let s =
            TemplateSkeleton::grid("p", "P", "single-column", &[("u".into(), "data".into())], 0);
        assert_eq!(s.root.unit_slots(), vec!["u"]);
    }
}
