//! Committed-change records: the redo stream a durability subsystem (or a
//! replica) consumes.
//!
//! The engine keeps its *undo* log for rollback (see [`crate::storage`]);
//! a write-ahead log needs the opposite direction — the **redo** image of
//! every committed transaction. [`redo_from_undo`] derives that image at
//! commit time, while the storage write lock is still held, so the emitted
//! stream is totally ordered and consistent with commit order.
//!
//! The records are *physical*: they name the exact row slot ([`RowId`])
//! they touch and carry full row values, so replaying them with
//! [`crate::Database::apply_change`] is idempotent — re-applying a record
//! converges to the same state, which is what makes fuzzy snapshots (taken
//! while the log keeps growing) safe.

use crate::storage::{Storage, UndoOp};
use crate::table::{Row, RowId};
use std::collections::HashMap;

/// One committed physical change, as published to a [`CommitSink`].
///
/// Table names are stored in their canonical (lower-case) form, matching
/// the storage map and the entity names that unit descriptors use for
/// cache invalidation.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeRecord {
    /// A row now exists at `row_id` with these values.
    Insert {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// The row at `row_id` now has these values.
    Update {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// The row at `row_id` is gone. Carries the deleted row's last image
    /// so downstream consumers (incremental cache maintenance, oid-scoped
    /// invalidation) can tell *which* logical row vanished — `row_id` is a
    /// physical slot, not the oid.
    Delete {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// A schema change, as re-runnable SQL text.
    Ddl { sql: String },
}

impl ChangeRecord {
    /// The entity (table) this record touches, or `None` for DDL.
    pub fn table(&self) -> Option<&str> {
        match self {
            ChangeRecord::Insert { table, .. }
            | ChangeRecord::Update { table, .. }
            | ChangeRecord::Delete { table, .. } => Some(table),
            ChangeRecord::Ddl { .. } => None,
        }
    }
}

/// Where committed changes go. Installed on a [`crate::Database`] via
/// [`crate::Database::set_commit_sink`]; implemented by `wal::Wal`.
///
/// `on_commit` is called **with the storage write lock held**, immediately
/// after the transaction's mutations become visible, so implementations
/// must only do cheap in-memory work (append to a buffer) and return a
/// sequence number. If the sink was installed in *strict* mode the engine
/// calls [`CommitSink::wait_durable`] with that sequence number **after**
/// releasing the lock, which is what makes group commit effective: many
/// committers can wait for one flush together without serializing on the
/// database lock.
pub trait CommitSink: Send + Sync {
    /// Record one committed transaction; returns its log sequence number.
    fn on_commit(&self, changes: Vec<ChangeRecord>) -> u64;

    /// Block until `lsn` is durable. Returns
    /// [`Error::Durability`](crate::Error::Durability) when the sink hit a
    /// real I/O failure and `lsn` can never become durable — the caller's
    /// commit was acknowledged in memory but its record is lost, and that
    /// must surface as an error, not a silent `Ok`. A *simulated* crash
    /// (fault injection) is not an error: a dead machine acks nothing.
    fn wait_durable(&self, lsn: u64) -> crate::Result<()>;
}

/// Derive the redo image of a committed transaction from its undo log.
///
/// Values are resolved *backwards*: the value a row had right after an
/// operation is the `old` image stored by the **next** operation on the
/// same row, or — for the last operation — the row's current value in
/// `storage`. This handles insert-then-update-then-delete chains without
/// ever logging uncommitted intermediates that no longer exist.
///
/// Rows that vanished entirely (inserted and deleted in the same
/// transaction) still produce their `Insert`/`Delete` pair so that slot
/// allocation replays identically.
pub fn redo_from_undo(storage: &Storage, undo: &[UndoOp]) -> Vec<ChangeRecord> {
    let mut later_old: HashMap<(&str, RowId), &Row> = HashMap::new();
    let mut rev: Vec<ChangeRecord> = Vec::with_capacity(undo.len());
    for op in undo.iter().rev() {
        match op {
            UndoOp::Inserted { table, row_id } => {
                let row = later_old
                    .remove(&(table.as_str(), *row_id))
                    .cloned()
                    .or_else(|| current_row(storage, table, *row_id));
                if let Some(row) = row {
                    rev.push(ChangeRecord::Insert {
                        table: table.clone(),
                        row_id: *row_id,
                        row,
                    });
                }
            }
            UndoOp::Updated { table, row_id, old } => {
                let new = match later_old.insert((table.as_str(), *row_id), old) {
                    Some(next_old) => Some(next_old.clone()),
                    None => current_row(storage, table, *row_id),
                };
                if let Some(row) = new {
                    rev.push(ChangeRecord::Update {
                        table: table.clone(),
                        row_id: *row_id,
                        row,
                    });
                }
            }
            UndoOp::Deleted { table, row_id, row } => {
                later_old.insert((table.as_str(), *row_id), row);
                rev.push(ChangeRecord::Delete {
                    table: table.clone(),
                    row_id: *row_id,
                    row: row.clone(),
                });
            }
        }
    }
    rev.reverse();
    rev
}

fn current_row(storage: &Storage, table: &str, id: RowId) -> Option<Row> {
    // the newest version in the chain: at commit time the committer's own
    // versions are still txn-marked, so the committed view won't do
    storage
        .tables
        .get(table)
        .and_then(|t| t.latest_row(id))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Params;
    use crate::Database;
    use crate::Value;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// A sink that records everything it sees.
    #[derive(Default)]
    struct Capture {
        commits: Mutex<Vec<Vec<ChangeRecord>>>,
        next: Mutex<u64>,
    }

    impl CommitSink for Capture {
        fn on_commit(&self, changes: Vec<ChangeRecord>) -> u64 {
            self.commits.lock().push(changes);
            let mut n = self.next.lock();
            *n += 1;
            *n
        }
        fn wait_durable(&self, _lsn: u64) -> crate::Result<()> {
            Ok(())
        }
    }

    fn db_with_sink() -> (Database, Arc<Capture>) {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT NOT NULL)",
        )
        .unwrap();
        let sink = Arc::new(Capture::default());
        db.set_commit_sink(sink.clone(), false);
        (db, sink)
    }

    #[test]
    fn autocommit_insert_emits_redo_with_assigned_values() {
        let (db, sink) = db_with_sink();
        db.execute("INSERT INTO t (v) VALUES ('a')", &Params::new())
            .unwrap();
        let commits = sink.commits.lock();
        assert_eq!(commits.len(), 1);
        match &commits[0][0] {
            ChangeRecord::Insert { table, row_id, row } => {
                assert_eq!(table, "t");
                assert_eq!(*row_id, 0);
                // auto-increment value is the *stored* value, not NULL
                assert_eq!(row[0], Value::Integer(1));
                assert_eq!(row[1], Value::Text("a".into()));
            }
            other => panic!("expected Insert, got {other:?}"),
        }
    }

    #[test]
    fn rolled_back_transaction_emits_nothing() {
        let (db, sink) = db_with_sink();
        let _ = db.transaction(|tx| -> crate::Result<()> {
            tx.execute("INSERT INTO t (v) VALUES ('x')", &Params::new())?;
            Err(crate::Error::Eval("revert".into()))
        });
        assert!(sink.commits.lock().is_empty());
    }

    #[test]
    fn insert_update_in_one_tx_resolves_values_backwards() {
        let (db, sink) = db_with_sink();
        db.transaction(|tx| {
            tx.execute("INSERT INTO t (v) VALUES ('first')", &Params::new())?;
            tx.execute("UPDATE t SET v = 'second' WHERE oid = 1", &Params::new())?;
            Ok(())
        })
        .unwrap();
        let commits = sink.commits.lock();
        assert_eq!(commits.len(), 1);
        let recs = &commits[0];
        assert_eq!(recs.len(), 2);
        // the Insert carries the pre-update value, the Update the final one
        match (&recs[0], &recs[1]) {
            (ChangeRecord::Insert { row, .. }, ChangeRecord::Update { row: new, .. }) => {
                assert_eq!(row[1], Value::Text("first".into()));
                assert_eq!(new[1], Value::Text("second".into()));
            }
            other => panic!("unexpected records: {other:?}"),
        }
    }

    #[test]
    fn insert_then_delete_in_one_tx_replays_slot_allocation() {
        let (db, sink) = db_with_sink();
        db.transaction(|tx| {
            tx.execute("INSERT INTO t (v) VALUES ('ghost')", &Params::new())?;
            tx.execute("DELETE FROM t WHERE v = 'ghost'", &Params::new())?;
            Ok(())
        })
        .unwrap();
        let commits = sink.commits.lock();
        let recs = &commits[0];
        assert_eq!(recs.len(), 2);
        match (&recs[0], &recs[1]) {
            (ChangeRecord::Insert { row, row_id, .. }, ChangeRecord::Delete { row_id: d, .. }) => {
                assert_eq!(row[1], Value::Text("ghost".into()));
                assert_eq!(row_id, d);
            }
            other => panic!("unexpected records: {other:?}"),
        }
    }

    #[test]
    fn ddl_emits_reexecutable_sql() {
        let (db, sink) = db_with_sink();
        db.execute_script("CREATE TABLE u (k INTEGER PRIMARY KEY)")
            .unwrap();
        db.execute("CREATE INDEX ix_v ON t (v)", &Params::new())
            .unwrap();
        db.execute("DROP TABLE u", &Params::new()).unwrap();
        let commits = sink.commits.lock();
        let sqls: Vec<&str> = commits
            .iter()
            .flat_map(|c| c.iter())
            .filter_map(|r| match r {
                ChangeRecord::Ddl { sql } => Some(sql.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(sqls.len(), 3);
        assert!(sqls[0].starts_with("CREATE TABLE u"));
        assert!(sqls[1].contains("CREATE INDEX ix_v ON t (v)"));
        assert!(sqls[2].contains("DROP TABLE u"));
        // the emitted DDL round-trips through a fresh database
        let fresh = Database::new();
        fresh
            .execute_script(
                "CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT NOT NULL)",
            )
            .unwrap();
        for sql in sqls {
            fresh.execute_script(sql).unwrap();
        }
    }

    #[test]
    fn session_commit_emits_once_rollback_never() {
        let (db, sink) = db_with_sink();
        let db = Arc::new(db);
        let mut s = crate::Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        s.execute("INSERT INTO t (v) VALUES ('a')", &Params::new())
            .unwrap();
        s.execute("INSERT INTO t (v) VALUES ('b')", &Params::new())
            .unwrap();
        s.execute("COMMIT", &Params::new()).unwrap();
        assert_eq!(sink.commits.lock().len(), 1);
        assert_eq!(sink.commits.lock()[0].len(), 2);
        s.execute("BEGIN", &Params::new()).unwrap();
        s.execute("INSERT INTO t (v) VALUES ('c')", &Params::new())
            .unwrap();
        s.execute("ROLLBACK", &Params::new()).unwrap();
        assert_eq!(sink.commits.lock().len(), 1);
    }

    #[test]
    fn cascade_delete_emits_every_physical_change() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE parent (oid INTEGER PRIMARY KEY AUTOINCREMENT, n TEXT);
             CREATE TABLE child (oid INTEGER PRIMARY KEY AUTOINCREMENT, p INTEGER,
                 CONSTRAINT fk FOREIGN KEY (p) REFERENCES parent (oid) ON DELETE CASCADE);",
        )
        .unwrap();
        db.execute("INSERT INTO parent (n) VALUES ('x')", &Params::new())
            .unwrap();
        db.execute("INSERT INTO child (p) VALUES (1), (1)", &Params::new())
            .unwrap();
        let sink = Arc::new(Capture::default());
        db.set_commit_sink(sink.clone(), false);
        db.execute("DELETE FROM parent WHERE oid = 1", &Params::new())
            .unwrap();
        let commits = sink.commits.lock();
        assert_eq!(commits.len(), 1);
        let deletes = commits[0]
            .iter()
            .filter(|r| matches!(r, ChangeRecord::Delete { .. }))
            .count();
        assert_eq!(deletes, 3, "parent + 2 cascaded children: {:?}", commits[0]);
    }
}
