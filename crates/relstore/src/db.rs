//! The thread-safe database facade: statement execution, prepared
//! statements, and transactions.

use crate::change::{redo_from_undo, ChangeRecord, CommitSink};
use crate::error::{Error, Result};
use crate::exec::{run_select_with_stats, SelectStats};
use crate::expr::Params;
use crate::result::{ExecResult, ResultSet};
use crate::sql::ast::Statement;
use crate::sql::parser::{parse_script, parse_statement};
use crate::storage::{Storage, UndoLog};
use crate::table::{Snapshot, Table, WriteCtx};
use obs::DbCounters;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Commits between inline vacuum sweeps (amortized under the write lock).
const VACUUM_EVERY: u64 = 64;

/// An installed commit sink plus its durability contract.
struct CommitHook {
    sink: Arc<dyn CommitSink>,
    /// When true, DML calls block until the sink reports the commit
    /// durable (group commit: the wait happens *outside* the storage lock).
    strict: bool,
}

/// An in-memory relational database, safe to share across threads.
///
/// `Database` plays the role of the JDBC/ODBC data source in the WebRatio
/// architecture: generic unit services hand it the SQL text stored in their
/// descriptors together with bound parameters.
///
/// Two plan caches back [`Database::prepare`], both copy-on-write
/// (`Arc<HashMap>` behind an `RwLock`) so the read hot path takes zero
/// mutexes end to end:
///
/// * a **pinned** snapshot, populated at deploy time by
///   [`Database::pin_plan`] for descriptor SQL; and
/// * an **ad-hoc** snapshot for SQL that was never pinned, grown
///   copy-on-write on cache miss.
///
/// All counters (prepares, plan-cache hits, statements, rows scanned) live
/// in an [`obs::DbCounters`] so a deployment can hand every tier one shared
/// [`obs::MetricsRegistry`].
///
/// Storage is **multi-versioned** (snapshot isolation): rows are version
/// chains stamped with begin/end commit LSNs minted by the commit path, so
/// readers under the shared lock see a consistent committed prefix while a
/// [`crate::Session`] transaction keeps uncommitted versions in place.
pub struct Database {
    storage: RwLock<Storage>,
    /// Deploy-time frozen plan index (copy-on-write; written only by
    /// [`Database::pin_plan`]).
    pinned: RwLock<Arc<HashMap<String, Arc<Statement>>>>,
    /// Ad-hoc plan cache, same copy-on-write discipline (grown on miss).
    adhoc: RwLock<Arc<HashMap<String, Arc<Statement>>>>,
    /// Shared observability counters (may be the registry's `db` block).
    counters: Arc<DbCounters>,
    /// Optional durability hook: receives the redo stream of every committed
    /// transaction, called while the storage write lock is still held.
    sink: RwLock<Option<CommitHook>>,
    /// The newest commit stamp (version-chain LSN clock). Written only
    /// under the storage write lock; aligned with the WAL LSN whenever a
    /// sink is installed (the stamp is `max(clock + 1, sink LSN)`).
    clock: AtomicU64,
    /// Transaction-id mint for MVCC writers (0 is the plain-reader id).
    next_txid: AtomicU64,
    /// Commit LSNs pinned by open session snapshots (lsn → open count);
    /// vacuum's low-water mark is the smallest key.
    pinned_snapshots: Mutex<BTreeMap<u64, usize>>,
    /// Commits since the last inline vacuum sweep.
    commits_since_vacuum: AtomicU64,
    /// Optional external vacuum horizon (replication): vacuum never
    /// reclaims versions at or above the returned LSN, so a lagging
    /// replica's readers keep seeing the history they pinned. `None`
    /// means unconstrained.
    external_horizon: RwLock<Option<HorizonFn>>,
}

/// Callback answering "what is the oldest LSN an external consumer (e.g.
/// a lagging replica) may still need?" — `u64::MAX` for "no constraint".
pub type HorizonFn = Arc<dyn Fn() -> u64 + Send + Sync>;

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    pub fn new() -> Database {
        Self::with_counters(Arc::new(DbCounters::new()))
    }

    /// Build a database whose counters are shared with an external registry
    /// (typically `MetricsRegistry::db`).
    pub fn with_counters(counters: Arc<DbCounters>) -> Database {
        Database {
            storage: RwLock::new(Storage::default()),
            pinned: RwLock::new(Arc::new(HashMap::new())),
            adhoc: RwLock::new(Arc::new(HashMap::new())),
            counters,
            sink: RwLock::new(None),
            clock: AtomicU64::new(0),
            next_txid: AtomicU64::new(1),
            pinned_snapshots: Mutex::new(BTreeMap::new()),
            commits_since_vacuum: AtomicU64::new(0),
            external_horizon: RwLock::new(None),
        }
    }

    /// Install an external vacuum-horizon source (replication tier). The
    /// callback is polled at every vacuum sweep; versions at or above the
    /// smaller of the local pin horizon and this value survive.
    pub fn set_vacuum_horizon(&self, source: HorizonFn) {
        *self.external_horizon.write() = Some(source);
    }

    /// Remove the external vacuum horizon, if any.
    pub fn clear_vacuum_horizon(&self) {
        *self.external_horizon.write() = None;
    }

    /// Install a [`CommitSink`] that receives the redo image of every
    /// committed transaction (DML) and every schema change (DDL).
    ///
    /// With `strict = true`, mutating calls additionally block — *after*
    /// releasing the storage lock — until the sink reports the commit
    /// durable; this is the group-commit handshake (many committers wait
    /// on one flush without serializing on the database lock).
    pub fn set_commit_sink(&self, sink: Arc<dyn CommitSink>, strict: bool) {
        *self.sink.write() = Some(CommitHook { sink, strict });
    }

    /// Remove the installed commit sink, if any.
    pub fn clear_commit_sink(&self) {
        *self.sink.write() = None;
    }

    /// Commit `txid`'s mutations: publish the redo image to the sink (if
    /// any), then replace the transaction's uncommitted version marks with
    /// the commit stamp — `max(clock + 1, sink LSN)`, so version stamps
    /// align with WAL LSNs whenever a sink is installed. Must be called
    /// with the storage write lock held so the emitted stream and the
    /// stamp order agree with commit order.
    ///
    /// Returns `Some(lsn)` when the caller must wait for durability after
    /// releasing the lock (strict mode).
    pub(crate) fn commit_locked(
        &self,
        storage: &mut Storage,
        undo: &UndoLog,
        txid: u64,
    ) -> Option<u64> {
        if undo.is_empty() {
            return None;
        }
        let mut wait = None;
        let mut sink_lsn = 0u64;
        {
            let guard = self.sink.read();
            if let Some(hook) = guard.as_ref() {
                let changes = redo_from_undo(storage, undo);
                if !changes.is_empty() {
                    let lsn = hook.sink.on_commit(changes);
                    sink_lsn = lsn;
                    if hook.strict {
                        wait = Some(lsn);
                    }
                }
            }
        }
        let stamp = (self.clock.load(Ordering::Relaxed) + 1).max(sink_lsn);
        storage.stamp_commit(undo, txid, stamp);
        self.clock.store(stamp, Ordering::SeqCst);
        self.counters
            .versions_live
            .set(storage.version_count() as i64);
        if self.commits_since_vacuum.fetch_add(1, Ordering::Relaxed) + 1 >= VACUUM_EVERY {
            self.commits_since_vacuum.store(0, Ordering::Relaxed);
            self.vacuum_locked(storage);
        }
        wait
    }

    /// The vacuum low-water mark: the oldest LSN a live snapshot can still
    /// read, or the clock when no snapshot is pinned — further capped by
    /// the external horizon (lagging replicas) when one is installed.
    fn low_water(&self) -> u64 {
        let pins = self.pinned_snapshots.lock();
        let clock = self.clock.load(Ordering::SeqCst);
        let local = pins.keys().next().map_or(clock, |&lsn| lsn.min(clock));
        let external = self
            .external_horizon
            .read()
            .as_ref()
            .map_or(u64::MAX, |f| f());
        local.min(external)
    }

    /// Reclaim versions no live snapshot can see (caller holds the write
    /// lock, which also excludes in-flight plain readers).
    fn vacuum_locked(&self, storage: &mut Storage) -> usize {
        let horizon = self.low_water();
        self.counters.vacuum_horizon_lsn.set(horizon as i64);
        let reclaimed = storage.vacuum(horizon);
        if reclaimed > 0 {
            self.counters.vacuum_reclaimed.add(reclaimed as u64);
            self.counters
                .versions_live
                .set(storage.version_count() as i64);
        }
        reclaimed
    }

    /// Run a vacuum sweep now; returns the number of versions reclaimed.
    pub fn vacuum(&self) -> usize {
        let mut storage = self.storage.write();
        self.vacuum_locked(&mut storage)
    }

    /// Mint a transaction id for an MVCC writer.
    pub(crate) fn mint_txid(&self) -> u64 {
        self.next_txid.fetch_add(1, Ordering::Relaxed)
    }

    /// Pin a read snapshot at the current clock (session BEGIN). The
    /// returned LSN stays protected from vacuum until unpinned.
    pub(crate) fn pin_snapshot(&self) -> u64 {
        let mut pins = self.pinned_snapshots.lock();
        // read the clock *inside* the registry lock so a concurrent commit
        // + vacuum cannot slip between the read and the registration
        let lsn = self.clock.load(Ordering::SeqCst);
        *pins.entry(lsn).or_insert(0) += 1;
        self.counters.snapshots_active.add(1);
        lsn
    }

    /// Release a pinned snapshot (session COMMIT/ROLLBACK/drop).
    pub(crate) fn unpin_snapshot(&self, lsn: u64) {
        let mut pins = self.pinned_snapshots.lock();
        if let Some(n) = pins.get_mut(&lsn) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&lsn);
            }
        }
        self.counters.snapshots_active.add(-1);
    }

    /// Count a first-writer-wins loss in the obs counters, pass-through.
    pub(crate) fn note_conflict(&self, e: Error) -> Error {
        if matches!(e, Error::WriteConflict { .. }) {
            self.counters.write_conflicts.inc();
        }
        e
    }

    /// Publish a DDL record to the sink (if any). Caller holds the storage
    /// write lock (same ordering contract as [`Database::emit_locked`]).
    pub(crate) fn emit_ddl_locked(&self, sql: String) -> Option<u64> {
        let guard = self.sink.read();
        let hook = guard.as_ref()?;
        let lsn = hook.sink.on_commit(vec![ChangeRecord::Ddl { sql }]);
        hook.strict.then_some(lsn)
    }

    /// Complete the strict-mode handshake started by `emit_locked`. Must be
    /// called *after* the storage lock is released. Propagates
    /// [`Error::Durability`] when the sink hit a real I/O failure: the
    /// caller's mutation is applied in memory but will not survive a
    /// restart, and acking it with `Ok` would be a lie.
    pub(crate) fn wait_durable_opt(&self, seq: Option<u64>) -> Result<()> {
        if let Some(lsn) = seq {
            let sink = {
                let guard = self.sink.read();
                guard.as_ref().map(|h| Arc::clone(&h.sink))
            };
            if let Some(sink) = sink {
                sink.wait_durable(lsn)?;
            }
        }
        Ok(())
    }

    /// The counters this database reports into.
    pub fn counters(&self) -> &Arc<DbCounters> {
        &self.counters
    }

    /// Total number of statements executed since creation.
    pub fn statements_executed(&self) -> u64 {
        self.counters.statements_executed.get()
    }

    /// Parse (with caching) a SQL string into a shareable statement.
    ///
    /// Lookup order: pinned deploy-time snapshot, then the ad-hoc
    /// snapshot, then a fresh parse (recorded as a prepare; cache hits are
    /// recorded as plan-cache hits). Both caches are copy-on-write maps
    /// read under a shared lock, so the hit path takes zero mutexes.
    pub fn prepare(&self, sql: &str) -> Result<Arc<Statement>> {
        if let Some(s) = self.pinned.read().get(sql) {
            self.counters.plan_cache_hits.inc();
            return Ok(Arc::clone(s));
        }
        if let Some(s) = self.adhoc.read().get(sql) {
            self.counters.plan_cache_hits.inc();
            return Ok(Arc::clone(s));
        }
        self.counters.prepares.inc();
        let stmt = Arc::new(parse_statement(sql)?);
        let mut guard = self.adhoc.write();
        if let Some(s) = guard.get(sql) {
            // another thread won the parse race; share its plan
            return Ok(Arc::clone(s));
        }
        let mut next: HashMap<String, Arc<Statement>> = (**guard).clone();
        next.insert(sql.to_string(), Arc::clone(&stmt));
        *guard = Arc::new(next);
        Ok(stmt)
    }

    /// Resolve `sql` once at deploy time into the frozen plan snapshot and
    /// return the shared plan. Subsequent [`Database::prepare`] calls (and
    /// holders of the returned `Arc` using [`Database::execute_prepared`])
    /// skip the ad-hoc mutex entirely.
    pub fn pin_plan(&self, sql: &str) -> Result<Arc<Statement>> {
        if let Some(s) = self.pinned.read().get(sql) {
            return Ok(Arc::clone(s));
        }
        self.counters.prepares.inc();
        let stmt = Arc::new(parse_statement(sql)?);
        let mut guard = self.pinned.write();
        // Copy-on-write: clone the (small, deploy-sized) map, insert, swap.
        let mut next: HashMap<String, Arc<Statement>> = (**guard).clone();
        next.insert(sql.to_string(), Arc::clone(&stmt));
        *guard = Arc::new(next);
        Ok(stmt)
    }

    /// Number of plans pinned at deploy time.
    pub fn pinned_plan_count(&self) -> usize {
        self.pinned.read().len()
    }

    /// Execute one statement in autocommit mode.
    pub fn execute(&self, sql: &str, params: &Params) -> Result<ExecResult> {
        let stmt = self.prepare(sql)?;
        self.execute_stmt(&stmt, params)
    }

    /// Execute a pre-resolved plan (from [`Database::pin_plan`]) without any
    /// cache lookup. Counted as a plan-cache hit: the prepare was paid once
    /// at deploy time.
    pub fn execute_prepared(&self, stmt: &Arc<Statement>, params: &Params) -> Result<ExecResult> {
        self.counters.plan_cache_hits.inc();
        self.execute_stmt(stmt, params)
    }

    /// [`Database::execute_prepared`] specialised to SELECTs.
    pub fn query_prepared(&self, stmt: &Arc<Statement>, params: &Params) -> Result<ResultSet> {
        match self.execute_prepared(stmt, params)? {
            ExecResult::Rows(r) => Ok(r),
            ExecResult::Affected(_) => Err(Error::Unsupported("query() on a non-SELECT".into())),
        }
    }

    /// Execute a prepared statement in autocommit mode.
    pub fn execute_stmt(&self, stmt: &Statement, params: &Params) -> Result<ExecResult> {
        self.counters.statements_executed.inc();
        match stmt {
            Statement::Select(sel) => {
                let storage = self.storage.read();
                let mut stats = SelectStats::default();
                let rows =
                    run_select_with_stats(&storage, sel, params, Snapshot::latest(), &mut stats)?;
                self.record_select_stats(&stats);
                Ok(ExecResult::Rows(rows))
            }
            Statement::Insert(ins) => {
                let n = self.autocommit_dml(|storage, undo, ctx| {
                    storage.run_insert(ins, params, undo, ctx)
                })?;
                Ok(ExecResult::Affected(n))
            }
            Statement::Update(upd) => {
                let n = self.autocommit_dml(|storage, undo, ctx| {
                    storage.run_update(upd, params, undo, ctx)
                })?;
                Ok(ExecResult::Affected(n))
            }
            Statement::Delete(del) => {
                let n = self.autocommit_dml(|storage, undo, ctx| {
                    storage.run_delete(del, params, undo, ctx)
                })?;
                Ok(ExecResult::Affected(n))
            }
            Statement::CreateTable(schema) => {
                let seq = {
                    let mut storage = self.storage.write();
                    storage.create_table(Table::new(schema.clone())?)?;
                    self.emit_ddl_locked(schema.to_create_sql())
                };
                self.wait_durable_opt(seq)?;
                Ok(ExecResult::Affected(0))
            }
            Statement::CreateIndex(ci) => {
                let seq = {
                    let mut storage = self.storage.write();
                    let table = storage.require_table_mut(&ci.table)?;
                    table.create_index(ci.name.clone(), &ci.columns, ci.unique)?;
                    self.emit_ddl_locked(format!(
                        "CREATE {}INDEX {} ON {} ({})",
                        if ci.unique { "UNIQUE " } else { "" },
                        ci.name,
                        ci.table,
                        ci.columns.join(", ")
                    ))
                };
                self.wait_durable_opt(seq)?;
                Ok(ExecResult::Affected(0))
            }
            Statement::DropTable { name, if_exists } => {
                let seq = {
                    let mut storage = self.storage.write();
                    storage.drop_table(name, *if_exists)?;
                    self.emit_ddl_locked(if *if_exists {
                        format!("DROP TABLE IF EXISTS {name}")
                    } else {
                        format!("DROP TABLE {name}")
                    })
                };
                self.wait_durable_opt(seq)?;
                Ok(ExecResult::Affected(0))
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::Transaction(
                "transaction control requires a Session".into(),
            )),
        }
    }

    /// Run one DML statement as its own transaction: install uncommitted
    /// versions under the write lock, then commit-stamp (or roll back).
    fn autocommit_dml(
        &self,
        f: impl FnOnce(&mut Storage, &mut UndoLog, &WriteCtx) -> Result<usize>,
    ) -> Result<usize> {
        let txid = self.mint_txid();
        let ctx = WriteCtx::exclusive(txid);
        let (n, seq) = {
            let mut storage = self.storage.write();
            let mut undo: UndoLog = Vec::new();
            match f(&mut storage, &mut undo, &ctx) {
                Ok(n) => {
                    let seq = self.commit_locked(&mut storage, &undo, txid);
                    (n, seq)
                }
                Err(e) => {
                    storage.rollback(undo, txid);
                    return Err(self.note_conflict(e));
                }
            }
        };
        self.wait_durable_opt(seq)?;
        Ok(n)
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&self, sql: &str, params: &Params) -> Result<ResultSet> {
        match self.execute(sql, params)? {
            ExecResult::Rows(r) => Ok(r),
            ExecResult::Affected(_) => Err(Error::Unsupported("query() on a non-SELECT".into())),
        }
    }

    /// Run a script of `;`-separated statements (DDL deployment).
    pub fn execute_script(&self, sql: &str) -> Result<usize> {
        let stmts = parse_script(sql)?;
        let n = stmts.len();
        for s in stmts {
            self.execute_stmt(&s, &Params::new())?;
        }
        Ok(n)
    }

    /// Run `f` inside an **exclusive** transaction: all mutations are
    /// rolled back if `f` returns an error. The write lock is held for the
    /// duration, giving serializable isolation with no possibility of a
    /// write conflict — the lock-the-world path (and the mutex baseline
    /// the `exp_mvcc` benchmark measures). Interactive transactions that
    /// must not block readers belong on [`crate::Session`], the
    /// snapshot-isolation path.
    pub fn transaction<T>(&self, f: impl FnOnce(&mut Transaction<'_>) -> Result<T>) -> Result<T> {
        let txid = self.mint_txid();
        let (r, seq) = {
            let mut storage = self.storage.write();
            let mut tx = Transaction {
                storage: &mut storage,
                undo: Vec::new(),
                db: self,
                ctx: WriteCtx::exclusive(txid),
            };
            let r = f(&mut tx);
            let undo = std::mem::take(&mut tx.undo);
            match r {
                Ok(v) => {
                    let seq = self.commit_locked(&mut storage, &undo, txid);
                    (Ok(v), seq)
                }
                Err(e) => {
                    storage.rollback(undo, txid);
                    (Err(e), None)
                }
            }
        };
        self.wait_durable_opt(seq)?;
        r
    }

    /// Run `f` with shared access to the storage (used by [`crate::Session`]).
    pub(crate) fn with_storage<T>(
        &self,
        f: impl FnOnce(&Storage) -> crate::error::Result<T>,
    ) -> crate::error::Result<T> {
        let storage = self.storage.read();
        f(&storage)
    }

    /// Run `f` with exclusive access to the storage.
    pub(crate) fn with_storage_mut<T>(&self, f: impl FnOnce(&mut Storage) -> T) -> T {
        let mut storage = self.storage.write();
        f(&mut storage)
    }

    /// Bump the executed-statement counter (session-path statements).
    pub(crate) fn count_statement(&self) {
        self.counters.statements_executed.inc();
    }

    /// Add to the rows-scanned counter (session-path SELECTs).
    /// Report one SELECT's executor statistics into the shared counters:
    /// totals, access-path choices, and the per-query rows-scanned
    /// distribution.
    pub(crate) fn record_select_stats(&self, stats: &SelectStats) {
        let c = &self.counters;
        c.rows_scanned.add(stats.scanned);
        c.rows_scanned_per_query.observe(stats.scanned);
        c.index_probes.add(stats.index_probes);
        c.hash_joins.add(stats.hash_joins);
        c.topk_shortcuts.add(stats.topk_shortcuts);
        c.scan_fallbacks.add(stats.scan_fallbacks);
    }

    /// Names of all tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.storage.read().table_names()
    }

    /// Live row count of a table.
    pub fn table_len(&self, name: &str) -> Result<usize> {
        Ok(self.storage.read().require_table(name)?.len())
    }

    /// Column names of a table in declaration order. Consumers of the
    /// change stream use this to map positional [`ChangeRecord`] row
    /// values back to named attributes (oid extraction, bean patching).
    pub fn table_columns(&self, name: &str) -> Result<Vec<String>> {
        let storage = self.storage.read();
        let t = storage.require_table(name)?;
        Ok(t.schema.columns.iter().map(|c| c.name.clone()).collect())
    }

    /// Does `table` already have an access path whose leading columns are
    /// exactly `columns`? True when a secondary index prefix-matches or the
    /// primary key starts with those columns. Deploy-time index derivation
    /// uses this to apply `CREATE INDEX` statements idempotently.
    pub fn has_index_on(&self, table: &str, columns: &[&str]) -> Result<bool> {
        let storage = self.storage.read();
        let t = storage.require_table(table)?;
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(t.schema.require_column(c)?);
        }
        let pk = &t.schema.primary_key;
        if pk.len() >= cols.len() && pk[..cols.len()] == *cols.as_slice() {
            return Ok(true);
        }
        Ok(t.find_index_on(&cols).is_some())
    }

    /// Register a table built programmatically (bypasses SQL).
    pub fn create_table(&self, table: Table) -> Result<()> {
        let seq = {
            let mut storage = self.storage.write();
            let sql = table.schema.to_create_sql();
            storage.create_table(table)?;
            self.emit_ddl_locked(sql)
        };
        self.wait_durable_opt(seq)?;
        Ok(())
    }

    /// Apply one committed [`ChangeRecord`] *physically* — rows land in the
    /// exact slot the record names. Used by recovery / replica replay; never
    /// emits to the commit sink and is idempotent (re-applying a record
    /// converges to the same state, which makes fuzzy snapshots safe).
    pub fn apply_change(&self, rec: &ChangeRecord) -> Result<()> {
        match rec {
            ChangeRecord::Insert { table, row_id, row }
            | ChangeRecord::Update { table, row_id, row } => {
                let mut storage = self.storage.write();
                let t = storage.require_table_mut(table)?;
                t.insert_at(*row_id, row.clone())
            }
            ChangeRecord::Delete { table, row_id, .. } => {
                let mut storage = self.storage.write();
                let t = storage.require_table_mut(table)?;
                let _ = t.delete(*row_id); // already-gone is fine (idempotence)
                Ok(())
            }
            ChangeRecord::Ddl { sql } => match self.replay_ddl(sql) {
                Ok(()) => Ok(()),
                // Replaying DDL over a snapshot that already contains the
                // object (or no longer contains it) must converge, not fail.
                Err(Error::DuplicateTable(_))
                | Err(Error::DuplicateIndex(_))
                | Err(Error::UnknownTable(_)) => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    /// Re-execute recorded DDL without emitting it again.
    fn replay_ddl(&self, sql: &str) -> Result<()> {
        let stmt = parse_statement(sql)?;
        let mut storage = self.storage.write();
        match &stmt {
            Statement::CreateTable(schema) => {
                storage.create_table(Table::new(schema.clone())?)?;
            }
            Statement::CreateIndex(ci) => {
                let table = storage.require_table_mut(&ci.table)?;
                table.create_index(ci.name.clone(), &ci.columns, ci.unique)?;
            }
            Statement::DropTable { name, if_exists } => {
                storage.drop_table(name, *if_exists)?;
            }
            _ => {
                return Err(Error::Unsupported(
                    "only DDL can be replayed from a change record".into(),
                ))
            }
        }
        Ok(())
    }

    /// Clone every table under the storage **write** lock, invoking `mark`
    /// while the lock is held. A snapshotter passes a closure that reads the
    /// log's current append position, which pins the exact (tables, lsn)
    /// pair a fuzzy snapshot needs to be consistent.
    pub fn freeze_tables<T>(
        &self,
        mark: impl FnOnce() -> T,
    ) -> (std::collections::BTreeMap<String, Table>, T) {
        let storage = self.storage.write();
        let tables = storage.tables.clone();
        let m = mark();
        (tables, m)
    }

    /// Force a table's auto-increment counter to at least `v` (snapshot
    /// restore).
    pub fn set_auto_counter(&self, table: &str, v: i64) -> Result<()> {
        let mut storage = self.storage.write();
        storage.require_table_mut(table)?.set_next_auto(v);
        Ok(())
    }

    /// A physical dump of every table: `(row_id, row)` pairs plus the
    /// auto-increment high-water mark. Two databases with equal dumps are
    /// physically identical, which is the equality recovery tests need.
    pub fn dump(
        &self,
    ) -> std::collections::BTreeMap<String, (Vec<(crate::table::RowId, crate::table::Row)>, i64)>
    {
        let storage = self.storage.read();
        storage
            .tables
            .iter()
            .map(|(name, t)| {
                let rows: Vec<_> = t.iter().map(|(id, r)| (id, r.clone())).collect();
                (name.clone(), (rows, t.peek_auto()))
            })
            .collect()
    }
}

/// An open transaction. All statements executed through it share one undo
/// log; dropping without `commit` (or returning `Err` from the closure)
/// rolls everything back.
pub struct Transaction<'a> {
    storage: &'a mut Storage,
    undo: UndoLog,
    db: &'a Database,
    ctx: WriteCtx,
}

impl Transaction<'_> {
    pub fn execute(&mut self, sql: &str, params: &Params) -> Result<ExecResult> {
        let stmt = self.db.prepare(sql)?;
        self.db.counters.statements_executed.inc();
        match stmt.as_ref() {
            Statement::Select(sel) => {
                let mut stats = SelectStats::default();
                // read-your-own-writes: the exclusive writer's view
                let snap = Snapshot::current(self.ctx.txid);
                let rows = run_select_with_stats(self.storage, sel, params, snap, &mut stats)?;
                self.db.record_select_stats(&stats);
                Ok(ExecResult::Rows(rows))
            }
            Statement::Insert(ins) => Ok(ExecResult::Affected(self.storage.run_insert(
                ins,
                params,
                &mut self.undo,
                &self.ctx,
            )?)),
            Statement::Update(upd) => Ok(ExecResult::Affected(self.storage.run_update(
                upd,
                params,
                &mut self.undo,
                &self.ctx,
            )?)),
            Statement::Delete(del) => Ok(ExecResult::Affected(self.storage.run_delete(
                del,
                params,
                &mut self.undo,
                &self.ctx,
            )?)),
            _ => Err(Error::Transaction(
                "DDL is not allowed inside a transaction".into(),
            )),
        }
    }

    pub fn query(&mut self, sql: &str, params: &Params) -> Result<ResultSet> {
        match self.execute(sql, params)? {
            ExecResult::Rows(r) => Ok(r),
            _ => Err(Error::Unsupported("query() on a non-SELECT".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE volume (oid INTEGER PRIMARY KEY AUTOINCREMENT, title TEXT NOT NULL, year INTEGER);
             CREATE TABLE issue (oid INTEGER PRIMARY KEY AUTOINCREMENT, number INTEGER NOT NULL,
                                 volume_oid INTEGER NOT NULL,
                                 CONSTRAINT fk_vol FOREIGN KEY (volume_oid) REFERENCES volume (oid) ON DELETE CASCADE);
             CREATE TABLE paper (oid INTEGER PRIMARY KEY AUTOINCREMENT, title TEXT NOT NULL,
                                 issue_oid INTEGER,
                                 CONSTRAINT fk_iss FOREIGN KEY (issue_oid) REFERENCES issue (oid) ON DELETE SET NULL);
             CREATE INDEX ix_issue_vol ON issue (volume_oid);",
        )
        .unwrap();
        db
    }

    fn seed(db: &Database) {
        db.execute(
            "INSERT INTO volume (title, year) VALUES ('TODS 27', 2002), ('TODS 26', 2001)",
            &Params::new(),
        )
        .unwrap();
        db.execute(
            "INSERT INTO issue (number, volume_oid) VALUES (1, 1), (2, 1), (1, 2)",
            &Params::new(),
        )
        .unwrap();
        db.execute(
            "INSERT INTO paper (title, issue_oid) VALUES ('WebML', 1), ('Araneus', 1), ('Strudel', 2), ('ADM', 3)",
            &Params::new(),
        )
        .unwrap();
    }

    #[test]
    fn basic_select_with_params() {
        let db = db();
        seed(&db);
        let rs = db
            .query(
                "SELECT title FROM volume WHERE year = :y",
                &Params::new().bind("y", 2002),
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.first("title"), Some(&Value::Text("TODS 27".into())));
    }

    #[test]
    fn join_with_index_probe() {
        let db = db();
        seed(&db);
        let rs = db
            .query(
                "SELECT v.title, i.number, p.title AS paper FROM volume v \
                 INNER JOIN issue i ON i.volume_oid = v.oid \
                 INNER JOIN paper p ON p.issue_oid = i.oid \
                 WHERE v.oid = ? ORDER BY i.number, paper",
                &Params::positional([Value::Integer(1)]),
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.get(0, "paper"), Some(&Value::Text("Araneus".into())));
        assert_eq!(rs.get(2, "paper"), Some(&Value::Text("Strudel".into())));
    }

    #[test]
    fn left_join_null_extends() {
        let db = db();
        seed(&db);
        // volume 2 issue 1 has one paper; add an issue with none
        db.execute(
            "INSERT INTO issue (number, volume_oid) VALUES (9, 2)",
            &Params::new(),
        )
        .unwrap();
        let rs = db
            .query(
                "SELECT i.number, p.title FROM issue i LEFT JOIN paper p ON p.issue_oid = i.oid \
                 WHERE i.volume_oid = 2 ORDER BY i.number",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.get(1, "title"), Some(&Value::Null));
    }

    #[test]
    fn aggregates_and_group_by() {
        let db = db();
        seed(&db);
        let rs = db
            .query(
                "SELECT i.oid, COUNT(*) AS n FROM issue i \
                 INNER JOIN paper p ON p.issue_oid = i.oid \
                 GROUP BY i.oid HAVING COUNT(*) >= 1 ORDER BY n DESC, i.oid",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.get(0, "n"), Some(&Value::Integer(2)));
    }

    #[test]
    fn aggregate_without_group_by() {
        let db = db();
        seed(&db);
        let rs = db
            .query(
                "SELECT COUNT(*) AS n, MAX(year) AS y FROM volume",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(2)));
        assert_eq!(rs.first("y"), Some(&Value::Integer(2002)));
    }

    #[test]
    fn fk_violation_on_insert() {
        let db = db();
        seed(&db);
        let err = db
            .execute(
                "INSERT INTO issue (number, volume_oid) VALUES (1, 999)",
                &Params::new(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::ForeignKeyViolation { .. }));
    }

    #[test]
    fn cascade_delete_and_set_null() {
        let db = db();
        seed(&db);
        // deleting volume 1 cascades to issues 1,2 and nulls papers 1..3
        let n = db
            .execute("DELETE FROM volume WHERE oid = 1", &Params::new())
            .unwrap()
            .affected();
        assert_eq!(n, 3); // volume + 2 issues
        assert_eq!(db.table_len("issue").unwrap(), 1);
        let rs = db
            .query(
                "SELECT title FROM paper WHERE issue_oid IS NULL ORDER BY title",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn update_with_expression() {
        let db = db();
        seed(&db);
        db.execute("UPDATE volume SET year = year + 1", &Params::new())
            .unwrap();
        let rs = db
            .query("SELECT MAX(year) AS y FROM volume", &Params::new())
            .unwrap();
        assert_eq!(rs.first("y"), Some(&Value::Integer(2003)));
    }

    #[test]
    fn transaction_rolls_back_on_error() {
        let db = db();
        seed(&db);
        let before = db.table_len("paper").unwrap();
        let r: Result<()> = db.transaction(|tx| {
            tx.execute("INSERT INTO paper (title) VALUES ('temp1')", &Params::new())?;
            tx.execute("INSERT INTO paper (title) VALUES ('temp2')", &Params::new())?;
            Err(Error::Eval("boom".into()))
        });
        assert!(r.is_err());
        assert_eq!(db.table_len("paper").unwrap(), before);
    }

    #[test]
    fn transaction_commits_on_ok() {
        let db = db();
        seed(&db);
        db.transaction(|tx| {
            tx.execute("INSERT INTO paper (title) VALUES ('kept')", &Params::new())?;
            Ok(())
        })
        .unwrap();
        let rs = db
            .query(
                "SELECT COUNT(*) AS n FROM paper WHERE title = 'kept'",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(1)));
    }

    #[test]
    fn transaction_rollback_undoes_cascades() {
        let db = db();
        seed(&db);
        let issues = db.table_len("issue").unwrap();
        let papers = db.table_len("paper").unwrap();
        let _ = db.transaction(|tx| -> Result<()> {
            tx.execute("DELETE FROM volume WHERE oid = 1", &Params::new())?;
            Err(Error::Eval("revert".into()))
        });
        assert_eq!(db.table_len("issue").unwrap(), issues);
        assert_eq!(db.table_len("paper").unwrap(), papers);
        assert_eq!(db.table_len("volume").unwrap(), 2);
        // the set-null side effects must also be restored
        let rs = db
            .query(
                "SELECT COUNT(*) AS n FROM paper WHERE issue_oid IS NULL",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(0)));
    }

    #[test]
    fn distinct_limit_offset() {
        let db = db();
        seed(&db);
        let rs = db
            .query(
                "SELECT DISTINCT volume_oid FROM issue ORDER BY volume_oid",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        let rs = db
            .query(
                "SELECT oid FROM paper ORDER BY oid LIMIT 2 OFFSET 1",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.first("oid"), Some(&Value::Integer(2)));
    }

    #[test]
    fn like_search_unit_query() {
        let db = db();
        seed(&db);
        let rs = db
            .query(
                "SELECT title FROM paper WHERE title LIKE :kw ORDER BY title",
                &Params::new().bind("kw", "%e%"),
            )
            .unwrap();
        // Araneus, Strudel, WebML
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn prepared_statement_cache_hits() {
        let db = db();
        seed(&db);
        let prepares_before = db.counters().prepares.get();
        let hits_before = db.counters().plan_cache_hits.get();
        let s1 = db.prepare("SELECT oid FROM volume").unwrap();
        let s2 = db.prepare("SELECT oid FROM volume").unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(db.counters().prepares.get(), prepares_before + 1);
        assert_eq!(db.counters().plan_cache_hits.get(), hits_before + 1);
    }

    #[test]
    fn pinned_plans_bypass_adhoc_cache() {
        let db = db();
        seed(&db);
        let sql = "SELECT title FROM volume WHERE year = :y";
        let plan = db.pin_plan(sql).unwrap();
        assert_eq!(db.pinned_plan_count(), 1);
        // pin_plan is idempotent and returns the same Arc
        assert!(Arc::ptr_eq(&plan, &db.pin_plan(sql).unwrap()));
        // prepare() of pinned SQL is a plan-cache hit, not a re-parse
        let prepares = db.counters().prepares.get();
        let hits = db.counters().plan_cache_hits.get();
        assert!(Arc::ptr_eq(&plan, &db.prepare(sql).unwrap()));
        assert_eq!(db.counters().prepares.get(), prepares);
        assert_eq!(db.counters().plan_cache_hits.get(), hits + 1);
        // execute_prepared skips lookup entirely and still counts a hit
        let rs = db
            .query_prepared(&plan, &Params::new().bind("y", 2002))
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(db.counters().plan_cache_hits.get(), hits + 2);
    }

    #[test]
    fn rows_scanned_counts_executor_work() {
        let db = db();
        seed(&db);
        let before = db.counters().rows_scanned.get();
        db.query("SELECT title FROM paper", &Params::new()).unwrap();
        let after = db.counters().rows_scanned.get();
        // full scan over 4 papers
        assert_eq!(after - before, 4);
        // an index probe examines fewer rows than a full cross product
        let before = db.counters().rows_scanned.get();
        db.query(
            "SELECT i.number FROM issue i WHERE i.volume_oid = 1",
            &Params::new(),
        )
        .unwrap();
        assert_eq!(db.counters().rows_scanned.get() - before, 2);
    }

    #[test]
    fn shared_counters_with_registry() {
        let registry = obs::MetricsRegistry::new();
        let db = Database::with_counters(Arc::clone(&registry.db));
        db.execute_script("CREATE TABLE t (oid INTEGER PRIMARY KEY)")
            .unwrap();
        db.query("SELECT * FROM t", &Params::new()).unwrap();
        assert!(registry.db.statements_executed.get() >= 2);
        assert!(registry.db.prepares.get() >= 1);
    }

    #[test]
    fn drop_and_recreate_table() {
        let db = db();
        db.execute("DROP TABLE paper", &Params::new()).unwrap();
        assert!(db.query("SELECT * FROM paper", &Params::new()).is_err());
        db.execute("DROP TABLE IF EXISTS paper", &Params::new())
            .unwrap();
        db.execute(
            "CREATE TABLE paper (oid INTEGER PRIMARY KEY)",
            &Params::new(),
        )
        .unwrap();
        assert_eq!(db.table_len("paper").unwrap(), 0);
    }

    #[test]
    fn select_without_from() {
        let db = Database::new();
        let rs = db
            .query("SELECT 1 + 1 AS two, 'x' AS s", &Params::new())
            .unwrap();
        assert_eq!(rs.first("two"), Some(&Value::Integer(2)));
        assert_eq!(rs.first("s"), Some(&Value::Text("x".into())));
    }

    #[test]
    fn order_by_ordinal_and_alias() {
        let db = db();
        seed(&db);
        let rs = db
            .query(
                "SELECT title AS t, year FROM volume ORDER BY 2 DESC",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.first("t"), Some(&Value::Text("TODS 27".into())));
        let rs = db
            .query("SELECT title AS t FROM volume ORDER BY t", &Params::new())
            .unwrap();
        assert_eq!(rs.first("t"), Some(&Value::Text("TODS 26".into())));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc as StdArc;
        let db = StdArc::new(db());
        seed(&db);
        let mut handles = Vec::new();
        for i in 0..4 {
            let db = StdArc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    if i == 0 {
                        db.execute(
                            "INSERT INTO paper (title) VALUES (:t)",
                            &Params::new().bind("t", format!("p{j}")),
                        )
                        .unwrap();
                    } else {
                        db.query("SELECT COUNT(*) AS n FROM paper", &Params::new())
                            .unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.table_len("paper").unwrap(), 54);
    }
}
