//! Error type shared by every layer of the engine.

use std::fmt;

/// Any failure produced while parsing, planning, or executing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical or syntactic error in the SQL text, with a byte offset.
    Syntax { message: String, offset: usize },
    /// Reference to a table that does not exist.
    UnknownTable(String),
    /// Reference to a column that does not exist or is ambiguous.
    UnknownColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// An index with this name already exists.
    DuplicateIndex(String),
    /// Primary-key or unique-index violation.
    UniqueViolation { table: String, column: String },
    /// Foreign-key violation on insert/update/delete.
    ForeignKeyViolation { table: String, constraint: String },
    /// NOT NULL constraint violation.
    NullViolation { table: String, column: String },
    /// A value could not be coerced to the column type.
    TypeMismatch { expected: String, got: String },
    /// Wrong number or kind of bound parameters.
    Parameter(String),
    /// Statement is valid SQL but not supported by this engine.
    Unsupported(String),
    /// Attempt to use a transaction handle in an invalid state.
    Transaction(String),
    /// First-writer-wins conflict under snapshot isolation: the row this
    /// transaction tried to write was created, updated, or deleted by a
    /// transaction that is still uncommitted or that committed after this
    /// transaction's snapshot. The loser must roll back and retry.
    WriteConflict { table: String },
    /// The commit sink (write-ahead log) failed to make a committed
    /// transaction durable — the mutation is visible in memory but its
    /// redo record never reached stable storage.
    Durability(String),
    /// Generic evaluation failure (division by zero, bad LIKE pattern, ...).
    Eval(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax { message, offset } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            Error::DuplicateIndex(i) => write!(f, "index already exists: {i}"),
            Error::UniqueViolation { table, column } => {
                write!(f, "unique violation on {table}.{column}")
            }
            Error::ForeignKeyViolation { table, constraint } => {
                write!(f, "foreign key violation on {table} ({constraint})")
            }
            Error::NullViolation { table, column } => {
                write!(f, "null violation on {table}.{column}")
            }
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::Parameter(m) => write!(f, "parameter error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Transaction(m) => write!(f, "transaction error: {m}"),
            Error::WriteConflict { table } => {
                write!(
                    f,
                    "write conflict on {table}: row written by a concurrent transaction"
                )
            }
            Error::Durability(m) => write!(f, "durability error: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
