//! SELECT execution: scans, index probes, hash joins, grouping, ordering
//! with Top-K pushdown.

use crate::error::{Error, Result};
use crate::expr::{contains_aggregate, eval, is_aggregate, Binding, EvalCtx, Params};
use crate::result::ResultSet;
use crate::sql::ast::*;
use crate::storage::Storage;
use crate::table::{Row, RowId, Snapshot, Table};
use crate::value::{DataType, Value};
use std::collections::{HashMap, HashSet};

/// One position in the join product: a row id per table binding (None for
/// the null-extended side of a LEFT JOIN).
type Combo = Vec<Option<RowId>>;

struct Source<'a> {
    binding: String,
    table: &'a Table,
    /// Visibility horizon every read through this source honours: scans,
    /// index probes, and hash builds all filter version chains by it.
    snap: Snapshot,
}

/// Executor work statistics for one SELECT: how the planner answered each
/// table access, and how many candidate rows it examined doing so. These
/// are the figures behind the `db_*` planner counters in the observability
/// registry — they measure work done, not rows returned.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SelectStats {
    /// Candidate rows examined: base-scan/probe results, hash-build
    /// passes, and join candidates fed to the ON filter.
    pub scanned: u64,
    /// Accesses answered through a PK or secondary index probe (one per
    /// probed prefix combo on joins, one per query on the base table).
    pub index_probes: u64,
    /// Joins executed with a build/probe hash table instead of the
    /// nested-loop scan fallback.
    pub hash_joins: u64,
    /// ORDER BY + LIMIT orderings answered by the bounded Top-K heap
    /// instead of a full sort.
    pub topk_shortcuts: u64,
    /// Table accesses that fell back to a full scan (no usable index, no
    /// hashable equi-conjunct).
    pub scan_fallbacks: u64,
}

impl SelectStats {
    /// Fold another query's stats into this accumulator.
    pub fn absorb(&mut self, other: &SelectStats) {
        self.scanned += other.scanned;
        self.index_probes += other.index_probes;
        self.hash_joins += other.hash_joins;
        self.topk_shortcuts += other.topk_shortcuts;
        self.scan_fallbacks += other.scan_fallbacks;
    }
}

/// Execute a SELECT against the latest committed state.
pub fn run_select(storage: &Storage, sel: &Select, params: &Params) -> Result<ResultSet> {
    let mut stats = SelectStats::default();
    run_select_with_stats(storage, sel, params, Snapshot::latest(), &mut stats)
}

/// Like [`run_select`], but additionally reports how many candidate rows the
/// executor examined (base-scan/probe results plus join candidates) into
/// `scanned`. Compatibility wrapper over [`run_select_with_stats`].
pub fn run_select_counted(
    storage: &Storage,
    sel: &Select,
    params: &Params,
    scanned: &mut u64,
) -> Result<ResultSet> {
    let mut stats = SelectStats::default();
    let out = run_select_with_stats(storage, sel, params, Snapshot::latest(), &mut stats)?;
    *scanned += stats.scanned;
    Ok(out)
}

/// Like [`run_select`], but reads at an explicit MVCC snapshot and reports
/// full executor statistics (rows scanned, access-path choices, Top-K
/// shortcuts) into `stats`.
pub fn run_select_with_stats(
    storage: &Storage,
    sel: &Select,
    params: &Params,
    snap: Snapshot,
    stats: &mut SelectStats,
) -> Result<ResultSet> {
    // SELECT without FROM: a single constant row.
    let Some(from) = &sel.from else {
        let bindings: [Binding<'_>; 0] = [];
        let ctx = EvalCtx {
            bindings: &bindings,
            params,
        };
        let mut names = Vec::new();
        let mut row = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Expr { expr, alias } => {
                    names.push(alias.clone().unwrap_or_else(|| format!("col{}", i + 1)));
                    row.push(eval(expr, &ctx)?);
                }
                _ => return Err(Error::Unsupported("wildcard without FROM".into())),
            }
        }
        return Ok(ResultSet::new(names, vec![row]));
    };

    // Resolve sources.
    let mut sources: Vec<Source<'_>> = Vec::with_capacity(1 + from.joins.len());
    sources.push(Source {
        binding: from.base.binding().to_string(),
        table: storage.require_table(&from.base.table)?,
        snap,
    });
    for j in &from.joins {
        sources.push(Source {
            binding: j.table.binding().to_string(),
            table: storage.require_table(&j.table.table)?,
            snap,
        });
    }

    // Split WHERE into conjuncts for pushdown.
    let where_conjuncts = sel
        .where_clause
        .as_ref()
        .map(|w| conjuncts(w))
        .unwrap_or_default();

    // Base scan: try an index probe from WHERE conjuncts that bind base
    // columns to row-independent expressions.
    let base_ids = probe_or_scan(&sources[0], &where_conjuncts, params, stats)?;
    stats.scanned += base_ids.len() as u64;

    // Build the join product left to right. Per join, pick one access
    // path for the whole prefix set: index nested-loop when a covering
    // index exists, a build/probe hash table for plain equi-conjuncts,
    // and a single hoisted scan id-list otherwise (shared across combos
    // instead of re-collected per prefix).
    let mut combos: Vec<Combo> = base_ids.into_iter().map(|id| vec![Some(id)]).collect();
    for (jpos, join) in from.joins.iter().enumerate() {
        if combos.is_empty() {
            // inner and left joins both preserve emptiness
            break;
        }
        let cur = &sources[jpos + 1];
        let prev_sources = &sources[..jpos + 1];
        let on_conjuncts = conjuncts(&join.on);
        let prev_names: Vec<&str> = prev_sources.iter().map(|s| s.binding.as_str()).collect();
        let probes = extract_probes(cur, &on_conjuncts, &prev_names);
        let probe_cols: Vec<usize> = probes.iter().map(|(c, _)| *c).collect();

        enum JoinPlan {
            /// One candidate list per prefix combo (index probe / hash join).
            PerCombo(Vec<Vec<RowId>>),
            /// One shared candidate list (full-scan fallback).
            Scan(Vec<RowId>),
        }

        let plan = if !probes.is_empty() && has_covering_index(cur.table, &probe_cols) {
            let mut lists = Vec::with_capacity(combos.len());
            for combo in &combos {
                let bindings = make_bindings(prev_sources, combo);
                let ctx = EvalCtx {
                    bindings: &bindings,
                    params,
                };
                stats.index_probes += 1;
                lists
                    .push(try_index_probe(cur.table, &probes, &ctx, cur.snap)?.unwrap_or_default());
            }
            JoinPlan::PerCombo(lists)
        } else if !probes.is_empty() {
            stats.hash_joins += 1;
            JoinPlan::PerCombo(hash_join_candidates(
                cur,
                &probes,
                prev_sources,
                &combos,
                params,
                &mut stats.scanned,
            )?)
        } else {
            stats.scan_fallbacks += 1;
            JoinPlan::Scan(cur.table.iter_visible(cur.snap).map(|(id, _)| id).collect())
        };

        let mut next: Vec<Combo> = Vec::new();
        let sources_through = &sources[..jpos + 2];
        let mut extend = |combo: &Combo, cands: &[RowId]| -> Result<()> {
            stats.scanned += cands.len() as u64;
            let mut matched = false;
            for &cand in cands {
                let mut extended = combo.clone();
                extended.push(Some(cand));
                let ok = {
                    let bindings = make_bindings(sources_through, &extended);
                    let ctx = EvalCtx {
                        bindings: &bindings,
                        params,
                    };
                    eval(&join.on, &ctx)?.is_truthy()
                };
                if ok {
                    matched = true;
                    next.push(extended);
                }
            }
            if !matched && join.kind == JoinKind::Left {
                let mut extended = combo.clone();
                extended.push(None);
                next.push(extended);
            }
            Ok(())
        };
        match plan {
            JoinPlan::PerCombo(lists) => {
                for (combo, cands) in combos.iter().zip(&lists) {
                    extend(combo, cands)?;
                }
            }
            JoinPlan::Scan(ids) => {
                for combo in &combos {
                    extend(combo, &ids)?;
                }
            }
        }
        combos = next;
    }

    // Residual WHERE filter.
    if let Some(w) = &sel.where_clause {
        let mut filtered = Vec::with_capacity(combos.len());
        for combo in combos {
            let keep = {
                let bindings = make_bindings(&sources, &combo);
                let ctx = EvalCtx {
                    bindings: &bindings,
                    params,
                };
                eval(w, &ctx)?.is_truthy()
            };
            if keep {
                filtered.push(combo);
            }
        }
        combos = filtered;
    }

    let grouped = !sel.group_by.is_empty()
        || sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if contains_aggregate(expr)));

    let (names, mut out_rows, sort_keys) = if grouped {
        project_grouped(sel, &sources, combos, params)?
    } else {
        project_plain(sel, &sources, combos, params)?
    };

    // LIMIT / OFFSET are row-independent, so evaluate them up front: when
    // ORDER BY is present they bound the Top-K heap below.
    let empty: [Binding<'_>; 0] = [];
    let const_ctx = EvalCtx {
        bindings: &empty,
        params,
    };
    let offset = match &sel.offset {
        Some(e) => eval_usize(e, &const_ctx, "OFFSET")?,
        None => 0,
    };
    let limit = match &sel.limit {
        Some(e) => Some(eval_usize(e, &const_ctx, "LIMIT")?),
        None => None,
    };

    // Comparator shared by the full sort and the Top-K heap: the ORDER BY
    // spec first, then the original row position — which makes the heap
    // selection exactly equivalent to a stable sort followed by a slice.
    let cmp_rows = |a: usize, b: usize| -> std::cmp::Ordering {
        for (k, item) in sel.order_by.iter().enumerate() {
            let ord = sort_keys[a][k].total_cmp(&sort_keys[b][k]);
            let ord = if item.ascending { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.cmp(&b)
    };

    // Top-K pushdown: with ORDER BY + a constant LIMIT (and no DISTINCT,
    // which dedupes *after* ordering here), only the first
    // `offset + limit` rows in sort order can survive — select them with
    // a bounded heap, O(n log k), instead of sorting everything.
    if !sel.order_by.is_empty() && !sel.distinct {
        if let Some(l) = limit {
            let k = l.saturating_add(offset);
            if k < out_rows.len() {
                stats.topk_shortcuts += 1;
                let top = top_k_indices(out_rows.len(), k, &cmp_rows);
                let mut selected: Vec<Vec<Value>> = top
                    .into_iter()
                    .map(|i| std::mem::take(&mut out_rows[i]))
                    .collect();
                selected.drain(..offset.min(selected.len()));
                return Ok(ResultSet::new(names, selected));
            }
        }
    }

    // ORDER BY using the precomputed keys (full, stable sort).
    if !sel.order_by.is_empty() {
        let mut idx: Vec<usize> = (0..out_rows.len()).collect();
        idx.sort_by(|&a, &b| cmp_rows(a, b));
        let mut reordered = Vec::with_capacity(out_rows.len());
        for i in idx {
            reordered.push(std::mem::take(&mut out_rows[i]));
        }
        out_rows = reordered;
    }

    // DISTINCT.
    if sel.distinct {
        let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(out_rows.len());
        out_rows.retain(|r| seen.insert(r.clone()));
    }

    // LIMIT / OFFSET.
    if offset > 0 {
        out_rows.drain(..offset.min(out_rows.len()));
    }
    if let Some(l) = limit {
        out_rows.truncate(l);
    }

    Ok(ResultSet::new(names, out_rows))
}

/// Indices of the `k` smallest rows under `cmp`, in sorted order, selected
/// with a bounded binary max-heap (`O(n log k)` instead of `O(n log n)`).
/// `cmp` must be a total order (the caller ties on the original index), so
/// the result equals `sort-then-truncate` exactly.
fn top_k_indices(
    n: usize,
    k: usize,
    cmp: &dyn Fn(usize, usize) -> std::cmp::Ordering,
) -> Vec<usize> {
    use std::cmp::Ordering;
    if k == 0 {
        return Vec::new();
    }
    // max-heap: the root is the worst row currently kept
    let mut heap: Vec<usize> = Vec::with_capacity(k);
    for i in 0..n {
        if heap.len() < k {
            heap.push(i);
            let mut c = heap.len() - 1;
            while c > 0 {
                let p = (c - 1) / 2;
                if cmp(heap[c], heap[p]) == Ordering::Greater {
                    heap.swap(c, p);
                    c = p;
                } else {
                    break;
                }
            }
        } else if cmp(i, heap[0]) == Ordering::Less {
            heap[0] = i;
            let mut p = 0;
            loop {
                let (l, r) = (2 * p + 1, 2 * p + 2);
                let mut m = p;
                if l < heap.len() && cmp(heap[l], heap[m]) == Ordering::Greater {
                    m = l;
                }
                if r < heap.len() && cmp(heap[r], heap[m]) == Ordering::Greater {
                    m = r;
                }
                if m == p {
                    break;
                }
                heap.swap(p, m);
                p = m;
            }
        }
    }
    heap.sort_by(|&a, &b| cmp(a, b));
    heap
}

fn eval_usize(e: &Expr, ctx: &EvalCtx<'_>, what: &str) -> Result<usize> {
    match eval(e, ctx)? {
        Value::Integer(i) if i >= 0 => Ok(i as usize),
        other => Err(Error::Eval(format!(
            "{what} must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn make_bindings<'a>(sources: &'a [Source<'a>], combo: &'a Combo) -> Vec<Binding<'a>> {
    sources
        .iter()
        .zip(combo.iter())
        .map(|(s, id)| Binding {
            name: &s.binding,
            schema: &s.table.schema,
            row: id.and_then(|id| s.table.visible_row(id, s.snap)),
        })
        .collect()
}

/// Split an expression into AND-ed conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut v = conjuncts(left);
            v.extend(conjuncts(right));
            v
        }
        other => vec![other],
    }
}

/// Does `e` reference any column of the given binding set?
fn references_binding(e: &Expr, names: &[&str]) -> bool {
    let mut hit = false;
    e.walk(&mut |n| {
        if let Expr::Column { table, name: _ } = n {
            match table {
                Some(t) => {
                    if names.iter().any(|b| b.eq_ignore_ascii_case(t)) {
                        hit = true;
                    }
                }
                // unqualified columns could belong to anything: be
                // conservative and treat them as referencing the binding
                None => hit = true,
            }
        }
    });
    hit
}

/// From conjuncts, extract equality probes `cur.col = <expr independent of
/// cur>` usable for an index lookup on `cur`.
fn extract_probes<'e>(
    cur: &Source<'_>,
    conjs: &[&'e Expr],
    other_names: &[&str],
) -> Vec<(usize, &'e Expr)> {
    let mut probes = Vec::new();
    for c in conjs {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        for (col_side, val_side) in [(left, right), (right, left)] {
            let Expr::Column { table, name } = col_side.as_ref() else {
                continue;
            };
            // the column must belong to `cur`
            let belongs = match table {
                Some(t) => t.eq_ignore_ascii_case(&cur.binding),
                None => cur.table.schema.column_index(name).is_some() && !other_names.is_empty(),
            };
            if !belongs {
                continue;
            }
            let Some(col_idx) = cur.table.schema.column_index(name) else {
                continue;
            };
            // the value side must not reference `cur`
            if references_binding(val_side, &[&cur.binding]) {
                continue;
            }
            // if the value side has unqualified columns they must be
            // resolvable from the other bindings — `references_binding`
            // above is conservative, so double-check for pure literals and
            // params when there are no other bindings
            if other_names.is_empty() && references_binding(val_side, &[]) {
                continue;
            }
            probes.push((col_idx, val_side.as_ref()));
            break;
        }
    }
    probes
}

/// Would [`try_index_probe`] find a usable index for equality probes on
/// exactly these columns? (PK fully bound, or a secondary index whose
/// every column is bound.)
fn has_covering_index(table: &Table, probe_cols: &[usize]) -> bool {
    let pk = &table.schema.primary_key;
    if !pk.is_empty() && pk.iter().all(|c| probe_cols.contains(c)) {
        return true;
    }
    table
        .indexes()
        .iter()
        .any(|ix| ix.columns.iter().all(|c| probe_cols.contains(c)))
}

/// Hash equi-join between the prefix combos and `cur`: one pass over the
/// table, one key evaluation per combo, candidates grouped per combo. The
/// build side is the smaller of the two inputs; either direction produces
/// candidate lists in table-scan order, so results are identical to the
/// nested-loop fallback. Keys are coerced to the joined column types
/// (mirroring [`try_index_probe`]); NULL or uncoercible keys never match,
/// like `=` under SQL three-valued logic. Over-inclusive matches are
/// filtered by the caller's full ON evaluation.
fn hash_join_candidates(
    cur: &Source<'_>,
    probes: &[(usize, &Expr)],
    prev_sources: &[Source<'_>],
    combos: &[Combo],
    params: &Params,
    scanned: &mut u64,
) -> Result<Vec<Vec<RowId>>> {
    let col_types: Vec<DataType> = probes
        .iter()
        .map(|(c, _)| cur.table.schema.columns[*c].data_type)
        .collect();
    // Probe key for one prefix combo; None ⇒ can never match.
    let combo_key = |combo: &Combo| -> Result<Option<Vec<Value>>> {
        let bindings = make_bindings(prev_sources, combo);
        let ctx = EvalCtx {
            bindings: &bindings,
            params,
        };
        let mut key = Vec::with_capacity(probes.len());
        for ((_, e), ty) in probes.iter().zip(&col_types) {
            let v = eval(e, &ctx)?;
            if v.is_null() {
                return Ok(None);
            }
            match v.coerce(*ty) {
                Ok(cv) => key.push(cv),
                // a key that cannot coerce to the column type can never
                // equal a stored value of that type
                Err(_) => return Ok(None),
            }
        }
        Ok(Some(key))
    };
    // Build key for one stored row; None ⇒ holds a NULL join column.
    let row_key = |row: &Row| -> Option<Vec<Value>> {
        let mut key = Vec::with_capacity(probes.len());
        for (c, _) in probes {
            let v = &row[*c];
            if v.is_null() {
                return None;
            }
            key.push(v.clone());
        }
        Some(key)
    };
    // Either direction makes exactly one pass over the table.
    *scanned += cur.table.len() as u64;
    let mut out: Vec<Vec<RowId>> = vec![Vec::new(); combos.len()];
    if combos.len() < cur.table.len() {
        // build over the smaller prefix side, stream the table past it
        let mut by_key: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(combos.len());
        for (i, combo) in combos.iter().enumerate() {
            if let Some(key) = combo_key(combo)? {
                by_key.entry(key).or_default().push(i);
            }
        }
        for (id, row) in cur.table.iter_visible(cur.snap) {
            if let Some(key) = row_key(row) {
                if let Some(targets) = by_key.get(&key) {
                    for &i in targets {
                        out[i].push(id);
                    }
                }
            }
        }
    } else {
        // build over the table, probe once per prefix combo
        let mut by_key: HashMap<Vec<Value>, Vec<RowId>> =
            HashMap::with_capacity(cur.table.len().min(1024));
        for (id, row) in cur.table.iter_visible(cur.snap) {
            if let Some(key) = row_key(row) {
                by_key.entry(key).or_default().push(id);
            }
        }
        for (i, combo) in combos.iter().enumerate() {
            if let Some(key) = combo_key(combo)? {
                if let Some(ids) = by_key.get(&key) {
                    out[i] = ids.clone();
                }
            }
        }
    }
    Ok(out)
}

/// Base-table scan with optional WHERE-driven probe (no previous bindings).
fn probe_or_scan(
    base: &Source<'_>,
    where_conjuncts: &[&Expr],
    params: &Params,
    stats: &mut SelectStats,
) -> Result<Vec<RowId>> {
    // for the base table, unqualified columns in WHERE do belong to it when
    // it is the only source; extract_probes handles qualification, so try
    // both qualified and unqualified forms here
    let mut probes = Vec::new();
    for c in where_conjuncts {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        for (col_side, val_side) in [(left, right), (right, left)] {
            let Expr::Column { table, name } = col_side.as_ref() else {
                continue;
            };
            let belongs = match table {
                Some(t) => t.eq_ignore_ascii_case(&base.binding),
                None => base.table.schema.column_index(name).is_some(),
            };
            if !belongs {
                continue;
            }
            let Some(col_idx) = base.table.schema.column_index(name) else {
                continue;
            };
            // value side must be row-independent: literals/params/functions
            if references_any_column(val_side) {
                continue;
            }
            probes.push((col_idx, val_side.as_ref()));
            break;
        }
    }
    if !probes.is_empty() {
        let bindings: [Binding<'_>; 0] = [];
        let ctx = EvalCtx {
            bindings: &bindings,
            params,
        };
        if let Some(ids) = try_index_probe(base.table, &probes, &ctx, base.snap)? {
            stats.index_probes += 1;
            return Ok(ids);
        }
    }
    stats.scan_fallbacks += 1;
    Ok(base
        .table
        .iter_visible(base.snap)
        .map(|(id, _)| id)
        .collect())
}

fn references_any_column(e: &Expr) -> bool {
    let mut hit = false;
    e.walk(&mut |n| {
        if matches!(n, Expr::Column { .. }) {
            hit = true;
        }
    });
    hit
}

/// Attempt a PK or secondary-index probe with the extracted equalities.
/// Returns `None` when no usable index exists. Index buckets cover every
/// version holding the key, so each candidate is re-checked against the
/// snapshot's visible version before it is returned.
fn try_index_probe(
    table: &Table,
    probes: &[(usize, &Expr)],
    ctx: &EvalCtx<'_>,
    snap: Snapshot,
) -> Result<Option<Vec<RowId>>> {
    // primary key: all PK columns must be bound
    let pk = &table.schema.primary_key;
    if !pk.is_empty() && pk.iter().all(|c| probes.iter().any(|(p, _)| p == c)) {
        let mut key = Vec::with_capacity(pk.len());
        for c in pk {
            let (_, e) = probes.iter().find(|(p, _)| p == c).unwrap();
            let col_type = table.schema.columns[*c].data_type;
            key.push(eval(e, ctx)?.coerce(col_type)?);
        }
        return Ok(Some(
            table
                .get_by_pk_visible(&key, snap)
                .map(|(id, _)| id)
                .into_iter()
                .collect(),
        ));
    }
    // secondary index: find one whose full prefix is covered
    for ix in table.indexes() {
        let covered: Vec<&(usize, &Expr)> = ix
            .columns
            .iter()
            .map_while(|c| probes.iter().find(|(p, _)| p == c))
            .collect();
        if covered.len() == ix.columns.len() {
            let mut key = Vec::with_capacity(covered.len());
            for (c, e) in &covered {
                let col_type = table.schema.columns[*c].data_type;
                key.push(eval(e, ctx)?.coerce(col_type)?);
            }
            return Ok(Some(table.probe_visible(ix, &key, snap)));
        }
    }
    Ok(None)
}

// ---- projection ---------------------------------------------------------

/// Expand wildcards into concrete output column names + expressions.
fn expand_items(sel: &Select, sources: &[Source<'_>]) -> Result<Vec<(String, Expr)>> {
    let mut out = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for s in sources {
                    for c in &s.table.schema.columns {
                        out.push((
                            c.name.clone(),
                            Expr::Column {
                                table: Some(s.binding.clone()),
                                name: c.name.clone(),
                            },
                        ));
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let s = sources
                    .iter()
                    .find(|s| s.binding.eq_ignore_ascii_case(t))
                    .ok_or_else(|| Error::UnknownTable(t.clone()))?;
                for c in &s.table.schema.columns {
                    out.push((
                        c.name.clone(),
                        Expr::Column {
                            table: Some(s.binding.clone()),
                            name: c.name.clone(),
                        },
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| default_name(expr));
                out.push((name, expr.clone()));
            }
        }
    }
    Ok(out)
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.to_lowercase(),
        _ => "expr".to_string(),
    }
}

/// Resolve an ORDER BY expression to a key value, honouring select-list
/// aliases and 1-based ordinals.
fn order_key(item: &Expr, names: &[String], out_row: &[Value], ctx: &EvalCtx<'_>) -> Result<Value> {
    match item {
        Expr::Literal(Value::Integer(i)) => {
            let idx = *i as usize;
            if idx >= 1 && idx <= out_row.len() {
                Ok(out_row[idx - 1].clone())
            } else {
                Err(Error::Eval(format!("ORDER BY ordinal {i} out of range")))
            }
        }
        Expr::Column { table: None, name } => {
            if let Some(pos) = names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
                Ok(out_row[pos].clone())
            } else {
                eval(item, ctx)
            }
        }
        _ => eval(item, ctx),
    }
}

#[allow(clippy::type_complexity)]
fn project_plain(
    sel: &Select,
    sources: &[Source<'_>],
    combos: Vec<Combo>,
    params: &Params,
) -> Result<(Vec<String>, Vec<Vec<Value>>, Vec<Vec<Value>>)> {
    let items = expand_items(sel, sources)?;
    let names: Vec<String> = items.iter().map(|(n, _)| n.clone()).collect();
    let mut rows = Vec::with_capacity(combos.len());
    let mut keys = Vec::with_capacity(combos.len());
    for combo in &combos {
        let bindings = make_bindings(sources, combo);
        let ctx = EvalCtx {
            bindings: &bindings,
            params,
        };
        let mut row = Vec::with_capacity(items.len());
        for (_, e) in &items {
            row.push(eval(e, &ctx)?);
        }
        let mut key = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            key.push(order_key(&o.expr, &names, &row, &ctx)?);
        }
        rows.push(row);
        keys.push(key);
    }
    Ok((names, rows, keys))
}

/// Replace every aggregate call in `e` with its value over `group`.
fn rewrite_aggregates(
    e: &Expr,
    sources: &[Source<'_>],
    group: &[Combo],
    params: &Params,
) -> Result<Expr> {
    Ok(match e {
        Expr::Function { name, args, star } if is_aggregate(name) => Expr::Literal(
            compute_aggregate(name, args, *star, sources, group, params)?,
        ),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_aggregates(expr, sources, group, params)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_aggregates(left, sources, group, params)?),
            op: *op,
            right: Box::new(rewrite_aggregates(right, sources, group, params)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_aggregates(expr, sources, group, params)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_aggregates(expr, sources, group, params)?),
            pattern: Box::new(rewrite_aggregates(pattern, sources, group, params)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_aggregates(expr, sources, group, params)?),
            list: list
                .iter()
                .map(|i| rewrite_aggregates(i, sources, group, params))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_aggregates(expr, sources, group, params)?),
            lo: Box::new(rewrite_aggregates(lo, sources, group, params)?),
            hi: Box::new(rewrite_aggregates(hi, sources, group, params)?),
            negated: *negated,
        },
        Expr::Function { name, args, star } => Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_aggregates(a, sources, group, params))
                .collect::<Result<Vec<_>>>()?,
            star: *star,
        },
        other => other.clone(),
    })
}

fn compute_aggregate(
    name: &str,
    args: &[Expr],
    star: bool,
    sources: &[Source<'_>],
    group: &[Combo],
    params: &Params,
) -> Result<Value> {
    if name == "COUNT" && star {
        return Ok(Value::Integer(group.len() as i64));
    }
    let arg = args
        .first()
        .ok_or_else(|| Error::Eval(format!("{name} requires an argument")))?;
    let mut vals: Vec<Value> = Vec::with_capacity(group.len());
    for combo in group {
        let bindings = make_bindings(sources, combo);
        let ctx = EvalCtx {
            bindings: &bindings,
            params,
        };
        let v = eval(arg, &ctx)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    match name {
        "COUNT" => Ok(Value::Integer(vals.len() as i64)),
        "MIN" => Ok(vals.into_iter().min().unwrap_or(Value::Null)),
        "MAX" => Ok(vals.into_iter().max().unwrap_or(Value::Null)),
        "SUM" | "AVG" => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let all_int = vals.iter().all(|v| matches!(v, Value::Integer(_)));
            let n = vals.len() as f64;
            let sum: f64 = vals
                .iter()
                .map(|v| match v {
                    Value::Integer(i) => Ok(*i as f64),
                    Value::Real(r) => Ok(*r),
                    other => Err(Error::Eval(format!("{name} of non-number {other:?}"))),
                })
                .collect::<Result<Vec<f64>>>()?
                .iter()
                .sum();
            if name == "SUM" {
                if all_int {
                    Ok(Value::Integer(sum as i64))
                } else {
                    Ok(Value::Real(sum))
                }
            } else {
                Ok(Value::Real(sum / n))
            }
        }
        other => Err(Error::Unsupported(format!("aggregate {other}"))),
    }
}

#[allow(clippy::type_complexity)]
fn project_grouped(
    sel: &Select,
    sources: &[Source<'_>],
    combos: Vec<Combo>,
    params: &Params,
) -> Result<(Vec<String>, Vec<Vec<Value>>, Vec<Vec<Value>>)> {
    let items = expand_items(sel, sources)?;
    let names: Vec<String> = items.iter().map(|(n, _)| n.clone()).collect();

    // Partition combos into groups by the GROUP BY key (implicit single
    // group when GROUP BY is absent but aggregates are present).
    let mut groups: Vec<(Vec<Value>, Vec<Combo>)> = Vec::new();
    if sel.group_by.is_empty() {
        groups.push((Vec::new(), combos));
    } else {
        let mut index: std::collections::HashMap<Vec<Value>, usize> =
            std::collections::HashMap::new();
        for combo in combos {
            let key = {
                let bindings = make_bindings(sources, &combo);
                let ctx = EvalCtx {
                    bindings: &bindings,
                    params,
                };
                sel.group_by
                    .iter()
                    .map(|e| eval(e, &ctx))
                    .collect::<Result<Vec<_>>>()?
            };
            match index.get(&key) {
                Some(&i) => groups[i].1.push(combo),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![combo]));
                }
            }
        }
    }

    let mut rows = Vec::with_capacity(groups.len());
    let mut keys = Vec::with_capacity(groups.len());
    for (_, group) in &groups {
        if group.is_empty() {
            // implicit group over empty input: aggregates still produce a row
            if !sel.group_by.is_empty() {
                continue;
            }
        }
        // HAVING
        if let Some(h) = &sel.having {
            let rewritten = rewrite_aggregates(h, sources, group, params)?;
            let keep = {
                let first = group.first();
                let bindings = first.map(|c| make_bindings(sources, c)).unwrap_or_default();
                let ctx = EvalCtx {
                    bindings: &bindings,
                    params,
                };
                eval(&rewritten, &ctx)?.is_truthy()
            };
            if !keep {
                continue;
            }
        }
        let first = group.first();
        let bindings = first.map(|c| make_bindings(sources, c)).unwrap_or_default();
        let ctx = EvalCtx {
            bindings: &bindings,
            params,
        };
        let mut row = Vec::with_capacity(items.len());
        for (_, e) in &items {
            let rewritten = rewrite_aggregates(e, sources, group, params)?;
            row.push(eval(&rewritten, &ctx)?);
        }
        let mut key = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            let rewritten = rewrite_aggregates(&o.expr, sources, group, params)?;
            key.push(order_key(&rewritten, &names, &row, &ctx)?);
        }
        rows.push(row);
        keys.push(key);
    }
    Ok((names, rows, keys))
}
