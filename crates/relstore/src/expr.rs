//! Expression evaluation over row contexts.

use crate::error::{Error, Result};
use crate::schema::TableSchema;
use crate::sql::ast::{BinaryOp, Expr, UnaryOp};
use crate::table::Row;
use crate::value::Value;
use std::collections::HashMap;

/// Bound statement parameters: positional (`?`) and named (`:name`).
#[derive(Debug, Clone, Default)]
pub struct Params {
    positional: Vec<Value>,
    named: HashMap<String, Value>,
}

impl Params {
    pub fn new() -> Params {
        Params::default()
    }

    /// Build from positional values only.
    pub fn positional(values: impl IntoIterator<Item = Value>) -> Params {
        Params {
            positional: values.into_iter().collect(),
            named: HashMap::new(),
        }
    }

    /// Add the next positional parameter.
    pub fn push(mut self, v: impl Into<Value>) -> Params {
        self.positional.push(v.into());
        self
    }

    /// Bind a named parameter.
    pub fn bind(mut self, name: impl Into<String>, v: impl Into<Value>) -> Params {
        self.named.insert(name.into(), v.into());
        self
    }

    /// Insert a named binding in place (non-builder form).
    pub fn set(&mut self, name: impl Into<String>, v: impl Into<Value>) {
        self.named.insert(name.into(), v.into());
    }

    pub fn get_positional(&self, i: usize) -> Result<&Value> {
        self.positional
            .get(i)
            .ok_or_else(|| Error::Parameter(format!("missing positional parameter #{}", i + 1)))
    }

    pub fn get_named(&self, name: &str) -> Result<&Value> {
        self.named
            .get(name)
            .ok_or_else(|| Error::Parameter(format!("missing named parameter :{name}")))
    }

    /// Names of all bound named parameters (used by descriptor validation).
    pub fn named_keys(&self) -> impl Iterator<Item = &str> {
        self.named.keys().map(|s| s.as_str())
    }
}

/// One table binding visible to an expression: the name it is known by in
/// the query, its schema, and the current row (None for the null-extended
/// side of a LEFT JOIN).
pub struct Binding<'a> {
    pub name: &'a str,
    pub schema: &'a TableSchema,
    pub row: Option<&'a Row>,
}

/// Evaluation context: the visible bindings plus bound parameters.
pub struct EvalCtx<'a> {
    pub bindings: &'a [Binding<'a>],
    pub params: &'a Params,
}

impl<'a> EvalCtx<'a> {
    /// Resolve a (possibly qualified) column reference to its value.
    pub fn column(&self, table: Option<&str>, name: &str) -> Result<Value> {
        match table {
            Some(t) => {
                for b in self.bindings {
                    if b.name.eq_ignore_ascii_case(t) {
                        let i = b.schema.require_column(name)?;
                        return Ok(b.row.map(|r| r[i].clone()).unwrap_or(Value::Null));
                    }
                }
                Err(Error::UnknownTable(t.to_string()))
            }
            None => {
                let mut found: Option<Value> = None;
                for b in self.bindings {
                    if let Some(i) = b.schema.column_index(name) {
                        if found.is_some() {
                            return Err(Error::UnknownColumn(format!("{name} is ambiguous")));
                        }
                        found = Some(b.row.map(|r| r[i].clone()).unwrap_or(Value::Null));
                    }
                }
                found.ok_or_else(|| Error::UnknownColumn(name.to_string()))
            }
        }
    }
}

/// Evaluate a scalar (non-aggregate) expression.
pub fn eval(expr: &Expr, ctx: &EvalCtx<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => ctx.column(table.as_deref(), name),
        Expr::Param(i) => ctx.params.get_positional(*i).cloned(),
        Expr::NamedParam(n) => ctx.params.get_named(n).cloned(),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Integer(i) => Ok(Value::Integer(-i)),
                    Value::Real(r) => Ok(Value::Real(-r)),
                    other => Err(Error::Eval(format!("cannot negate {other:?}"))),
                },
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    v => Ok(Value::Boolean(!v.is_truthy())),
                },
            }
        }
        Expr::Binary { left, op, right } => {
            // AND / OR get three-valued logic with short-circuiting
            match op {
                BinaryOp::And => {
                    let l = eval(left, ctx)?;
                    if !l.is_null() && !l.is_truthy() {
                        return Ok(Value::Boolean(false));
                    }
                    let r = eval(right, ctx)?;
                    if !r.is_null() && !r.is_truthy() {
                        return Ok(Value::Boolean(false));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Boolean(true))
                }
                BinaryOp::Or => {
                    let l = eval(left, ctx)?;
                    if !l.is_null() && l.is_truthy() {
                        return Ok(Value::Boolean(true));
                    }
                    let r = eval(right, ctx)?;
                    if !r.is_null() && r.is_truthy() {
                        return Ok(Value::Boolean(true));
                    }
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Boolean(false))
                }
                _ => {
                    let l = eval(left, ctx)?;
                    let r = eval(right, ctx)?;
                    eval_binary(*op, l, r)
                }
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Boolean(v.is_null() != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let p = eval(pattern, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (v, p) => {
                    let m = like_match(&v.render(), &p.render());
                    Ok(Value::Boolean(m != *negated))
                }
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, ctx)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Value::Boolean(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let lo = eval(lo, ctx)?;
            let hi = eval(hi, ctx)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let inside = v.total_cmp(&lo) != std::cmp::Ordering::Less
                && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(Value::Boolean(inside != *negated))
        }
        Expr::Function { name, args, star } => eval_scalar_function(name, args, *star, ctx),
    }
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.total_cmp(&r);
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(b))
        }
        Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!("{}{}", l.render(), r.render())))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (&l, &r) {
                (Value::Integer(a), Value::Integer(b)) => {
                    let a = *a;
                    let b = *b;
                    match op {
                        Add => Ok(Value::Integer(a.wrapping_add(b))),
                        Sub => Ok(Value::Integer(a.wrapping_sub(b))),
                        Mul => Ok(Value::Integer(a.wrapping_mul(b))),
                        Div => {
                            if b == 0 {
                                Err(Error::Eval("division by zero".into()))
                            } else {
                                Ok(Value::Integer(a / b))
                            }
                        }
                        Mod => {
                            if b == 0 {
                                Err(Error::Eval("modulo by zero".into()))
                            } else {
                                Ok(Value::Integer(a % b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
                _ => {
                    let a = as_f64(&l)?;
                    let b = as_f64(&r)?;
                    match op {
                        Add => Ok(Value::Real(a + b)),
                        Sub => Ok(Value::Real(a - b)),
                        Mul => Ok(Value::Real(a * b)),
                        Div => {
                            if b == 0.0 {
                                Err(Error::Eval("division by zero".into()))
                            } else {
                                Ok(Value::Real(a / b))
                            }
                        }
                        Mod => {
                            if b == 0.0 {
                                Err(Error::Eval("modulo by zero".into()))
                            } else {
                                Ok(Value::Real(a % b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        And | Or => unreachable!("handled by caller"),
    }
}

fn as_f64(v: &Value) -> Result<f64> {
    match v {
        Value::Integer(i) => Ok(*i as f64),
        Value::Real(r) => Ok(*r),
        Value::Timestamp(t) => Ok(*t as f64),
        other => Err(Error::Eval(format!("not numeric: {other:?}"))),
    }
}

/// Names of the supported aggregate functions.
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX")
}

/// Does this expression (transitively) contain an aggregate call?
pub fn contains_aggregate(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if let Expr::Function { name, .. } = e {
            if is_aggregate(name) {
                found = true;
            }
        }
    });
    found
}

fn eval_scalar_function(name: &str, args: &[Expr], star: bool, ctx: &EvalCtx<'_>) -> Result<Value> {
    if is_aggregate(name) {
        return Err(Error::Eval(format!(
            "aggregate {name} used outside GROUP BY context"
        )));
    }
    if star {
        return Err(Error::Eval(format!("{name}(*) is not a function")));
    }
    let vals: Vec<Value> = args
        .iter()
        .map(|a| eval(a, ctx))
        .collect::<Result<Vec<_>>>()?;
    let arg = |i: usize| -> Result<&Value> {
        vals.get(i)
            .ok_or_else(|| Error::Eval(format!("{name}: missing argument #{i}")))
    };
    match name {
        "UPPER" => Ok(match arg(0)? {
            Value::Null => Value::Null,
            v => Value::Text(v.render().to_uppercase()),
        }),
        "LOWER" => Ok(match arg(0)? {
            Value::Null => Value::Null,
            v => Value::Text(v.render().to_lowercase()),
        }),
        "LENGTH" => Ok(match arg(0)? {
            Value::Null => Value::Null,
            v => Value::Integer(v.render().chars().count() as i64),
        }),
        "ABS" => match arg(0)? {
            Value::Null => Ok(Value::Null),
            Value::Integer(i) => Ok(Value::Integer(i.abs())),
            Value::Real(r) => Ok(Value::Real(r.abs())),
            other => Err(Error::Eval(format!("ABS of non-number {other:?}"))),
        },
        "COALESCE" => {
            for v in &vals {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        "SUBSTR" | "SUBSTRING" => {
            let s = match arg(0)? {
                Value::Null => return Ok(Value::Null),
                v => v.render(),
            };
            let start = match arg(1)? {
                Value::Integer(i) => (*i).max(1) as usize - 1,
                _ => return Err(Error::Eval("SUBSTR start must be integer".into())),
            };
            let chars: Vec<char> = s.chars().collect();
            let len = match vals.get(2) {
                Some(Value::Integer(l)) => (*l).max(0) as usize,
                Some(_) => return Err(Error::Eval("SUBSTR length must be integer".into())),
                None => chars.len().saturating_sub(start),
            };
            Ok(Value::Text(
                chars.iter().skip(start).take(len).collect::<String>(),
            ))
        }
        "TRIM" => Ok(match arg(0)? {
            Value::Null => Value::Null,
            v => Value::Text(v.render().trim().to_string()),
        }),
        other => Err(Error::Unsupported(format!("function {other}"))),
    }
}

/// SQL LIKE matching: `%` matches any run, `_` matches one character.
/// Matching is case-insensitive, mirroring the collation typically used for
/// generated search units.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // skip consecutive %
                let rest = &p[1..];
                (0..=t.len()).any(|k| rec(&t[k..], rest))
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => {
                !t.is_empty() && t[0].to_lowercase().eq(c.to_lowercase()) && rec(&t[1..], &p[1..])
            }
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use crate::value::DataType;

    fn schema() -> TableSchema {
        TableSchema::new("t")
            .column(Column::new("a", DataType::Integer))
            .column(Column::new("b", DataType::Text))
    }

    fn eval_str(src: &str, row: &Row, schema: &TableSchema, params: &Params) -> Result<Value> {
        // parse through a dummy SELECT so we reuse the expression parser
        let stmt = crate::sql::parser::parse_statement(&format!("SELECT {src}")).unwrap();
        let crate::sql::ast::Statement::Select(sel) = stmt else {
            panic!()
        };
        let crate::sql::ast::SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        let bindings = [Binding {
            name: "t",
            schema,
            row: Some(row),
        }];
        eval(
            expr,
            &EvalCtx {
                bindings: &bindings,
                params,
            },
        )
    }

    #[test]
    fn arithmetic_and_precedence() {
        let s = schema();
        let row = vec![Value::Integer(10), Value::Text("x".into())];
        let p = Params::new();
        assert_eq!(
            eval_str("a + 2 * 3", &row, &s, &p).unwrap(),
            Value::Integer(16)
        );
        assert_eq!(
            eval_str("(a + 2) * 3", &row, &s, &p).unwrap(),
            Value::Integer(36)
        );
        assert_eq!(eval_str("a / 4", &row, &s, &p).unwrap(), Value::Integer(2));
        assert_eq!(eval_str("a / 4.0", &row, &s, &p).unwrap(), Value::Real(2.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let s = schema();
        let row = vec![Value::Integer(1), Value::Null];
        assert!(eval_str("a / 0", &row, &s, &Params::new()).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        let row = vec![Value::Null, Value::Text("x".into())];
        let p = Params::new();
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL
        assert_eq!(
            eval_str("a = 1 AND 1 = 2", &row, &s, &p).unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(
            eval_str("a = 1 OR 1 = 1", &row, &s, &p).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            eval_str("a = 1 AND 1 = 1", &row, &s, &p).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Database Systems", "%base%"));
        assert!(like_match("Database", "D_tabase"));
        assert!(!like_match("Database", "D_abase"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        // case-insensitive
        assert!(like_match("WebML", "webml"));
    }

    #[test]
    fn in_list_with_null_is_unknown() {
        let s = schema();
        let row = vec![Value::Integer(5), Value::Null];
        let p = Params::new();
        assert_eq!(
            eval_str("a IN (1, 2, NULL)", &row, &s, &p).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_str("a IN (5, NULL)", &row, &s, &p).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn named_and_positional_params() {
        let s = schema();
        let row = vec![Value::Integer(5), Value::Null];
        let p = Params::positional([Value::Integer(5)]).bind("lo", 1);
        assert_eq!(
            eval_str("a = ? AND a > :lo", &row, &s, &p).unwrap(),
            Value::Boolean(true)
        );
        assert!(eval_str("a = :missing", &row, &s, &p).is_err());
    }

    #[test]
    fn scalar_functions() {
        let s = schema();
        let row = vec![Value::Integer(-3), Value::Text("WebML".into())];
        let p = Params::new();
        assert_eq!(
            eval_str("UPPER(b)", &row, &s, &p).unwrap(),
            Value::Text("WEBML".into())
        );
        assert_eq!(eval_str("ABS(a)", &row, &s, &p).unwrap(), Value::Integer(3));
        assert_eq!(
            eval_str("LENGTH(b)", &row, &s, &p).unwrap(),
            Value::Integer(5)
        );
        assert_eq!(
            eval_str("COALESCE(NULL, b)", &row, &s, &p).unwrap(),
            Value::Text("WebML".into())
        );
        assert_eq!(
            eval_str("SUBSTR(b, 4)", &row, &s, &p).unwrap(),
            Value::Text("ML".into())
        );
        assert_eq!(
            eval_str("SUBSTR(b, 1, 3)", &row, &s, &p).unwrap(),
            Value::Text("Web".into())
        );
    }

    #[test]
    fn ambiguous_unqualified_column_is_error() {
        let s1 = schema();
        let s2 = schema();
        let r1 = vec![Value::Integer(1), Value::Null];
        let r2 = vec![Value::Integer(2), Value::Null];
        let bindings = [
            Binding {
                name: "x",
                schema: &s1,
                row: Some(&r1),
            },
            Binding {
                name: "y",
                schema: &s2,
                row: Some(&r2),
            },
        ];
        let ctx = EvalCtx {
            bindings: &bindings,
            params: &Params::new(),
        };
        assert!(ctx.column(None, "a").is_err());
        assert_eq!(ctx.column(Some("y"), "a").unwrap(), Value::Integer(2));
    }

    #[test]
    fn left_join_null_extension() {
        let s = schema();
        let bindings = [Binding {
            name: "t",
            schema: &s,
            row: None,
        }];
        let ctx = EvalCtx {
            bindings: &bindings,
            params: &Params::new(),
        };
        assert_eq!(ctx.column(Some("t"), "a").unwrap(), Value::Null);
    }

    #[test]
    fn contains_aggregate_detection() {
        let stmt = crate::sql::parser::parse_statement("SELECT COUNT(*) + 1, a FROM t").unwrap();
        let crate::sql::ast::Statement::Select(sel) = stmt else {
            panic!()
        };
        let crate::sql::ast::SelectItem::Expr { expr: e0, .. } = &sel.items[0] else {
            panic!()
        };
        let crate::sql::ast::SelectItem::Expr { expr: e1, .. } = &sel.items[1] else {
            panic!()
        };
        assert!(contains_aggregate(e0));
        assert!(!contains_aggregate(e1));
    }
}
