//! # relstore — the data tier of the WebML/WebRatio reproduction
//!
//! An in-memory relational database engine with a SQL subset, playing the
//! role of the "JDBC or ODBC compliant data source" in the paper's
//! architecture (CIDR 2003, §1). Generated unit descriptors carry SQL text;
//! the generic unit services of the MVC runtime prepare and execute those
//! statements here with bound parameters.
//!
//! Supported SQL:
//!
//! * `SELECT` with `DISTINCT`, expressions, `FROM` with `INNER`/`LEFT JOIN`,
//!   `WHERE`, `GROUP BY`/`HAVING` with `COUNT/SUM/AVG/MIN/MAX`, `ORDER BY`
//!   (expressions, aliases, ordinals), `LIMIT`/`OFFSET`;
//! * `INSERT` (multi-row), `UPDATE`, `DELETE` with foreign-key enforcement
//!   (`RESTRICT`, `CASCADE`, `SET NULL`);
//! * `CREATE TABLE` (PK, FK, defaults, `AUTOINCREMENT`), `CREATE [UNIQUE]
//!   INDEX`, `DROP TABLE`;
//! * positional (`?`) and named (`:name`) parameters — the generated unit
//!   queries use named parameters matching WebML link parameters.
//!
//! Execution uses primary-key and secondary B-tree indexes for equality
//! probes (base-table WHERE pushdown and join acceleration), a build/probe
//! hash join for unindexed equi-join conjuncts, and a bounded Top-K heap
//! for `ORDER BY` + `LIMIT`; everything else is a scan + filter, which is
//! the right trade-off for the unit-query workload this engine serves.
//! [`exec::SelectStats`] reports which path answered each query.
//!
//! ```
//! use relstore::{Database, Params, Value};
//!
//! let db = Database::new();
//! db.execute_script(
//!     "CREATE TABLE volume (oid INTEGER PRIMARY KEY AUTOINCREMENT, title TEXT NOT NULL);",
//! ).unwrap();
//! db.execute("INSERT INTO volume (title) VALUES ('TODS 27')", &Params::new()).unwrap();
//! let rs = db.query(
//!     "SELECT title FROM volume WHERE oid = :id",
//!     &Params::new().bind("id", 1),
//! ).unwrap();
//! assert_eq!(rs.first("title"), Some(&Value::Text("TODS 27".into())));
//! ```

pub mod change;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod result;
pub mod schema;
pub mod session;
pub mod sql;
pub mod storage;
pub mod table;
pub mod value;

pub use change::{redo_from_undo, ChangeRecord, CommitSink};
pub use db::{Database, HorizonFn, Transaction};
pub use error::{Error, Result};
pub use exec::SelectStats;
pub use expr::Params;
pub use result::{ExecResult, ResultSet};
pub use schema::{Column, ForeignKey, ReferentialAction, TableSchema};
pub use session::Session;
pub use sql::ast::Statement;
pub use sql::parser::{parse_script, parse_statement};
pub use table::{Row, RowId, Snapshot, Table};
pub use value::{DataType, Value};
