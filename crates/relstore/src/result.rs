//! Tabular query results.

use crate::value::Value;

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// A SELECT produced rows.
    Rows(ResultSet),
    /// A DML/DDL statement affected this many rows (0 for DDL).
    Affected(usize),
}

impl ExecResult {
    /// Unwrap as a result set, panicking on DML (test helper).
    pub fn rows(self) -> ResultSet {
        match self {
            ExecResult::Rows(r) => r,
            ExecResult::Affected(n) => panic!("expected rows, got {n} affected"),
        }
    }

    pub fn affected(self) -> usize {
        match self {
            ExecResult::Affected(n) => n,
            ExecResult::Rows(r) => r.len(),
        }
    }
}

/// Column-named rows returned by a SELECT — the engine's analogue of a JDBC
/// result set, and the payload from which unit beans are built.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet { columns, rows }
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Value at (row, column-name); `None` when either is missing.
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let c = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(c))
    }

    /// First row's value for `column` — the common case for data units.
    pub fn first(&self, column: &str) -> Option<&Value> {
        self.get(0, column)
    }

    /// Iterate rows as `(column, value)` pair lists (used by bean packing).
    pub fn iter_named(&self) -> impl Iterator<Item = Vec<(&str, &Value)>> {
        self.rows.iter().map(move |row| {
            self.columns
                .iter()
                .map(|c| c.as_str())
                .zip(row.iter())
                .collect()
        })
    }

    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_case_insensitive() {
        let rs = ResultSet::new(
            vec!["oid".into(), "Title".into()],
            vec![vec![Value::Integer(1), Value::Text("TODS".into())]],
        );
        assert_eq!(rs.get(0, "TITLE"), Some(&Value::Text("TODS".into())));
        assert_eq!(rs.first("oid"), Some(&Value::Integer(1)));
        assert_eq!(rs.get(1, "oid"), None);
        assert_eq!(rs.get(0, "nope"), None);
    }

    #[test]
    fn iter_named_pairs() {
        let rs = ResultSet::new(
            vec!["a".into()],
            vec![vec![Value::Integer(1)], vec![Value::Integer(2)]],
        );
        let all: Vec<_> = rs.iter_named().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1][0], ("a", &Value::Integer(2)));
    }
}
