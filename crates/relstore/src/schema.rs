//! Table schemas: columns, keys, and foreign-key constraints.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
    /// Default applied when an INSERT omits the column.
    pub default: Option<Value>,
    /// Auto-assign a fresh integer on insert when the value is NULL/omitted.
    pub auto_increment: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
            default: None,
            auto_increment: false,
        }
    }

    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }

    pub fn with_default(mut self, v: Value) -> Column {
        self.default = Some(v);
        self
    }

    pub fn auto(mut self) -> Column {
        self.auto_increment = true;
        self
    }
}

/// A foreign-key constraint: `columns` of this table reference
/// `referenced_columns` of `referenced_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub name: String,
    pub columns: Vec<String>,
    pub referenced_table: String,
    pub referenced_columns: Vec<String>,
    pub on_delete: ReferentialAction,
}

/// What to do with referencing rows when the referenced row is deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferentialAction {
    /// Refuse the delete (default).
    Restrict,
    /// Delete the referencing rows too.
    Cascade,
    /// Null out the referencing columns.
    SetNull,
}

/// Complete definition of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Indexes into `columns` forming the primary key (may be empty).
    pub primary_key: Vec<usize>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Add a column, returning `self` for chaining.
    pub fn column(mut self, col: Column) -> TableSchema {
        self.columns.push(col);
        self
    }

    /// Declare the primary key by column names. Unknown names are an error
    /// at validation time, not here, so builders stay infallible.
    pub fn primary_key(mut self, names: &[&str]) -> TableSchema {
        self.primary_key = names
            .iter()
            .filter_map(|n| self.columns.iter().position(|c| c.name == *n))
            .collect();
        self
    }

    pub fn foreign_key(mut self, fk: ForeignKey) -> TableSchema {
        self.foreign_keys.push(fk);
        self
    }

    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column lookup that produces the engine error on miss.
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_index(name)
            .ok_or_else(|| Error::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// Names of the primary-key columns, in key order.
    pub fn primary_key_names(&self) -> Vec<&str> {
        self.primary_key
            .iter()
            .map(|&i| self.columns[i].name.as_str())
            .collect()
    }

    /// Sanity-check internal consistency (PK indexes in range, FK arity,
    /// unique column names). Called when the table is created.
    pub fn validate(&self) -> Result<()> {
        for (i, c) in self.columns.iter().enumerate() {
            for other in &self.columns[i + 1..] {
                if c.name.eq_ignore_ascii_case(&other.name) {
                    return Err(Error::UnknownColumn(format!(
                        "duplicate column {} in table {}",
                        c.name, self.name
                    )));
                }
            }
        }
        for &i in &self.primary_key {
            if i >= self.columns.len() {
                return Err(Error::UnknownColumn(format!(
                    "primary key column #{i} out of range in {}",
                    self.name
                )));
            }
        }
        for fk in &self.foreign_keys {
            if fk.columns.len() != fk.referenced_columns.len() {
                return Err(Error::ForeignKeyViolation {
                    table: self.name.clone(),
                    constraint: format!("{}: arity mismatch", fk.name),
                });
            }
            for c in &fk.columns {
                self.require_column(c)?;
            }
        }
        Ok(())
    }

    /// Render the `CREATE TABLE` statement for this schema (round-trips
    /// through the parser; used by the DDL generator).
    pub fn to_create_sql(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.columns.len() + 2);
        for c in &self.columns {
            let mut s = format!("{} {}", c.name, c.data_type.sql_name());
            if !c.nullable {
                s.push_str(" NOT NULL");
            }
            if c.auto_increment {
                s.push_str(" AUTOINCREMENT");
            }
            if let Some(d) = &c.default {
                s.push_str(" DEFAULT ");
                s.push_str(&d.to_sql_literal());
            }
            parts.push(s);
        }
        if !self.primary_key.is_empty() {
            parts.push(format!(
                "PRIMARY KEY ({})",
                self.primary_key_names().join(", ")
            ));
        }
        for fk in &self.foreign_keys {
            let action = match fk.on_delete {
                ReferentialAction::Restrict => "",
                ReferentialAction::Cascade => " ON DELETE CASCADE",
                ReferentialAction::SetNull => " ON DELETE SET NULL",
            };
            parts.push(format!(
                "CONSTRAINT {} FOREIGN KEY ({}) REFERENCES {} ({}){}",
                fk.name,
                fk.columns.join(", "),
                fk.referenced_table,
                fk.referenced_columns.join(", "),
                action
            ));
        }
        format!("CREATE TABLE {} (\n  {}\n)", self.name, parts.join(",\n  "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new("paper")
            .column(Column::new("oid", DataType::Integer).not_null().auto())
            .column(Column::new("title", DataType::Text).not_null())
            .column(Column::new("pages", DataType::Integer))
            .primary_key(&["oid"])
            .foreign_key(ForeignKey {
                name: "fk_issue".into(),
                columns: vec!["issue_oid".into()],
                referenced_table: "issue".into(),
                referenced_columns: vec!["oid".into()],
                on_delete: ReferentialAction::Cascade,
            })
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.column_index("TITLE"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn validate_rejects_missing_fk_column() {
        // fk references issue_oid which was never declared
        assert!(sample().validate().is_err());
    }

    #[test]
    fn validate_accepts_complete_schema() {
        let s = sample().column(Column::new("issue_oid", DataType::Integer));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_columns() {
        let s = TableSchema::new("t")
            .column(Column::new("a", DataType::Integer))
            .column(Column::new("A", DataType::Text));
        assert!(s.validate().is_err());
    }

    #[test]
    fn create_sql_mentions_constraints() {
        let sql = sample()
            .column(Column::new("issue_oid", DataType::Integer))
            .to_create_sql();
        assert!(sql.contains("PRIMARY KEY (oid)"));
        assert!(sql.contains("ON DELETE CASCADE"));
        assert!(sql.contains("title TEXT NOT NULL"));
    }
}
