//! Connection-style sessions supporting SQL-level transaction control.
//!
//! [`crate::Database::transaction`] gives closure-scoped transactions with
//! serializable isolation (the write lock is held throughout). A
//! [`Session`] instead mimics a JDBC connection: statements arrive one at
//! a time and `BEGIN`/`COMMIT`/`ROLLBACK` arrive as statements. Locks are
//! taken per statement, so isolation is read-committed: other writers may
//! interleave between the session's statements, but `ROLLBACK` still
//! undoes exactly this session's mutations.

use crate::db::Database;
use crate::error::{Error, Result};
use crate::exec::{run_select_with_stats, SelectStats};
use crate::expr::Params;
use crate::result::{ExecResult, ResultSet};
use crate::sql::ast::Statement;
use crate::storage::UndoLog;
use std::sync::Arc;

/// A stateful connection to a [`Database`].
pub struct Session {
    db: Arc<Database>,
    /// `Some` while a transaction is open.
    undo: Option<UndoLog>,
}

impl Session {
    pub fn new(db: Arc<Database>) -> Session {
        Session { db, undo: None }
    }

    /// Is a transaction currently open?
    pub fn in_transaction(&self) -> bool {
        self.undo.is_some()
    }

    /// Execute one statement, honouring transaction state.
    pub fn execute(&mut self, sql: &str, params: &Params) -> Result<ExecResult> {
        let stmt = self.db.prepare(sql)?;
        match stmt.as_ref() {
            Statement::Begin => {
                if self.undo.is_some() {
                    return Err(Error::Transaction("transaction already open".into()));
                }
                self.undo = Some(Vec::new());
                Ok(ExecResult::Affected(0))
            }
            Statement::Commit => {
                let Some(undo) = self.undo.take() else {
                    return Err(Error::Transaction("no open transaction".into()));
                };
                // Publish the redo image at COMMIT time, under the storage
                // write lock, so the durable stream orders by commit point.
                // (Session isolation is read-committed; concurrent writers
                // that touched the same rows were already ordered before us
                // by their own emission, and the redo derivation reads the
                // *current* values, which are the committed ones.)
                let seq = self
                    .db
                    .with_storage_mut(|storage| self.db.emit_locked(storage, &undo));
                self.db.wait_durable_opt(seq)?;
                Ok(ExecResult::Affected(0))
            }
            Statement::Rollback => match self.undo.take() {
                Some(undo) => {
                    self.db.with_storage_mut(|storage| storage.rollback(undo));
                    Ok(ExecResult::Affected(0))
                }
                None => Err(Error::Transaction("no open transaction".into())),
            },
            Statement::Select(sel) => {
                self.db.count_statement();
                let mut stats = SelectStats::default();
                let r = self.db.with_storage(|storage| {
                    Ok(ExecResult::Rows(run_select_with_stats(
                        storage, sel, params, &mut stats,
                    )?))
                });
                self.db.record_select_stats(&stats);
                r
            }
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                self.db.count_statement();
                match &mut self.undo {
                    Some(undo) => self.db.with_storage_mut(|storage| {
                        let mark = undo.len();
                        let r = match stmt.as_ref() {
                            Statement::Insert(i) => storage.run_insert(i, params, undo),
                            Statement::Update(u) => storage.run_update(u, params, undo),
                            Statement::Delete(d) => storage.run_delete(d, params, undo),
                            _ => unreachable!(),
                        };
                        match r {
                            Ok(n) => Ok(ExecResult::Affected(n)),
                            Err(e) => {
                                // statement-level atomicity inside the txn
                                let tail: UndoLog = undo.drain(mark..).collect();
                                storage.rollback(tail);
                                Err(e)
                            }
                        }
                    }),
                    None => self.db.execute_stmt(&stmt, params),
                }
            }
            // DDL is auto-committed and refused mid-transaction
            _ => {
                if self.undo.is_some() {
                    return Err(Error::Transaction(
                        "DDL is not allowed inside a transaction".into(),
                    ));
                }
                self.db.execute_stmt(&stmt, params)
            }
        }
    }

    pub fn query(&mut self, sql: &str, params: &Params) -> Result<ResultSet> {
        match self.execute(sql, params)? {
            ExecResult::Rows(r) => Ok(r),
            _ => Err(Error::Unsupported("query() on a non-SELECT".into())),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // an abandoned open transaction rolls back, like closing a JDBC
        // connection without commit
        if let Some(undo) = self.undo.take() {
            self.db.with_storage_mut(|storage| storage.rollback(undo));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT NOT NULL);")
            .unwrap();
        db
    }

    #[test]
    fn begin_commit_persists() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        assert!(s.in_transaction());
        s.execute("INSERT INTO t (v) VALUES ('a')", &Params::new())
            .unwrap();
        s.execute("COMMIT", &Params::new()).unwrap();
        assert!(!s.in_transaction());
        assert_eq!(db.table_len("t").unwrap(), 1);
    }

    #[test]
    fn rollback_undoes_session_writes() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        s.execute("INSERT INTO t (v) VALUES ('a')", &Params::new())
            .unwrap();
        s.execute("INSERT INTO t (v) VALUES ('b')", &Params::new())
            .unwrap();
        // reads inside the txn see the writes
        let rs = s
            .query("SELECT COUNT(*) AS n FROM t", &Params::new())
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(2)));
        s.execute("ROLLBACK", &Params::new()).unwrap();
        assert_eq!(db.table_len("t").unwrap(), 0);
    }

    #[test]
    fn failing_statement_rolls_back_only_itself() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        s.execute("INSERT INTO t (v) VALUES ('keep')", &Params::new())
            .unwrap();
        // violates NOT NULL → statement fails, txn survives
        assert!(s
            .execute("INSERT INTO t (v) VALUES (NULL)", &Params::new())
            .is_err());
        assert!(s.in_transaction());
        s.execute("COMMIT", &Params::new()).unwrap();
        assert_eq!(db.table_len("t").unwrap(), 1);
    }

    #[test]
    fn transaction_misuse_is_rejected() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        assert!(s.execute("COMMIT", &Params::new()).is_err());
        assert!(s.execute("ROLLBACK", &Params::new()).is_err());
        s.execute("BEGIN", &Params::new()).unwrap();
        assert!(s.execute("BEGIN", &Params::new()).is_err());
        assert!(s
            .execute("CREATE TABLE u (x INTEGER)", &Params::new())
            .is_err());
    }

    #[test]
    fn drop_rolls_back_open_transaction() {
        let db = db();
        {
            let mut s = Session::new(Arc::clone(&db));
            s.execute("BEGIN", &Params::new()).unwrap();
            s.execute("INSERT INTO t (v) VALUES ('ghost')", &Params::new())
                .unwrap();
            // dropped without commit
        }
        assert_eq!(db.table_len("t").unwrap(), 0);
    }

    #[test]
    fn autocommit_outside_transaction() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("INSERT INTO t (v) VALUES ('auto')", &Params::new())
            .unwrap();
        assert_eq!(db.table_len("t").unwrap(), 1);
        // DDL works outside a txn
        s.execute("CREATE TABLE u (x INTEGER)", &Params::new())
            .unwrap();
        assert!(db.table_names().contains(&"u".to_string()));
    }

    #[test]
    fn two_sessions_interleave_with_independent_rollback() {
        let db = db();
        let mut a = Session::new(Arc::clone(&db));
        let mut b = Session::new(Arc::clone(&db));
        a.execute("BEGIN", &Params::new()).unwrap();
        a.execute("INSERT INTO t (v) VALUES ('from-a')", &Params::new())
            .unwrap();
        b.execute("INSERT INTO t (v) VALUES ('from-b')", &Params::new())
            .unwrap(); // autocommit
        a.execute("ROLLBACK", &Params::new()).unwrap();
        let rs = db.query("SELECT v FROM t", &Params::new()).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.first("v"), Some(&Value::Text("from-b".into())));
    }
}
