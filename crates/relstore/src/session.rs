//! Connection-style sessions supporting SQL-level transaction control.
//!
//! [`crate::Database::transaction`] gives closure-scoped transactions with
//! serializable isolation (the write lock is held throughout). A
//! [`Session`] instead mimics a JDBC connection: statements arrive one at
//! a time and `BEGIN`/`COMMIT`/`ROLLBACK` arrive as statements.
//!
//! Sessions run under **snapshot isolation**: `BEGIN` pins the commit LSN
//! of the moment it executes, and every read inside the transaction — full
//! scans, index probes, hash joins — sees exactly the rows committed as of
//! that LSN, plus the session's own uncommitted writes. Readers take only
//! the storage *read* lock, so a long-lived open transaction in one
//! session never blocks reads in another. Writes take per-statement write
//! locks and install new row versions; if a concurrent transaction already
//! wrote (or committed a write to) the same row, the statement fails with
//! [`Error::WriteConflict`] — first writer wins, the loser retries.

use crate::db::Database;
use crate::error::{Error, Result};
use crate::exec::{run_select_with_stats, SelectStats};
use crate::expr::Params;
use crate::result::{ExecResult, ResultSet};
use crate::sql::ast::Statement;
use crate::storage::UndoLog;
use crate::table::{Snapshot, WriteCtx};
use std::sync::Arc;

/// State carried between statements while a transaction is open.
struct OpenTxn {
    txid: u64,
    /// Commit LSN pinned at `BEGIN`; reads see commits `<=` this.
    snapshot_lsn: u64,
    undo: UndoLog,
}

/// A stateful connection to a [`Database`].
pub struct Session {
    db: Arc<Database>,
    /// `Some` while a transaction is open.
    txn: Option<OpenTxn>,
}

impl Session {
    pub fn new(db: Arc<Database>) -> Session {
        Session { db, txn: None }
    }

    /// Is a transaction currently open?
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Execute one statement, honouring transaction state.
    pub fn execute(&mut self, sql: &str, params: &Params) -> Result<ExecResult> {
        let stmt = self.db.prepare(sql)?;
        match stmt.as_ref() {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(Error::Transaction("transaction already open".into()));
                }
                self.txn = Some(OpenTxn {
                    txid: self.db.mint_txid(),
                    snapshot_lsn: self.db.pin_snapshot(),
                    undo: Vec::new(),
                });
                Ok(ExecResult::Affected(0))
            }
            Statement::Commit => {
                let Some(txn) = self.txn.take() else {
                    return Err(Error::Transaction("no open transaction".into()));
                };
                // Stamp every version this transaction installed with one
                // commit LSN, under the storage write lock, so the durable
                // stream and the visibility clock order by commit point.
                let seq = self.db.with_storage_mut(|storage| {
                    self.db.commit_locked(storage, &txn.undo, txn.txid)
                });
                self.db.unpin_snapshot(txn.snapshot_lsn);
                self.db.wait_durable_opt(seq)?;
                Ok(ExecResult::Affected(0))
            }
            Statement::Rollback => match self.txn.take() {
                Some(txn) => {
                    self.db
                        .with_storage_mut(|storage| storage.rollback(txn.undo, txn.txid));
                    self.db.unpin_snapshot(txn.snapshot_lsn);
                    Ok(ExecResult::Affected(0))
                }
                None => Err(Error::Transaction("no open transaction".into())),
            },
            Statement::Select(sel) => {
                self.db.count_statement();
                // Inside a transaction, read at the pinned snapshot plus
                // our own uncommitted writes; outside, read the latest
                // committed state. Either way only the read lock is taken.
                let snap = match &self.txn {
                    Some(t) => Snapshot::at(t.snapshot_lsn, t.txid),
                    None => Snapshot::latest(),
                };
                let mut stats = SelectStats::default();
                let r = self.db.with_storage(|storage| {
                    Ok(ExecResult::Rows(run_select_with_stats(
                        storage, sel, params, snap, &mut stats,
                    )?))
                });
                self.db.record_select_stats(&stats);
                r
            }
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                self.db.count_statement();
                match &mut self.txn {
                    Some(txn) => {
                        let ctx = WriteCtx {
                            txid: txn.txid,
                            snapshot_lsn: txn.snapshot_lsn,
                        };
                        let undo = &mut txn.undo;
                        let r = self.db.with_storage_mut(|storage| {
                            let mark = undo.len();
                            let r = match stmt.as_ref() {
                                Statement::Insert(i) => storage.run_insert(i, params, undo, &ctx),
                                Statement::Update(u) => storage.run_update(u, params, undo, &ctx),
                                Statement::Delete(d) => storage.run_delete(d, params, undo, &ctx),
                                _ => unreachable!(),
                            };
                            match r {
                                Ok(n) => Ok(ExecResult::Affected(n)),
                                Err(e) => {
                                    // statement-level atomicity inside the txn
                                    let tail: UndoLog = undo.drain(mark..).collect();
                                    storage.rollback(tail, ctx.txid);
                                    Err(e)
                                }
                            }
                        });
                        r.map_err(|e| self.db.note_conflict(e))
                    }
                    None => self.db.execute_stmt(&stmt, params),
                }
            }
            // DDL is auto-committed and refused mid-transaction
            _ => {
                if self.txn.is_some() {
                    return Err(Error::Transaction(
                        "DDL is not allowed inside a transaction".into(),
                    ));
                }
                self.db.execute_stmt(&stmt, params)
            }
        }
    }

    pub fn query(&mut self, sql: &str, params: &Params) -> Result<ResultSet> {
        match self.execute(sql, params)? {
            ExecResult::Rows(r) => Ok(r),
            _ => Err(Error::Unsupported("query() on a non-SELECT".into())),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // an abandoned open transaction rolls back, like closing a JDBC
        // connection without commit
        if let Some(txn) = self.txn.take() {
            self.db
                .with_storage_mut(|storage| storage.rollback(txn.undo, txn.txid));
            self.db.unpin_snapshot(txn.snapshot_lsn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT NOT NULL);")
            .unwrap();
        db
    }

    #[test]
    fn begin_commit_persists() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        assert!(s.in_transaction());
        s.execute("INSERT INTO t (v) VALUES ('a')", &Params::new())
            .unwrap();
        s.execute("COMMIT", &Params::new()).unwrap();
        assert!(!s.in_transaction());
        assert_eq!(db.table_len("t").unwrap(), 1);
    }

    #[test]
    fn rollback_undoes_session_writes() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        s.execute("INSERT INTO t (v) VALUES ('a')", &Params::new())
            .unwrap();
        s.execute("INSERT INTO t (v) VALUES ('b')", &Params::new())
            .unwrap();
        // reads inside the txn see the writes
        let rs = s
            .query("SELECT COUNT(*) AS n FROM t", &Params::new())
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(2)));
        s.execute("ROLLBACK", &Params::new()).unwrap();
        assert_eq!(db.table_len("t").unwrap(), 0);
    }

    #[test]
    fn failing_statement_rolls_back_only_itself() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        s.execute("INSERT INTO t (v) VALUES ('keep')", &Params::new())
            .unwrap();
        // violates NOT NULL → statement fails, txn survives
        assert!(s
            .execute("INSERT INTO t (v) VALUES (NULL)", &Params::new())
            .is_err());
        assert!(s.in_transaction());
        s.execute("COMMIT", &Params::new()).unwrap();
        assert_eq!(db.table_len("t").unwrap(), 1);
    }

    #[test]
    fn transaction_misuse_is_rejected() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        assert!(s.execute("COMMIT", &Params::new()).is_err());
        assert!(s.execute("ROLLBACK", &Params::new()).is_err());
        s.execute("BEGIN", &Params::new()).unwrap();
        assert!(s.execute("BEGIN", &Params::new()).is_err());
        assert!(s
            .execute("CREATE TABLE u (x INTEGER)", &Params::new())
            .is_err());
    }

    #[test]
    fn drop_rolls_back_open_transaction() {
        let db = db();
        {
            let mut s = Session::new(Arc::clone(&db));
            s.execute("BEGIN", &Params::new()).unwrap();
            s.execute("INSERT INTO t (v) VALUES ('ghost')", &Params::new())
                .unwrap();
            // dropped without commit
        }
        assert_eq!(db.table_len("t").unwrap(), 0);
    }

    #[test]
    fn autocommit_outside_transaction() {
        let db = db();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("INSERT INTO t (v) VALUES ('auto')", &Params::new())
            .unwrap();
        assert_eq!(db.table_len("t").unwrap(), 1);
        // DDL works outside a txn
        s.execute("CREATE TABLE u (x INTEGER)", &Params::new())
            .unwrap();
        assert!(db.table_names().contains(&"u".to_string()));
    }

    #[test]
    fn two_sessions_interleave_with_independent_rollback() {
        let db = db();
        let mut a = Session::new(Arc::clone(&db));
        let mut b = Session::new(Arc::clone(&db));
        a.execute("BEGIN", &Params::new()).unwrap();
        a.execute("INSERT INTO t (v) VALUES ('from-a')", &Params::new())
            .unwrap();
        b.execute("INSERT INTO t (v) VALUES ('from-b')", &Params::new())
            .unwrap(); // autocommit
        a.execute("ROLLBACK", &Params::new()).unwrap();
        let rs = db.query("SELECT v FROM t", &Params::new()).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.first("v"), Some(&Value::Text("from-b".into())));
    }

    #[test]
    fn open_transaction_is_invisible_to_other_sessions() {
        let db = db();
        let mut a = Session::new(Arc::clone(&db));
        let mut b = Session::new(Arc::clone(&db));
        a.execute("BEGIN", &Params::new()).unwrap();
        a.execute("INSERT INTO t (v) VALUES ('pending')", &Params::new())
            .unwrap();
        // b reads the committed state: nothing there yet
        let rs = b
            .query("SELECT COUNT(*) AS n FROM t", &Params::new())
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(0)));
        a.execute("COMMIT", &Params::new()).unwrap();
        let rs = b
            .query("SELECT COUNT(*) AS n FROM t", &Params::new())
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(1)));
    }

    #[test]
    fn pinned_snapshot_ignores_later_commits() {
        let db = db();
        db.execute("INSERT INTO t (v) VALUES ('before')", &Params::new())
            .unwrap();
        let mut a = Session::new(Arc::clone(&db));
        a.execute("BEGIN", &Params::new()).unwrap();
        let rs = a
            .query("SELECT COUNT(*) AS n FROM t", &Params::new())
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(1)));
        // a concurrent autocommit lands after a's snapshot
        db.execute("INSERT INTO t (v) VALUES ('after')", &Params::new())
            .unwrap();
        let rs = a
            .query("SELECT COUNT(*) AS n FROM t", &Params::new())
            .unwrap();
        assert_eq!(
            rs.first("n"),
            Some(&Value::Integer(1)),
            "snapshot must not move"
        );
        a.execute("COMMIT", &Params::new()).unwrap();
        let rs = a
            .query("SELECT COUNT(*) AS n FROM t", &Params::new())
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(2)));
    }

    #[test]
    fn first_writer_wins_conflict() {
        let db = db();
        db.execute("INSERT INTO t (v) VALUES ('seed')", &Params::new())
            .unwrap();
        let mut a = Session::new(Arc::clone(&db));
        let mut b = Session::new(Arc::clone(&db));
        a.execute("BEGIN", &Params::new()).unwrap();
        b.execute("BEGIN", &Params::new()).unwrap();
        a.execute("UPDATE t SET v = 'a-wins' WHERE k = 1", &Params::new())
            .unwrap();
        // b touches the same row while a's write is pending
        let err = b
            .execute("UPDATE t SET v = 'b-loses' WHERE k = 1", &Params::new())
            .unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }), "got {err:?}");
        // b's txn survives the failed statement and can commit the rest
        b.execute("COMMIT", &Params::new()).unwrap();
        a.execute("COMMIT", &Params::new()).unwrap();
        let rs = db
            .query("SELECT v FROM t WHERE k = 1", &Params::new())
            .unwrap();
        assert_eq!(rs.first("v"), Some(&Value::Text("a-wins".into())));
    }

    #[test]
    fn committed_after_snapshot_conflicts_on_write() {
        let db = db();
        db.execute("INSERT INTO t (v) VALUES ('seed')", &Params::new())
            .unwrap();
        let mut a = Session::new(Arc::clone(&db));
        a.execute("BEGIN", &Params::new()).unwrap();
        // autocommit writer updates the row after a pinned its snapshot
        db.execute("UPDATE t SET v = 'newer' WHERE k = 1", &Params::new())
            .unwrap();
        let err = a
            .execute("UPDATE t SET v = 'stale-write' WHERE k = 1", &Params::new())
            .unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }), "got {err:?}");
        a.execute("ROLLBACK", &Params::new()).unwrap();
        let rs = db
            .query("SELECT v FROM t WHERE k = 1", &Params::new())
            .unwrap();
        assert_eq!(rs.first("v"), Some(&Value::Text("newer".into())));
    }

    #[test]
    fn read_your_own_writes_through_index_probe_and_join() {
        let db = Arc::new(Database::new());
        db.execute_script(
            "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT NOT NULL);
             CREATE TABLE emp (id INTEGER PRIMARY KEY, dept_id INTEGER NOT NULL, name TEXT NOT NULL);
             CREATE INDEX emp_dept ON emp (dept_id);
             INSERT INTO dept (id, name) VALUES (1, 'eng');
             INSERT INTO emp (id, dept_id, name) VALUES (1, 1, 'alice');",
        )
        .unwrap();
        let mut s = Session::new(Arc::clone(&db));
        s.execute("BEGIN", &Params::new()).unwrap();
        s.execute(
            "INSERT INTO emp (id, dept_id, name) VALUES (2, 1, 'bob')",
            &Params::new(),
        )
        .unwrap();
        // PK probe sees the uncommitted row
        let rs = s
            .query("SELECT name FROM emp WHERE id = 2", &Params::new())
            .unwrap();
        assert_eq!(rs.first("name"), Some(&Value::Text("bob".into())));
        // secondary-index probe sees it
        let rs = s
            .query(
                "SELECT COUNT(*) AS n FROM emp WHERE dept_id = 1",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(2)));
        // hash join sees it
        let rs = s
            .query(
                "SELECT emp.name FROM emp JOIN dept ON emp.dept_id = dept.id ORDER BY emp.name",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        // ...while a concurrent session sees none of it
        let mut other = Session::new(Arc::clone(&db));
        let rs = other
            .query("SELECT COUNT(*) AS n FROM emp", &Params::new())
            .unwrap();
        assert_eq!(rs.first("n"), Some(&Value::Integer(1)));
        let rs = other
            .query("SELECT name FROM emp WHERE id = 2", &Params::new())
            .unwrap();
        assert_eq!(
            rs.len(),
            0,
            "uncommitted row must not leak through PK probe"
        );
        s.execute("ROLLBACK", &Params::new()).unwrap();
        assert_eq!(db.table_len("emp").unwrap(), 1);
    }
}
