//! Abstract syntax tree for the supported SQL subset.

use crate::schema::TableSchema;
use crate::value::Value;

/// One parsed statement.
///
/// `Select` dominates the size, but statements are parsed once and cached
/// behind `Arc` (see `Database::prepare`), so boxing buys nothing.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Statement {
    Select(Select),
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    CreateTable(TableSchema),
    CreateIndex(CreateIndex),
    DropTable { name: String, if_exists: bool },
    Begin,
    Commit,
    Rollback,
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// FROM clause: first table plus zero or more joins.
    pub from: Option<FromClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// expression with optional alias
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    pub base: TableRef,
    pub joins: Vec<Join>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by in the query (alias wins).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub table: TableRef,
    pub on: Expr,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub ascending: bool,
}

/// `INSERT INTO t (cols) VALUES (...), (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Explicit column list; empty means "all columns in schema order".
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Expr>>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Column reference, optionally qualified: `t.col` or `col`.
    Column {
        table: Option<String>,
        name: String,
    },
    /// Positional parameter `?` with its 0-based position.
    Param(usize),
    /// Named parameter `:name`.
    NamedParam(String),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
        negated: bool,
    },
    /// Aggregate or scalar function call; `COUNT(*)` has `star = true`.
    Function {
        name: String,
        args: Vec<Expr>,
        star: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Walk the expression tree, calling `f` on every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Number of positional parameters referenced (max index + 1).
    pub fn positional_param_count(&self) -> usize {
        let mut max = 0usize;
        self.walk(&mut |e| {
            if let Expr::Param(i) = e {
                max = max.max(i + 1);
            }
        });
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::And,
            right: Box::new(Expr::IsNull {
                expr: Box::new(Expr::Param(2)),
                negated: false,
            }),
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 4);
        assert_eq!(e.positional_param_count(), 3);
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            table: "volume".into(),
            alias: Some("v".into()),
        };
        assert_eq!(t.binding(), "v");
    }
}
