//! Hand-written SQL lexer.

use crate::error::{Error, Result};

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (keywords are recognised by the parser; the
    /// lexer only upper-cases nothing and keeps the raw spelling).
    Ident(String),
    /// `"quoted identifier"`.
    QuotedIdent(String),
    /// Integer literal.
    Integer(i64),
    /// Float literal.
    Real(f64),
    /// `'string literal'` with `''` escapes already resolved.
    Str(String),
    /// Positional parameter `?`.
    Question,
    /// Named parameter `:name`.
    NamedParam(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    /// String concatenation `||`.
    Concat,
    Eof,
}

impl TokenKind {
    /// `true` if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `src` completely. Comments (`-- ...` and `/* ... */`) are
/// skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::Syntax {
                            message: "unterminated block comment".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Syntax {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // keep multi-byte UTF-8 intact by slicing chars
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&src[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '"' => {
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(Error::Syntax {
                        message: "unterminated quoted identifier".into(),
                        offset: start,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(src[begin..i].to_string()),
                    offset: start,
                });
                i += 1;
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_real = false;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                    if bytes[j] == b'.' {
                        // `1.` followed by non-digit is int + dot
                        if !bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) {
                            break;
                        }
                        is_real = true;
                    }
                    j += 1;
                }
                // exponent
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_real = true;
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                let kind = if is_real {
                    TokenKind::Real(text.parse().map_err(|_| Error::Syntax {
                        message: format!("bad real literal {text}"),
                        offset: start,
                    })?)
                } else {
                    TokenKind::Integer(text.parse().map_err(|_| Error::Syntax {
                        message: format!("bad integer literal {text}"),
                        offset: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            ':' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(Error::Syntax {
                        message: "expected parameter name after ':'".into(),
                        offset: start,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::NamedParam(src[i + 1..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            '?' => {
                tokens.push(Token {
                    kind: TokenKind::Question,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token {
                    kind: TokenKind::Concat,
                    offset: start,
                });
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    offset: start,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            other => {
                return Err(Error::Syntax {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_simple_select() {
        let k = kinds("SELECT a, b FROM t WHERE a = ?");
        assert!(matches!(k[0], TokenKind::Ident(ref s) if s == "SELECT"));
        assert!(k.contains(&TokenKind::Question));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_escape() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn named_params() {
        let k = kinds(":volume_id");
        assert_eq!(k[0], TokenKind::NamedParam("volume_id".into()));
    }

    #[test]
    fn numbers() {
        let k = kinds("1 2.5 3e2 10.");
        assert_eq!(k[0], TokenKind::Integer(1));
        assert_eq!(k[1], TokenKind::Real(2.5));
        assert_eq!(k[2], TokenKind::Real(300.0));
        assert_eq!(k[3], TokenKind::Integer(10));
        assert_eq!(k[4], TokenKind::Dot);
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("SELECT -- hi\n 1 /* x */ + 2");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Integer(1),
                TokenKind::Plus,
                TokenKind::Integer(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("<> != <= >= < > =");
        assert_eq!(
            k[..7],
            [
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn utf8_in_strings() {
        let k = kinds("'héllo wörld'");
        assert_eq!(k[0], TokenKind::Str("héllo wörld".into()));
    }
}
