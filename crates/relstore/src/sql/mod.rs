//! SQL front end: lexer, AST, and recursive-descent parser.

pub mod ast;
pub mod lexer;
pub mod parser;
