//! Recursive-descent parser for the SQL subset the WebML code generator
//! emits: SELECT (joins, WHERE, GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET),
//! INSERT, UPDATE, DELETE, CREATE TABLE / INDEX, DROP TABLE and the three
//! transaction statements.

use super::ast::*;
use super::lexer::{tokenize, Token, TokenKind};
use crate::error::{Error, Result};
use crate::schema::{Column, ForeignKey, ReferentialAction, TableSchema};
use crate::value::{DataType, Value};

/// Parse a single statement (a trailing semicolon is allowed).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a script of semicolon-separated statements.
pub fn parse_script(src: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat_kind(&TokenKind::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_positional: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
            next_positional: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Syntax {
            message: msg.into(),
            offset: self.offset(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_kind(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, k: TokenKind) -> Result<()> {
        if self.eat_kind(&k) {
            Ok(())
        } else {
            Err(self.err(format!("expected {k:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {:?}", self.peek())))
        }
    }

    /// Identifier (plain or quoted). Keywords are accepted as identifiers
    /// where an identifier is required, mirroring permissive SQL dialects.
    fn identifier(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::QuotedIdent(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek().is_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("INSERT") {
            self.insert()
        } else if self.eat_kw("UPDATE") {
            self.update()
        } else if self.eat_kw("DELETE") {
            self.delete()
        } else if self.eat_kw("CREATE") {
            self.create()
        } else if self.eat_kw("DROP") {
            self.drop_table()
        } else if self.eat_kw("BEGIN") || self.eat_kw("START") {
            self.eat_kw("TRANSACTION");
            Ok(Statement::Begin)
        } else if self.eat_kw("COMMIT") {
            Ok(Statement::Commit)
        } else if self.eat_kw("ROLLBACK") {
            Ok(Statement::Rollback)
        } else {
            Err(self.err(format!("expected statement, found {:?}", self.peek())))
        }
    }

    // ---- SELECT ---------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        if distinct {
            // ALL after DISTINCT would be contradictory; plain ALL is a no-op
        } else {
            self.eat_kw("ALL");
        }
        let mut items = vec![self.select_item()?];
        while self.eat_kind(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        let from = if self.eat_kw("FROM") {
            Some(self.from_clause()?)
        } else {
            None
        };
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_kind(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderItem { expr, ascending });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.expr()?);
            if self.eat_kind(&TokenKind::Comma) {
                // MySQL style: LIMIT offset, count
                offset = limit.take();
                limit = Some(self.expr()?);
            }
        }
        if self.eat_kw("OFFSET") {
            offset = Some(self.expr()?);
        }
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    #[allow(clippy::if_same_then_else)]
    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // t.* lookahead
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else if matches!(self.peek(), TokenKind::Ident(s) if !is_clause_keyword(s)) {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    #[allow(clippy::if_same_then_else)]
    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.identifier()?;
        let alias = if self.eat_kw("AS") {
            Some(self.identifier()?)
        } else if matches!(self.peek(), TokenKind::Ident(s)
            if !is_clause_keyword(s) && !is_join_keyword(s) && !s.eq_ignore_ascii_case("ON"))
        {
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_clause(&mut self) -> Result<FromClause> {
        let base = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else if self.eat_kind(&TokenKind::Comma) {
                // comma join: cross join with ON folded into WHERE by the
                // executor; we require an explicit ON-free join here and
                // treat it as INNER with a TRUE condition.
                let table = self.table_ref()?;
                joins.push(Join {
                    kind: JoinKind::Inner,
                    table,
                    on: Expr::Literal(Value::Boolean(true)),
                });
                continue;
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(Join { kind, table, on });
        }
        Ok(FromClause { base, joins })
    }

    // ---- DML ------------------------------------------------------------

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        let mut columns = Vec::new();
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                columns.push(self.identifier()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(TokenKind::LParen)?;
            let mut row = Vec::new();
            if !self.eat_kind(&TokenKind::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(TokenKind::RParen)?;
            }
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_kind(TokenKind::Eq)?;
            let val = self.expr()?;
            assignments.push((col, val));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    // ---- DDL ------------------------------------------------------------

    fn create(&mut self) -> Result<Statement> {
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.identifier()?;
            self.expect_kw("ON")?;
            let table = self.identifier()?;
            self.expect_kind(TokenKind::LParen)?;
            let mut columns = vec![self.identifier()?];
            while self.eat_kind(&TokenKind::Comma) {
                columns.push(self.identifier()?);
            }
            self.expect_kind(TokenKind::RParen)?;
            return Ok(Statement::CreateIndex(CreateIndex {
                name,
                table,
                columns,
                unique,
            }));
        }
        if unique {
            return Err(self.err("expected INDEX after CREATE UNIQUE"));
        }
        self.expect_kw("TABLE")?;
        let name = self.identifier()?;
        self.expect_kind(TokenKind::LParen)?;
        let mut schema = TableSchema::new(name);
        let mut pk_names: Vec<String> = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_kind(TokenKind::LParen)?;
                loop {
                    pk_names.push(self.identifier()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(TokenKind::RParen)?;
            } else if self.peek().is_kw("CONSTRAINT") || self.peek().is_kw("FOREIGN") {
                let fk = self.foreign_key(&schema)?;
                schema.foreign_keys.push(fk);
            } else {
                let col = self.column_def(&mut pk_names)?;
                schema.columns.push(col);
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(TokenKind::RParen)?;
        let names: Vec<&str> = pk_names.iter().map(|s| s.as_str()).collect();
        schema = schema.primary_key(&names);
        if schema.primary_key.len() != pk_names.len() {
            return Err(self.err("PRIMARY KEY names unknown column"));
        }
        Ok(Statement::CreateTable(schema))
    }

    fn foreign_key(&mut self, schema: &TableSchema) -> Result<ForeignKey> {
        let name = if self.eat_kw("CONSTRAINT") {
            self.identifier()?
        } else {
            format!("fk_{}_{}", schema.name, schema.foreign_keys.len())
        };
        self.expect_kw("FOREIGN")?;
        self.expect_kw("KEY")?;
        self.expect_kind(TokenKind::LParen)?;
        let mut columns = vec![self.identifier()?];
        while self.eat_kind(&TokenKind::Comma) {
            columns.push(self.identifier()?);
        }
        self.expect_kind(TokenKind::RParen)?;
        self.expect_kw("REFERENCES")?;
        let referenced_table = self.identifier()?;
        self.expect_kind(TokenKind::LParen)?;
        let mut referenced_columns = vec![self.identifier()?];
        while self.eat_kind(&TokenKind::Comma) {
            referenced_columns.push(self.identifier()?);
        }
        self.expect_kind(TokenKind::RParen)?;
        let mut on_delete = ReferentialAction::Restrict;
        if self.eat_kw("ON") {
            self.expect_kw("DELETE")?;
            if self.eat_kw("CASCADE") {
                on_delete = ReferentialAction::Cascade;
            } else if self.eat_kw("SET") {
                self.expect_kw("NULL")?;
                on_delete = ReferentialAction::SetNull;
            } else if self.eat_kw("RESTRICT") {
                on_delete = ReferentialAction::Restrict;
            } else {
                return Err(self.err("expected CASCADE, SET NULL or RESTRICT"));
            }
        }
        Ok(ForeignKey {
            name,
            columns,
            referenced_table,
            referenced_columns,
            on_delete,
        })
    }

    fn column_def(&mut self, pk_names: &mut Vec<String>) -> Result<Column> {
        let name = self.identifier()?;
        let type_name = self.identifier()?;
        let data_type = DataType::parse(&type_name)
            .ok_or_else(|| self.err(format!("unknown type {type_name}")))?;
        // optional (n) / (p, s) precision which we accept and ignore
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                match self.advance() {
                    TokenKind::Integer(_) => {}
                    other => return Err(self.err(format!("expected length, found {other:?}"))),
                }
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen)?;
        }
        let mut col = Column::new(name.clone(), data_type);
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                col.nullable = false;
            } else if self.eat_kw("NULL") {
                col.nullable = true;
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                pk_names.push(name.clone());
                col.nullable = false;
            } else if self.eat_kw("AUTOINCREMENT") || self.eat_kw("AUTO_INCREMENT") {
                col.auto_increment = true;
            } else if self.eat_kw("DEFAULT") {
                let e = self.primary_expr()?;
                match e {
                    Expr::Literal(v) => col.default = Some(v),
                    Expr::Unary {
                        op: UnaryOp::Neg,
                        expr,
                    } => match *expr {
                        Expr::Literal(Value::Integer(i)) => col.default = Some(Value::Integer(-i)),
                        Expr::Literal(Value::Real(r)) => col.default = Some(Value::Real(-r)),
                        _ => return Err(self.err("DEFAULT must be a literal")),
                    },
                    _ => return Err(self.err("DEFAULT must be a literal")),
                }
            } else {
                break;
            }
        }
        Ok(col)
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let e = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.peek().is_kw("NOT");
        if negated {
            // lookahead: NOT LIKE / NOT IN / NOT BETWEEN
            let next = self.tokens.get(self.pos + 1).map(|t| t.kind.clone());
            let follows = matches!(&next, Some(TokenKind::Ident(s))
                if s.eq_ignore_ascii_case("LIKE")
                    || s.eq_ignore_ascii_case("IN")
                    || s.eq_ignore_ascii_case("BETWEEN"));
            if follows {
                self.advance();
            } else {
                return Ok(left);
            }
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_kind(TokenKind::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_kind(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect_kind(TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(self.err("dangling NOT"));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            let e = self.unary()?;
            Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            })
        } else if self.eat_kind(&TokenKind::Plus) {
            self.unary()
        } else {
            self.primary_expr()
        }
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.advance() {
            TokenKind::Integer(i) => Ok(Expr::Literal(Value::Integer(i))),
            TokenKind::Real(r) => Ok(Expr::Literal(Value::Real(r))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Text(s))),
            TokenKind::Question => {
                let i = self.next_positional;
                self.next_positional += 1;
                Ok(Expr::Param(i))
            }
            TokenKind::NamedParam(n) => Ok(Expr::NamedParam(n)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect_kind(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if is_clause_keyword(&name) || is_join_keyword(&name) {
                    return Err(Error::Syntax {
                        message: format!("unexpected keyword {name} in expression"),
                        offset: self.tokens[self.pos.saturating_sub(1)].offset,
                    });
                }
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Boolean(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Boolean(false)));
                }
                if self.eat_kind(&TokenKind::LParen) {
                    // function call
                    if self.eat_kind(&TokenKind::Star) {
                        self.expect_kind(TokenKind::RParen)?;
                        return Ok(Expr::Function {
                            name: name.to_ascii_uppercase(),
                            args: Vec::new(),
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_kind(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_kind(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect_kind(TokenKind::RParen)?;
                    }
                    return Ok(Expr::Function {
                        name: name.to_ascii_uppercase(),
                        args,
                        star: false,
                    });
                }
                if self.eat_kind(&TokenKind::Dot) {
                    let col = self.identifier()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            TokenKind::QuotedIdent(name) => {
                if self.eat_kind(&TokenKind::Dot) {
                    let col = self.identifier()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "AND", "OR", "NOT",
        "UNION", "AS", "ASC", "DESC", "SET", "VALUES",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

fn is_join_keyword(s: &str) -> bool {
    const KW: &[&str] = &["JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS"];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_generated_unit_query() {
        // the style of query the WebML codegen produces for an index unit
        let s = parse_statement(
            "SELECT i.oid, i.number, i.year FROM issue i \
             WHERE i.volume_oid = :volume AND i.year >= 1990 \
             ORDER BY i.number DESC LIMIT 20 OFFSET 5",
        )
        .unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.items.len(), 3);
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].ascending);
        assert!(sel.limit.is_some() && sel.offset.is_some());
    }

    #[test]
    fn parses_join_chain() {
        let s = parse_statement(
            "SELECT v.title, p.title FROM volume v \
             INNER JOIN issue i ON i.volume_oid = v.oid \
             LEFT JOIN paper p ON p.issue_oid = i.oid",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let from = sel.from.unwrap();
        assert_eq!(from.joins.len(), 2);
        assert_eq!(from.joins[0].kind, JoinKind::Inner);
        assert_eq!(from.joins[1].kind, JoinKind::Left);
    }

    #[test]
    fn parses_insert_multiple_rows() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert(ins) = s else { panic!() };
        assert_eq!(ins.columns, vec!["a", "b"]);
        assert_eq!(ins.rows.len(), 2);
    }

    #[test]
    fn parses_update_and_delete() {
        let s = parse_statement("UPDATE t SET a = a + 1, b = ? WHERE oid = :id").unwrap();
        let Statement::Update(u) = s else { panic!() };
        assert_eq!(u.assignments.len(), 2);
        let s = parse_statement("DELETE FROM t WHERE oid IN (1, 2, 3)").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
    }

    #[test]
    fn parses_create_table_with_constraints() {
        let s = parse_statement(
            "CREATE TABLE paper (\
               oid INTEGER NOT NULL AUTOINCREMENT,\
               title VARCHAR(255) NOT NULL,\
               pages INTEGER DEFAULT 0,\
               issue_oid INTEGER,\
               PRIMARY KEY (oid),\
               CONSTRAINT fk_issue FOREIGN KEY (issue_oid) REFERENCES issue (oid) ON DELETE CASCADE)",
        )
        .unwrap();
        let Statement::CreateTable(t) = s else {
            panic!()
        };
        assert_eq!(t.columns.len(), 4);
        assert!(t.columns[0].auto_increment);
        assert_eq!(t.primary_key, vec![0]);
        assert_eq!(t.foreign_keys.len(), 1);
        assert_eq!(t.foreign_keys[0].on_delete, ReferentialAction::Cascade);
        assert_eq!(t.columns[2].default, Some(Value::Integer(0)));
    }

    #[test]
    fn create_table_round_trips_through_to_create_sql() {
        let sql = "CREATE TABLE t (a INTEGER NOT NULL, b TEXT, PRIMARY KEY (a))";
        let Statement::CreateTable(t) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let Statement::CreateTable(t2) = parse_statement(&t.to_create_sql()).unwrap() else {
            panic!()
        };
        assert_eq!(t, t2);
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let s = parse_statement(
            "SELECT issue_oid, COUNT(*) AS n, MAX(pages) FROM paper \
             GROUP BY issue_oid HAVING COUNT(*) > 2 ORDER BY n",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
    }

    #[test]
    fn positional_params_number_left_to_right() {
        let s = parse_statement("SELECT * FROM t WHERE a = ? AND b = ? AND c = ?").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.where_clause.unwrap().positional_param_count(), 3);
    }

    #[test]
    fn parses_like_in_between_not_variants() {
        for q in [
            "SELECT * FROM t WHERE a LIKE '%x%'",
            "SELECT * FROM t WHERE a NOT LIKE '%x%'",
            "SELECT * FROM t WHERE a IN (1,2)",
            "SELECT * FROM t WHERE a NOT IN (1,2)",
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2",
            "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2",
            "SELECT * FROM t WHERE a IS NULL",
            "SELECT * FROM t WHERE a IS NOT NULL",
        ] {
            parse_statement(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn parses_script() {
        let stmts = parse_script(
            "CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER);\nINSERT INTO a VALUES (1);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
    }

    #[test]
    fn parses_transaction_statements() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK;").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parses_distinct_and_wildcards() {
        let s = parse_statement("SELECT DISTINCT t.*, x FROM t").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.distinct);
        assert!(matches!(sel.items[0], SelectItem::QualifiedWildcard(_)));
    }

    #[test]
    fn parses_drop_table() {
        assert_eq!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                name: "t".into(),
                if_exists: true
            }
        );
    }

    #[test]
    fn concat_operator() {
        let s = parse_statement("SELECT first || ' ' || last FROM person").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::Concat,
                ..
            }
        ));
    }
}
