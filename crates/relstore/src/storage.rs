//! The mutable heart of the engine: the table map plus DML execution with
//! foreign-key enforcement and an undo log for transactions.

use crate::error::{Error, Result};
use crate::expr::{eval, Binding, EvalCtx, Params};
use crate::sql::ast::{Delete, Expr, Insert, Update};
use crate::table::{Row, RowId, Snapshot, Table, WriteCtx};
use crate::value::Value;
use std::collections::BTreeMap;

/// All tables of one database.
#[derive(Debug, Default, Clone)]
pub struct Storage {
    pub(crate) tables: BTreeMap<String, Table>,
}

/// One reversible mutation, recorded newest-last.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// A row was inserted: undo by deleting it.
    Inserted { table: String, row_id: RowId },
    /// A row was deleted: undo by re-inserting its values at its old slot.
    Deleted {
        table: String,
        row_id: RowId,
        row: Row,
    },
    /// A row was updated in place: undo by restoring the old values.
    Updated {
        table: String,
        row_id: RowId,
        old: Row,
    },
}

/// Undo log captured by a transaction; empty in autocommit mode.
pub type UndoLog = Vec<UndoOp>;

/// Coerce an FK probe key to the column types of `table` at `cols`.
/// `None` when a component cannot be coerced — the caller falls back to
/// the scan path, whose `sql_eq` rejects incomparable values itself.
fn coerce_key(table: &Table, cols: &[usize], key: &[Value]) -> Option<Vec<Value>> {
    let mut out = Vec::with_capacity(key.len());
    for (v, &c) in key.iter().zip(cols) {
        out.push(v.clone().coerce(table.schema.columns[c].data_type).ok()?);
    }
    Some(out)
}

impl Storage {
    pub fn require_table(&self, name: &str) -> Result<&Table> {
        // table names are case-insensitive
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    pub fn require_table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let key = table.schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::DuplicateTable(table.schema.name.clone()));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() && !if_exists {
            return Err(Error::UnknownTable(name.to_string()));
        }
        Ok(())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables
            .values()
            .map(|t| t.schema.name.clone())
            .collect()
    }

    // ---- foreign keys ----------------------------------------------------

    /// Check every FK of `table_name` against the given row values, from
    /// the writer's view `snap` (own uncommitted parents count).
    fn check_outgoing_fks(&self, table_name: &str, row: &Row, snap: Snapshot) -> Result<()> {
        let table = self.require_table(table_name)?;
        for fk in &table.schema.foreign_keys {
            let mut key = Vec::with_capacity(fk.columns.len());
            let mut any_null = false;
            for c in &fk.columns {
                let i = table.schema.require_column(c)?;
                if row[i].is_null() {
                    any_null = true;
                }
                key.push(row[i].clone());
            }
            if any_null {
                continue; // SQL semantics: NULL FK components opt out
            }
            let referenced = self.require_table(&fk.referenced_table)?;
            if !self.referenced_row_exists(referenced, &fk.referenced_columns, &key, snap)? {
                return Err(Error::ForeignKeyViolation {
                    table: table.schema.name.clone(),
                    constraint: fk.name.clone(),
                });
            }
        }
        Ok(())
    }

    fn referenced_row_exists(
        &self,
        referenced: &Table,
        ref_cols: &[String],
        key: &[Value],
        snap: Snapshot,
    ) -> Result<bool> {
        // fast path: the referenced columns are the primary key
        let pk_names = referenced.schema.primary_key_names();
        if pk_names.len() == ref_cols.len()
            && pk_names
                .iter()
                .zip(ref_cols)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
        {
            // coerce key components to the referenced column types so that
            // e.g. Integer/Text comparisons behave
            let mut coerced = Vec::with_capacity(key.len());
            for (v, c) in key.iter().zip(&referenced.schema.primary_key) {
                coerced.push(v.clone().coerce(referenced.schema.columns[*c].data_type)?);
            }
            return Ok(referenced.get_by_pk_visible(&coerced, snap).is_some());
        }
        let mut idxs = Vec::with_capacity(ref_cols.len());
        for c in ref_cols {
            idxs.push(referenced.schema.require_column(c)?);
        }
        // secondary-index path: an index whose columns are exactly the
        // referenced columns answers the existence probe directly (the
        // deploy-time derivation creates these for every role traversal)
        if let Some(ix) = referenced.find_index_on(&idxs) {
            if ix.columns.len() == idxs.len() {
                if let Some(coerced) = coerce_key(referenced, &idxs, key) {
                    return Ok(!referenced.probe_visible(ix, &coerced, snap).is_empty());
                }
            }
        }
        // slow path: scan
        Ok(referenced.iter_visible(snap).any(|(_, row)| {
            idxs.iter()
                .zip(key)
                .all(|(&i, v)| row[i].sql_eq(v) == Some(true))
        }))
    }

    /// Rows in other tables that reference `(table, row)` through some FK.
    /// Returns `(referencing_table, fk_index, row_ids)` triples.
    fn referencing_rows(
        &self,
        table_name: &str,
        row: &Row,
        snap: Snapshot,
    ) -> Result<Vec<(String, usize, Vec<RowId>)>> {
        let target = self.require_table(table_name)?;
        let mut out = Vec::new();
        for other in self.tables.values() {
            for (fk_i, fk) in other.schema.foreign_keys.iter().enumerate() {
                if !fk
                    .referenced_table
                    .eq_ignore_ascii_case(&target.schema.name)
                {
                    continue;
                }
                // the referenced values of this row
                let mut ref_vals = Vec::with_capacity(fk.referenced_columns.len());
                for c in &fk.referenced_columns {
                    let i = target.schema.require_column(c)?;
                    ref_vals.push(row[i].clone());
                }
                let mut col_idxs = Vec::with_capacity(fk.columns.len());
                for c in &fk.columns {
                    col_idxs.push(other.schema.require_column(c)?);
                }
                // index path: probe the FK columns instead of scanning the
                // referencing table (NULL components can never match, so
                // they are only valid on the scan path, which rejects them
                // through sql_eq)
                let by_index = if ref_vals.iter().any(|v| matches!(v, Value::Null)) {
                    None
                } else {
                    other
                        .find_index_on(&col_idxs)
                        .filter(|ix| ix.columns.len() == col_idxs.len())
                        .and_then(|ix| {
                            coerce_key(other, &col_idxs, &ref_vals).map(|key| {
                                let mut ids = other.probe_visible(ix, &key, snap);
                                ids.sort_unstable(); // match scan (slot) order
                                ids
                            })
                        })
                };
                let hits: Vec<RowId> = match by_index {
                    Some(ids) => ids,
                    None => other
                        .iter_visible(snap)
                        .filter(|(_, r)| {
                            col_idxs
                                .iter()
                                .zip(&ref_vals)
                                .all(|(&i, v)| r[i].sql_eq(v) == Some(true))
                        })
                        .map(|(id, _)| id)
                        .collect(),
                };
                if !hits.is_empty() {
                    out.push((other.schema.name.clone(), fk_i, hits));
                }
            }
        }
        Ok(out)
    }

    // ---- DML --------------------------------------------------------------

    /// Execute INSERT; returns number of rows inserted. New versions are
    /// txn-marked with `ctx.txid` until commit stamps them.
    pub fn run_insert(
        &mut self,
        ins: &Insert,
        params: &Params,
        undo: &mut UndoLog,
        ctx: &WriteCtx,
    ) -> Result<usize> {
        let snap = Snapshot::current(ctx.txid);
        let table = self.require_table(&ins.table)?;
        let schema = table.schema.clone();
        let n_cols = schema.columns.len();
        // map provided columns to schema positions
        let positions: Vec<usize> = if ins.columns.is_empty() {
            (0..n_cols).collect()
        } else {
            let mut v = Vec::with_capacity(ins.columns.len());
            for c in &ins.columns {
                v.push(schema.require_column(c)?);
            }
            v
        };
        let empty: [Binding<'_>; 0] = [];
        let eval_ctx = EvalCtx {
            bindings: &empty,
            params,
        };
        let mut count = 0;
        for row_exprs in &ins.rows {
            if row_exprs.len() != positions.len() {
                return Err(Error::Parameter(format!(
                    "INSERT supplies {} values for {} columns",
                    row_exprs.len(),
                    positions.len()
                )));
            }
            let mut row: Row = vec![Value::Null; n_cols];
            for (pos, e) in positions.iter().zip(row_exprs) {
                row[*pos] = eval(e, &eval_ctx)?;
            }
            let table = self.require_table_mut(&ins.table)?;
            let id = table.insert_version(row, ctx)?;
            let stored = table.latest_row(id).unwrap().clone();
            // FK check after defaults/auto-increment are applied
            if let Err(e) = self.check_outgoing_fks(&ins.table, &stored, snap) {
                self.require_table_mut(&ins.table)?
                    .rollback_insert(id, ctx.txid);
                return Err(e);
            }
            undo.push(UndoOp::Inserted {
                table: ins.table.to_ascii_lowercase(),
                row_id: id,
            });
            count += 1;
        }
        Ok(count)
    }

    /// Execute UPDATE; returns number of rows changed.
    pub fn run_update(
        &mut self,
        upd: &Update,
        params: &Params,
        undo: &mut UndoLog,
        ctx: &WriteCtx,
    ) -> Result<usize> {
        let snap = Snapshot::current(ctx.txid);
        let table = self.require_table(&upd.table)?;
        let schema = table.schema.clone();
        let binding_name = schema.name.clone();
        // resolve assignment targets
        let mut targets = Vec::with_capacity(upd.assignments.len());
        for (c, e) in &upd.assignments {
            targets.push((schema.require_column(c)?, e));
        }
        // select affected rows first (snapshot ids), then mutate
        let mut affected: Vec<(RowId, Row)> = Vec::new();
        for (id, row) in table.iter_visible(snap) {
            let keep = match &upd.where_clause {
                Some(w) => {
                    let bindings = [Binding {
                        name: &binding_name,
                        schema: &schema,
                        row: Some(row),
                    }];
                    let eval_ctx = EvalCtx {
                        bindings: &bindings,
                        params,
                    };
                    eval(w, &eval_ctx)?.is_truthy()
                }
                None => true,
            };
            if keep {
                affected.push((id, row.clone()));
            }
        }
        let mut count = 0;
        for (id, old_row) in affected {
            let mut new_row = old_row.clone();
            {
                let bindings = [Binding {
                    name: &binding_name,
                    schema: &schema,
                    row: Some(&old_row),
                }];
                let eval_ctx = EvalCtx {
                    bindings: &bindings,
                    params,
                };
                for (pos, e) in &targets {
                    new_row[*pos] = eval(e, &eval_ctx)?;
                }
            }
            // if the row's referenced-key columns change, enforce RESTRICT
            let pk_changed = schema
                .primary_key
                .iter()
                .any(|&i| old_row[i].sql_eq(&new_row[i]) != Some(true));
            if pk_changed
                && !self
                    .referencing_rows(&upd.table, &old_row, snap)?
                    .is_empty()
            {
                return Err(Error::ForeignKeyViolation {
                    table: upd.table.clone(),
                    constraint: "update of referenced key".into(),
                });
            }
            let table = self.require_table_mut(&upd.table)?;
            let old = table.update_version(id, new_row, ctx)?;
            let stored = table.latest_row(id).unwrap().clone();
            if let Err(e) = self.check_outgoing_fks(&upd.table, &stored, snap) {
                // restore: pop the uncommitted version we just installed
                self.require_table_mut(&upd.table)?
                    .rollback_update(id, ctx.txid);
                return Err(e);
            }
            undo.push(UndoOp::Updated {
                table: upd.table.to_ascii_lowercase(),
                row_id: id,
                old,
            });
            count += 1;
        }
        Ok(count)
    }

    /// Execute DELETE; returns number of rows removed (including cascades).
    pub fn run_delete(
        &mut self,
        del: &Delete,
        params: &Params,
        undo: &mut UndoLog,
        ctx: &WriteCtx,
    ) -> Result<usize> {
        let snap = Snapshot::current(ctx.txid);
        let table = self.require_table(&del.table)?;
        let schema = table.schema.clone();
        let binding_name = schema.name.clone();
        let mut victims: Vec<RowId> = Vec::new();
        for (id, row) in table.iter_visible(snap) {
            let keep = match &del.where_clause {
                Some(w) => {
                    let bindings = [Binding {
                        name: &binding_name,
                        schema: &schema,
                        row: Some(row),
                    }];
                    let eval_ctx = EvalCtx {
                        bindings: &bindings,
                        params,
                    };
                    eval(w, &eval_ctx)?.is_truthy()
                }
                None => true,
            };
            if keep {
                victims.push(id);
            }
        }
        let mut count = 0;
        for id in victims {
            count += self.delete_row(&del.table, id, undo, ctx)?;
        }
        Ok(count)
    }

    /// Delete one row honouring referential actions; counts cascaded rows.
    pub fn delete_row(
        &mut self,
        table_name: &str,
        id: RowId,
        undo: &mut UndoLog,
        ctx: &WriteCtx,
    ) -> Result<usize> {
        let snap = Snapshot::current(ctx.txid);
        let Some(row) = self
            .require_table(table_name)?
            .visible_row(id, snap)
            .cloned()
        else {
            return Ok(0); // already gone via an earlier cascade
        };
        let mut count = 0;
        let refs = self.referencing_rows(table_name, &row, snap)?;
        for (ref_table, fk_i, ids) in refs {
            let action = {
                let t = self.require_table(&ref_table)?;
                t.schema.foreign_keys[fk_i].on_delete
            };
            match action {
                crate::schema::ReferentialAction::Restrict => {
                    let t = self.require_table(&ref_table)?;
                    return Err(Error::ForeignKeyViolation {
                        table: ref_table.clone(),
                        constraint: t.schema.foreign_keys[fk_i].name.clone(),
                    });
                }
                crate::schema::ReferentialAction::Cascade => {
                    for rid in ids {
                        count += self.delete_row(&ref_table, rid, undo, ctx)?;
                    }
                }
                crate::schema::ReferentialAction::SetNull => {
                    let (cols, nullable_ok) = {
                        let t = self.require_table(&ref_table)?;
                        let fk = &t.schema.foreign_keys[fk_i];
                        let mut cols = Vec::new();
                        let mut ok = true;
                        for c in &fk.columns {
                            let i = t.schema.require_column(c)?;
                            if !t.schema.columns[i].nullable {
                                ok = false;
                            }
                            cols.push(i);
                        }
                        (cols, ok)
                    };
                    if !nullable_ok {
                        return Err(Error::ForeignKeyViolation {
                            table: ref_table.clone(),
                            constraint: "SET NULL on NOT NULL column".into(),
                        });
                    }
                    for rid in ids {
                        let t = self.require_table_mut(&ref_table)?;
                        if let Some(r) = t.visible_row(rid, snap).cloned() {
                            let mut new_r = r.clone();
                            for &c in &cols {
                                new_r[c] = Value::Null;
                            }
                            let old = t.update_version(rid, new_r, ctx)?;
                            undo.push(UndoOp::Updated {
                                table: ref_table.to_ascii_lowercase(),
                                row_id: rid,
                                old,
                            });
                        }
                    }
                }
            }
        }
        let t = self.require_table_mut(table_name)?;
        let old = t.delete_version(id, ctx)?;
        undo.push(UndoOp::Deleted {
            table: table_name.to_ascii_lowercase(),
            row_id: id,
            row: old,
        });
        count += 1;
        Ok(count)
    }

    // ---- commit / rollback / vacuum ---------------------------------------

    /// Replace `txid`'s uncommitted marks with the commit stamp and adjust
    /// the committed-row counts. Called under the write lock at commit.
    pub fn stamp_commit(&mut self, undo: &UndoLog, txid: u64, stamp: u64) {
        for op in undo {
            match op {
                UndoOp::Inserted { table, row_id } => {
                    if let Some(t) = self.tables.get_mut(table) {
                        t.stamp_chain(*row_id, txid, stamp);
                        t.adjust_live(1);
                    }
                }
                UndoOp::Updated { table, row_id, .. } => {
                    if let Some(t) = self.tables.get_mut(table) {
                        t.stamp_chain(*row_id, txid, stamp);
                    }
                }
                UndoOp::Deleted { table, row_id, .. } => {
                    if let Some(t) = self.tables.get_mut(table) {
                        t.stamp_chain(*row_id, txid, stamp);
                        t.adjust_live(-1);
                    }
                }
            }
        }
    }

    /// Apply an undo log in reverse, removing `txid`'s uncommitted
    /// versions and reviving the ones they superseded.
    pub fn rollback(&mut self, undo: UndoLog, txid: u64) {
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::Inserted { table, row_id } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.rollback_insert(row_id, txid);
                    }
                }
                UndoOp::Deleted { table, row_id, .. } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.rollback_delete(row_id, txid);
                    }
                }
                UndoOp::Updated { table, row_id, .. } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.rollback_update(row_id, txid);
                    }
                }
            }
        }
    }

    /// Reclaim versions no snapshot at or above `low_water` can see.
    /// Returns the number of versions reclaimed across all tables.
    pub fn vacuum(&mut self, low_water: u64) -> usize {
        self.tables.values_mut().map(|t| t.vacuum(low_water)).sum()
    }

    /// Total stored versions across all tables (the `db_versions_live`
    /// gauge).
    pub fn version_count(&self) -> usize {
        self.tables.values().map(|t| t.version_count()).sum()
    }

    /// Evaluate a constant expression (used by DDL paths needing literals).
    pub fn eval_const(&self, e: &Expr, params: &Params) -> Result<Value> {
        let empty: [Binding<'_>; 0] = [];
        eval(
            e,
            &EvalCtx {
                bindings: &empty,
                params,
            },
        )
    }
}
