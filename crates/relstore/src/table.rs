//! Row storage for one table, with primary-key and secondary indexes.
//!
//! Rows are **version chains** (MVCC): each slot holds the versions of one
//! logical row, oldest to newest, stamped with begin/end commit LSNs. A
//! [`Snapshot`] decides which version of each chain a reader sees, so
//! readers never block on writers. A `RowId` names a slot and is stable for
//! the lifetime of the chain, which lets indexes and the undo log refer to
//! rows cheaply. Index buckets list every chain in which *any* version
//! carries the key; probes re-check the visible version against the key.

use crate::error::{Error, Result};
use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Stable identifier of a row slot within one table.
pub type RowId = usize;

/// A stored row: one `Value` per column, in schema order.
pub type Row = Vec<Value>;

/// High bit of a stamp: set (and != [`LIVE`]) means "written by the
/// uncommitted transaction whose id is in the low bits".
pub const TXN_MARK: u64 = 1 << 63;

/// End stamp of a version that has not been superseded or deleted.
pub const LIVE: u64 = u64::MAX;

/// Transaction id used by the committed-immediate compatibility paths
/// (unit tests, recovery); never handed to a live session.
const IMMEDIATE_TXID: u64 = 1 << 62;

/// Is `stamp` an uncommitted-transaction mark? ([`LIVE`] also has the high
/// bit set, so it must be excluded first.)
pub fn is_txn_stamp(stamp: u64) -> bool {
    stamp != LIVE && stamp & TXN_MARK != 0
}

/// The transaction id carried by an uncommitted mark.
pub fn txn_of(stamp: u64) -> u64 {
    stamp & !TXN_MARK
}

/// One version of a logical row.
///
/// `begin` is the commit LSN that created it (or a txn mark while its
/// writer is uncommitted); `end` is the commit LSN that superseded or
/// deleted it, a txn mark for a pending overwrite/delete, or [`LIVE`].
#[derive(Debug, Clone)]
pub struct Version {
    pub begin: u64,
    pub end: u64,
    pub row: Row,
}

/// A read view: versions committed at or before `lsn`, plus the
/// uncommitted writes of transaction `txid` (0 = plain reader).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    pub lsn: u64,
    pub txid: u64,
}

impl Snapshot {
    /// Every committed version, no uncommitted ones. Commits happen under
    /// the write lock, so this is a consistent view for any reader that
    /// holds the read lock — no clock load needed.
    pub fn latest() -> Snapshot {
        Snapshot {
            lsn: TXN_MARK - 1,
            txid: 0,
        }
    }

    /// The writer's own view: latest committed plus its own uncommitted
    /// versions. Used by write paths and read-your-own-writes selects.
    pub fn current(txid: u64) -> Snapshot {
        Snapshot {
            lsn: TXN_MARK - 1,
            txid,
        }
    }

    /// A pinned snapshot: committed prefix up to `lsn`, plus own writes.
    pub fn at(lsn: u64, txid: u64) -> Snapshot {
        Snapshot { lsn, txid }
    }

    fn sees_stamp(&self, stamp: u64) -> bool {
        if is_txn_stamp(stamp) {
            self.txid != 0 && txn_of(stamp) == self.txid
        } else {
            stamp <= self.lsn
        }
    }

    /// Is this version the one a reader under this snapshot sees?
    pub fn visible(&self, v: &Version) -> bool {
        if !self.sees_stamp(v.begin) {
            return false;
        }
        v.end == LIVE || !self.sees_stamp(v.end)
    }
}

/// The identity a writer mutates under: its transaction id and the commit
/// LSN of the snapshot it read from (committed versions newer than that
/// are first-writer-wins conflicts).
#[derive(Debug, Clone, Copy)]
pub struct WriteCtx {
    pub txid: u64,
    pub snapshot_lsn: u64,
}

impl WriteCtx {
    /// A writer that reads the latest committed state (exclusive
    /// transactions and autocommit: the write lock is held, so no
    /// committed-after-snapshot conflict is possible).
    pub fn exclusive(txid: u64) -> WriteCtx {
        WriteCtx {
            txid,
            snapshot_lsn: TXN_MARK - 1,
        }
    }
}

/// A secondary index over one or more columns.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    /// Column positions in the table schema, in index order.
    pub columns: Vec<usize>,
    pub unique: bool,
    /// Ordered map from composite key to the chains holding it in any
    /// version. Probes must re-check the visible version's key.
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
}

impl Index {
    /// The composite key of `row` under this index.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    /// Chains in which some version's indexed columns equal `key`.
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys (used by the planner's cost heuristic).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    fn add(&mut self, key: Vec<Value>, id: RowId) {
        let bucket = self.map.entry(key).or_default();
        if !bucket.contains(&id) {
            bucket.push(id);
        }
    }

    fn remove(&mut self, key: &[Value], id: RowId) {
        if let Some(bucket) = self.map.get_mut(key) {
            bucket.retain(|&r| r != id);
            if bucket.is_empty() {
                self.map.remove(key);
            }
        }
    }
}

/// One table: schema + version-chain slots + indexes.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    /// Version chains, oldest to newest; an empty chain is a free slot.
    slots: Vec<Vec<Version>>,
    free: Vec<RowId>,
    /// Committed-current row count (what `len()` reports).
    live: usize,
    /// Total stored versions across all chains.
    versions: usize,
    /// Primary-key index (present iff the schema declares a PK).
    pk_index: Option<HashMap<Vec<Value>, Vec<RowId>>>,
    indexes: Vec<Index>,
    next_auto: i64,
}

impl Table {
    pub fn new(schema: TableSchema) -> Result<Table> {
        schema.validate()?;
        let pk_index = if schema.primary_key.is_empty() {
            None
        } else {
            Some(HashMap::new())
        };
        Ok(Table {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            versions: 0,
            pk_index,
            indexes: Vec::new(),
            next_auto: 1,
        })
    }

    /// Number of committed-current rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total versions stored (live + superseded + uncommitted).
    pub fn version_count(&self) -> usize {
        self.versions
    }

    /// The value the next auto-increment insert would receive.
    pub fn peek_auto(&self) -> i64 {
        self.next_auto
    }

    /// Iterate over `(RowId, &Row)` for all committed-current rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.iter_visible(Snapshot::latest())
    }

    /// Iterate over the rows visible under `snap`.
    pub fn iter_visible(&self, snap: Snapshot) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(id, chain)| {
                chain
                    .iter()
                    .rev()
                    .find(|v| snap.visible(v))
                    .map(|v| (id, &v.row))
            })
    }

    /// The version of chain `id` visible under `snap`, if any.
    pub fn visible_row(&self, id: RowId, snap: Snapshot) -> Option<&Row> {
        self.slots
            .get(id)?
            .iter()
            .rev()
            .find(|v| snap.visible(v))
            .map(|v| &v.row)
    }

    /// Fetch the committed-current row by id (None if deleted/out of range).
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.visible_row(id, Snapshot::latest())
    }

    /// The newest version's row regardless of visibility (redo derivation:
    /// at commit time the committer's own versions are still txn-marked).
    pub fn latest_row(&self, id: RowId) -> Option<&Row> {
        self.slots.get(id)?.last().map(|v| &v.row)
    }

    /// Exact-match lookup through the primary-key index (committed view).
    pub fn get_by_pk(&self, key: &[Value]) -> Option<(RowId, &Row)> {
        self.get_by_pk_visible(key, Snapshot::latest())
    }

    /// Exact-match PK lookup under `snap`, re-checking the visible
    /// version's key (buckets may list chains that only held the key in
    /// an old version).
    pub fn get_by_pk_visible(&self, key: &[Value], snap: Snapshot) -> Option<(RowId, &Row)> {
        let idx = self.pk_index.as_ref()?;
        for &id in idx.get(key)? {
            if let Some(r) = self.visible_row(id, snap) {
                if self.pk_key(r).as_deref() == Some(key) {
                    return Some((id, r));
                }
            }
        }
        None
    }

    /// Chains whose version visible under `snap` carries `key` in `ix`.
    pub fn probe_visible(&self, ix: &Index, key: &[Value], snap: Snapshot) -> Vec<RowId> {
        ix.lookup(key)
            .iter()
            .copied()
            .filter(|&id| {
                self.visible_row(id, snap)
                    .is_some_and(|r| ix.key_of(r).as_slice() == key)
            })
            .collect()
    }

    /// The secondary indexes of this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index whose leading columns are exactly `columns` (a prefix
    /// match is enough for an equality probe on the prefix).
    pub fn find_index_on(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.columns.len() >= columns.len() && ix.columns[..columns.len()] == *columns)
    }

    /// Create a secondary index and populate it from existing versions.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column_names: &[String],
        unique: bool,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(Error::DuplicateIndex(name));
        }
        let mut columns = Vec::with_capacity(column_names.len());
        for c in column_names {
            columns.push(self.schema.require_column(c)?);
        }
        let mut ix = Index {
            name,
            columns,
            unique,
            map: BTreeMap::new(),
        };
        if unique {
            let mut seen: BTreeMap<Vec<Value>, ()> = BTreeMap::new();
            for (_, row) in self.iter() {
                if seen.insert(ix.key_of(row), ()).is_some() {
                    return Err(Error::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: column_names.join(","),
                    });
                }
            }
        }
        for (id, chain) in self.slots.iter().enumerate() {
            for v in chain {
                ix.add(ix.key_of(&v.row), id);
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    fn pk_key(&self, row: &Row) -> Option<Vec<Value>> {
        if self.schema.primary_key.is_empty() {
            None
        } else {
            Some(
                self.schema
                    .primary_key
                    .iter()
                    .map(|&i| row[i].clone())
                    .collect(),
            )
        }
    }

    /// Validate NOT NULL + apply defaults + auto-increment. `row` must have
    /// one entry per column.
    fn prepare_row(&mut self, mut row: Row) -> Result<Row> {
        for (i, col) in self.schema.columns.iter().enumerate() {
            if row[i].is_null() {
                if col.auto_increment {
                    row[i] = Value::Integer(self.next_auto);
                    self.next_auto += 1;
                    continue;
                }
                if let Some(d) = &col.default {
                    row[i] = d.clone();
                }
            }
            if row[i].is_null() && !col.nullable {
                return Err(Error::NullViolation {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                });
            }
            if !row[i].is_null() {
                row[i] = std::mem::replace(&mut row[i], Value::Null).coerce(col.data_type)?;
            }
        }
        // keep the auto counter ahead of explicitly supplied keys
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.auto_increment {
                if let Value::Integer(v) = row[i] {
                    if v >= self.next_auto {
                        self.next_auto = v + 1;
                    }
                }
            }
        }
        Ok(row)
    }

    fn arity_check(&self, row: &Row) -> Result<()> {
        if row.len() != self.schema.columns.len() {
            return Err(Error::Parameter(format!(
                "row arity {} != {} columns of {}",
                row.len(),
                self.schema.columns.len(),
                self.schema.name
            )));
        }
        Ok(())
    }

    /// Scan a bucket of candidate chains for a key collision from `ctx`'s
    /// perspective: a row current to this writer with the same key is a
    /// [`Error::UniqueViolation`]; an uncommitted *foreign* version (insert
    /// or pending delete) with the key is a first-writer-wins
    /// [`Error::WriteConflict`].
    fn check_unique_bucket(
        &self,
        ids: &[RowId],
        key: &[Value],
        key_of: impl Fn(&Row) -> Option<Vec<Value>>,
        ctx: &WriteCtx,
        skip: Option<RowId>,
        label: &str,
    ) -> Result<()> {
        let me = Snapshot::current(ctx.txid);
        for &id in ids {
            if Some(id) == skip {
                continue;
            }
            let Some(newest) = self.slots.get(id).and_then(|c| c.last()) else {
                continue;
            };
            if let Some(r) = self.visible_row(id, me) {
                if key_of(r).as_deref() == Some(key) {
                    if newest.end != LIVE
                        && is_txn_stamp(newest.end)
                        && txn_of(newest.end) != ctx.txid
                    {
                        // a foreign txn is deleting it; if that rolls back
                        // our insert would collide — conflict, not dup
                        return Err(Error::WriteConflict {
                            table: self.schema.name.clone(),
                        });
                    }
                    return Err(Error::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: label.to_string(),
                    });
                }
            } else if is_txn_stamp(newest.begin)
                && txn_of(newest.begin) != ctx.txid
                && newest.end == LIVE
                && key_of(&newest.row).as_deref() == Some(key)
            {
                // invisible to us but a foreign uncommitted write holds the
                // key: committing both would violate uniqueness
                return Err(Error::WriteConflict {
                    table: self.schema.name.clone(),
                });
            }
        }
        Ok(())
    }

    fn check_insert_constraints(
        &self,
        row: &Row,
        ctx: &WriteCtx,
        skip: Option<RowId>,
    ) -> Result<()> {
        if let Some(key) = self.pk_key(row) {
            if key.iter().any(Value::is_null) {
                return Err(Error::NullViolation {
                    table: self.schema.name.clone(),
                    column: self.schema.primary_key_names().join(","),
                });
            }
            let ids: Vec<RowId> = self
                .pk_index
                .as_ref()
                .and_then(|m| m.get(&key))
                .cloned()
                .unwrap_or_default();
            self.check_unique_bucket(
                &ids,
                &key,
                |r| self.pk_key(r),
                ctx,
                skip,
                &self.schema.primary_key_names().join(","),
            )?;
        }
        for ix in &self.indexes {
            if ix.unique {
                let key = ix.key_of(row);
                let ids = ix.lookup(&key).to_vec();
                self.check_unique_bucket(&ids, &key, |r| Some(ix.key_of(r)), ctx, skip, &ix.name)?;
            }
        }
        Ok(())
    }

    /// Add chain `id`'s newest version to every index (dedup per bucket).
    fn index_add_newest(&mut self, id: RowId) {
        let row = match self.slots[id].last() {
            Some(v) => v.row.clone(),
            None => return,
        };
        if let Some(key) = self.pk_key(&row) {
            let bucket = self.pk_index.as_mut().unwrap().entry(key).or_default();
            if !bucket.contains(&id) {
                bucket.push(id);
            }
        }
        let keys: Vec<Vec<Value>> = self.indexes.iter().map(|ix| ix.key_of(&row)).collect();
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.add(key, id);
        }
    }

    /// Remove `id` from the buckets of `row`'s keys unconditionally (used
    /// when the whole chain is going away).
    fn index_remove_row(&mut self, id: RowId, row: &Row) {
        if let Some(key) = self.pk_key(row) {
            if let Some(idx) = self.pk_index.as_mut() {
                if let Some(bucket) = idx.get_mut(&key) {
                    bucket.retain(|&r| r != id);
                    if bucket.is_empty() {
                        idx.remove(&key);
                    }
                }
            }
        }
        let keys: Vec<Vec<Value>> = self.indexes.iter().map(|ix| ix.key_of(row)).collect();
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.remove(&key, id);
        }
    }

    /// After removing a version holding `row` from chain `id`, drop `id`
    /// from the buckets of keys no remaining version carries.
    fn index_remove_if_absent(&mut self, id: RowId, row: &Row) {
        if let Some(key) = self.pk_key(row) {
            let still = self.slots[id]
                .iter()
                .any(|v| self.pk_key(&v.row).as_ref() == Some(&key));
            if !still {
                if let Some(idx) = self.pk_index.as_mut() {
                    if let Some(bucket) = idx.get_mut(&key) {
                        bucket.retain(|&r| r != id);
                        if bucket.is_empty() {
                            idx.remove(&key);
                        }
                    }
                }
            }
        }
        let stale: Vec<(usize, Vec<Value>)> = self
            .indexes
            .iter()
            .enumerate()
            .filter_map(|(i, ix)| {
                let key = ix.key_of(row);
                let still = self.slots[id].iter().any(|v| ix.key_of(&v.row) == key);
                (!still).then_some((i, key))
            })
            .collect();
        for (i, key) in stale {
            self.indexes[i].remove(&key, id);
        }
    }

    // ---- MVCC write path -------------------------------------------------

    /// Install a new uncommitted row version. Visible only to `ctx.txid`
    /// until stamped by commit. Returns the chain id.
    pub fn insert_version(&mut self, row: Row, ctx: &WriteCtx) -> Result<RowId> {
        self.arity_check(&row)?;
        let row = self.prepare_row(row)?;
        self.check_insert_constraints(&row, ctx, None)?;
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.slots.push(Vec::new());
                self.slots.len() - 1
            }
        };
        self.slots[id].push(Version {
            begin: TXN_MARK | ctx.txid,
            end: LIVE,
            row,
        });
        self.versions += 1;
        self.index_add_newest(id);
        Ok(id)
    }

    /// First-writer-wins gate: may `ctx` overwrite or delete chain `id`?
    fn check_write_conflict(&self, id: RowId, ctx: &WriteCtx) -> Result<&Version> {
        let newest =
            self.slots.get(id).and_then(|c| c.last()).ok_or_else(|| {
                Error::Eval(format!("row {id} not found in {}", self.schema.name))
            })?;
        let conflict = || Error::WriteConflict {
            table: self.schema.name.clone(),
        };
        if newest.end == LIVE {
            if is_txn_stamp(newest.begin) {
                if txn_of(newest.begin) != ctx.txid {
                    return Err(conflict());
                }
            } else if newest.begin > ctx.snapshot_lsn {
                // committed after our snapshot: we lost the race
                return Err(conflict());
            }
        } else if is_txn_stamp(newest.end) {
            if txn_of(newest.end) == ctx.txid {
                return Err(Error::Eval(format!(
                    "row {id} already deleted in this transaction in {}",
                    self.schema.name
                )));
            }
            return Err(conflict());
        } else {
            // committed delete we did not see: conflict
            return Err(conflict());
        }
        Ok(newest)
    }

    /// Supersede chain `id`'s newest version with `new_row` as an
    /// uncommitted version of `ctx.txid`. Returns the superseded row.
    pub fn update_version(&mut self, id: RowId, new_row: Row, ctx: &WriteCtx) -> Result<Row> {
        self.arity_check(&new_row)?;
        let new_row = self.prepare_row(new_row)?;
        let old = self.check_write_conflict(id, ctx)?.row.clone();
        let key_changed = self.pk_key(&old) != self.pk_key(&new_row)
            || self
                .indexes
                .iter()
                .any(|ix| ix.unique && ix.key_of(&old) != ix.key_of(&new_row));
        if key_changed {
            self.check_insert_constraints(&new_row, ctx, Some(id))?;
        }
        let mark = TXN_MARK | ctx.txid;
        let chain = &mut self.slots[id];
        chain.last_mut().unwrap().end = mark;
        chain.push(Version {
            begin: mark,
            end: LIVE,
            row: new_row,
        });
        self.versions += 1;
        self.index_add_newest(id);
        Ok(old)
    }

    /// Mark chain `id`'s newest version as deleted by `ctx.txid`.
    /// Returns the deleted row.
    pub fn delete_version(&mut self, id: RowId, ctx: &WriteCtx) -> Result<Row> {
        let old = self.check_write_conflict(id, ctx)?.row.clone();
        self.slots[id].last_mut().unwrap().end = TXN_MARK | ctx.txid;
        Ok(old)
    }

    // ---- commit / rollback / vacuum -------------------------------------

    /// Replace `txid`'s marks in chain `id` with the commit stamp.
    /// Idempotent: a chain touched by several undo ops stamps once.
    pub(crate) fn stamp_chain(&mut self, id: RowId, txid: u64, stamp: u64) {
        let mark = TXN_MARK | txid;
        if let Some(chain) = self.slots.get_mut(id) {
            for v in chain {
                if v.begin == mark {
                    v.begin = stamp;
                }
                if v.end == mark {
                    v.end = stamp;
                }
            }
        }
    }

    /// Adjust the committed-current row count (commit stamping: +1 per
    /// Inserted undo op, -1 per Deleted).
    pub(crate) fn adjust_live(&mut self, delta: isize) {
        self.live = (self.live as isize + delta) as usize;
    }

    /// Undo an uncommitted insert: pop the chain's own newest version.
    pub(crate) fn rollback_insert(&mut self, id: RowId, txid: u64) {
        let mark = TXN_MARK | txid;
        let popped = match self.slots.get_mut(id) {
            Some(chain) if chain.last().map(|v| v.begin) == Some(mark) => chain.pop().unwrap(),
            _ => return,
        };
        self.versions -= 1;
        self.index_remove_if_absent(id, &popped.row);
        if self.slots[id].is_empty() {
            self.free.push(id);
        }
    }

    /// Undo an uncommitted overwrite: pop the own newest version and
    /// revive the superseded one.
    pub(crate) fn rollback_update(&mut self, id: RowId, txid: u64) {
        let mark = TXN_MARK | txid;
        let popped = match self.slots.get_mut(id) {
            Some(chain) if chain.last().map(|v| v.begin) == Some(mark) => chain.pop().unwrap(),
            _ => return,
        };
        self.versions -= 1;
        if let Some(prev) = self.slots[id].last_mut() {
            if prev.end == mark {
                prev.end = LIVE;
            }
        }
        self.index_remove_if_absent(id, &popped.row);
    }

    /// Undo an uncommitted delete: clear the own end mark.
    pub(crate) fn rollback_delete(&mut self, id: RowId, txid: u64) {
        let mark = TXN_MARK | txid;
        if let Some(v) = self.slots.get_mut(id).and_then(|c| c.last_mut()) {
            if v.end == mark {
                v.end = LIVE;
            }
        }
    }

    /// Reclaim versions whose committed end stamp is at or below
    /// `low_water` — no live snapshot can see them. Returns the number of
    /// versions reclaimed; emptied chains free their slot.
    pub fn vacuum(&mut self, low_water: u64) -> usize {
        let mut reclaimed = 0;
        for id in 0..self.slots.len() {
            if self.slots[id].is_empty() {
                continue;
            }
            let mut removed: Vec<Row> = Vec::new();
            self.slots[id].retain(|v| {
                let dead = v.end != LIVE && !is_txn_stamp(v.end) && v.end <= low_water;
                if dead {
                    removed.push(v.row.clone());
                }
                !dead
            });
            if removed.is_empty() {
                continue;
            }
            reclaimed += removed.len();
            self.versions -= removed.len();
            for row in &removed {
                self.index_remove_if_absent(id, row);
            }
            if self.slots[id].is_empty() {
                self.free.push(id);
            }
        }
        reclaimed
    }

    // ---- committed-immediate compatibility paths -------------------------

    /// Insert a row, committed immediately (unit tests, bulk loads; never
    /// interleaved with live snapshots). Returns its id.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        let ctx = WriteCtx::exclusive(IMMEDIATE_TXID);
        let id = self.insert_version(row, &ctx)?;
        self.stamp_chain(id, IMMEDIATE_TXID, 0);
        self.live += 1;
        Ok(id)
    }

    /// Physically place `row` at slot `id`, maintaining every index.
    ///
    /// This is the recovery/undo path: the row carries values that were
    /// already validated when it was first written, so constraints are
    /// **not** re-checked, defaults are not applied, and the slot is taken
    /// verbatim (overwriting any chain already there — which makes log
    /// replay idempotent). The auto-increment counter is bumped past any
    /// explicit key values, like [`Table::insert`] does.
    pub fn insert_at(&mut self, id: RowId, row: Row) -> Result<()> {
        self.arity_check(&row)?;
        if self.slots.len() <= id {
            self.slots.resize(id + 1, Vec::new());
        }
        if !self.slots[id].is_empty() {
            // drop the previous occupant from all indexes first
            self.delete(id);
        }
        // the slot is now vacant; make sure it is not also on the free list
        self.free.retain(|&f| f != id);
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.auto_increment {
                if let Value::Integer(v) = row[i] {
                    if v >= self.next_auto {
                        self.next_auto = v + 1;
                    }
                }
            }
        }
        self.slots[id].push(Version {
            begin: 0,
            end: LIVE,
            row,
        });
        self.versions += 1;
        self.index_add_newest(id);
        self.live += 1;
        Ok(())
    }

    /// Force the auto-increment counter (snapshot restore); never lowers it.
    pub fn set_next_auto(&mut self, v: i64) {
        if v > self.next_auto {
            self.next_auto = v;
        }
    }

    /// Physically remove a chain by id, returning its newest row (for the
    /// undo log / physical replay).
    pub fn delete(&mut self, id: RowId) -> Option<Row> {
        let chain = std::mem::take(self.slots.get_mut(id)?);
        if chain.is_empty() {
            return None;
        }
        let latest = Snapshot::latest();
        let had_current = chain.iter().any(|v| latest.visible(v));
        self.versions -= chain.len();
        for v in &chain {
            self.index_remove_row(id, &v.row);
        }
        self.free.push(id);
        if had_current {
            self.live -= 1;
        }
        chain.into_iter().next_back().map(|v| v.row)
    }

    /// Replace the committed-current row in place, maintaining all indexes
    /// (unit tests / single-version chains). Returns the old row.
    pub fn update(&mut self, id: RowId, new_row: Row) -> Result<Row> {
        if new_row.len() != self.schema.columns.len() {
            return Err(Error::Parameter("update arity mismatch".into()));
        }
        let new_row = self.prepare_row(new_row)?;
        let old = self
            .get(id)
            .cloned()
            .ok_or_else(|| Error::Eval(format!("row {id} not found in {}", self.schema.name)))?;
        // PK change: ensure uniqueness of the new key among current rows
        if let (Some(old_key), Some(new_key)) = (self.pk_key(&old), self.pk_key(&new_row)) {
            if old_key != new_key {
                if new_key.iter().any(Value::is_null) {
                    return Err(Error::NullViolation {
                        table: self.schema.name.clone(),
                        column: self.schema.primary_key_names().join(","),
                    });
                }
                if self
                    .get_by_pk(&new_key)
                    .is_some_and(|(other, _)| other != id)
                {
                    return Err(Error::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: self.schema.primary_key_names().join(","),
                    });
                }
            }
        }
        for ixpos in 0..self.indexes.len() {
            let old_key = self.indexes[ixpos].key_of(&old);
            let new_key = self.indexes[ixpos].key_of(&new_row);
            if old_key != new_key && self.indexes[ixpos].unique {
                let ids = self.indexes[ixpos].lookup(&new_key).to_vec();
                for other in ids {
                    if other != id
                        && self
                            .get(other)
                            .is_some_and(|r| self.indexes[ixpos].key_of(r) == new_key)
                    {
                        return Err(Error::UniqueViolation {
                            table: self.schema.name.clone(),
                            column: self.indexes[ixpos].name.clone(),
                        });
                    }
                }
            }
        }
        self.slots[id].last_mut().unwrap().row = new_row;
        self.index_add_newest(id);
        self.index_remove_if_absent(id, &old);
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            TableSchema::new("t")
                .column(Column::new("oid", DataType::Integer).not_null().auto())
                .column(Column::new("name", DataType::Text).not_null())
                .column(Column::new("score", DataType::Integer).with_default(Value::Integer(0)))
                .primary_key(&["oid"]),
        )
        .unwrap()
    }

    fn row(name: &str) -> Row {
        vec![Value::Null, Value::Text(name.into()), Value::Null]
    }

    #[test]
    fn auto_increment_assigns_sequential_keys() {
        let mut t = table();
        t.insert(row("a")).unwrap();
        t.insert(row("b")).unwrap();
        let (_, r) = t.get_by_pk(&[Value::Integer(2)]).unwrap();
        assert_eq!(r[1], Value::Text("b".into()));
    }

    #[test]
    fn default_applied_when_null() {
        let mut t = table();
        let id = t.insert(row("a")).unwrap();
        assert_eq!(t.get(id).unwrap()[2], Value::Integer(0));
    }

    #[test]
    fn explicit_pk_bumps_auto_counter() {
        let mut t = table();
        t.insert(vec![Value::Integer(10), "x".into(), Value::Null])
            .unwrap();
        let id = t.insert(row("y")).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Integer(11));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.insert(vec![Value::Integer(1), "x".into(), Value::Null])
            .unwrap();
        let err = t
            .insert(vec![Value::Integer(1), "y".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::NullViolation { .. }));
    }

    #[test]
    fn delete_frees_slot_and_index() {
        let mut t = table();
        let id = t.insert(row("a")).unwrap();
        assert_eq!(t.len(), 1);
        t.delete(id).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get_by_pk(&[Value::Integer(1)]).is_none());
        // slot is recycled
        let id2 = t.insert(row("b")).unwrap();
        assert_eq!(id, id2);
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        let a = t.insert(row("dup")).unwrap();
        let b = t.insert(row("dup")).unwrap();
        let ix = t.find_index_on(&[1]).unwrap();
        let hits = ix.lookup(&[Value::Text("dup".into())]);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&a) && hits.contains(&b));
        t.delete(a);
        let ix = t.find_index_on(&[1]).unwrap();
        assert_eq!(ix.lookup(&[Value::Text("dup".into())]), &[b]);
    }

    #[test]
    fn unique_index_rejected_on_duplicate() {
        let mut t = table();
        t.insert(row("a")).unwrap();
        t.insert(row("a")).unwrap();
        assert!(t.create_index("u", &["name".into()], true).is_err());
    }

    #[test]
    fn update_maintains_pk_and_secondary_indexes() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        let id = t.insert(row("old")).unwrap();
        t.update(id, vec![Value::Integer(1), "new".into(), Value::Integer(5)])
            .unwrap();
        let ix = t.find_index_on(&[1]).unwrap();
        assert!(ix.lookup(&[Value::Text("old".into())]).is_empty());
        assert_eq!(ix.lookup(&[Value::Text("new".into())]), &[id]);
    }

    #[test]
    fn update_pk_collision_rejected() {
        let mut t = table();
        t.insert(row("a")).unwrap();
        let b = t.insert(row("b")).unwrap();
        let err = t
            .update(b, vec![Value::Integer(1), "b".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
    }

    #[test]
    fn insert_at_places_row_and_maintains_indexes() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        // place a row physically at slot 5, leaving holes
        t.insert_at(5, vec![Value::Integer(9), "p".into(), Value::Integer(1)])
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_by_pk(&[Value::Integer(9)]).unwrap().0, 5);
        let ix = t.find_index_on(&[1]).unwrap();
        assert_eq!(ix.lookup(&[Value::Text("p".into())]), &[5]);
        // auto counter is bumped past the explicit key
        let id = t.insert(row("next")).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Integer(10));
        // re-applying the same physical insert is idempotent
        t.insert_at(5, vec![Value::Integer(9), "p".into(), Value::Integer(1)])
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(ix_len(&t), 2);
    }

    fn ix_len(t: &Table) -> usize {
        let ix = t.find_index_on(&[1]).unwrap();
        ix.lookup(&[Value::Text("p".into())]).len() + ix.lookup(&[Value::Text("next".into())]).len()
    }

    #[test]
    fn insert_at_reclaims_freed_slot() {
        let mut t = table();
        let a = t.insert(row("a")).unwrap();
        t.delete(a).unwrap();
        // restore physically (the rollback path)
        t.insert_at(a, vec![Value::Integer(1), "a".into(), Value::Integer(0)])
            .unwrap();
        assert_eq!(t.len(), 1);
        // the slot is no longer on the free list: a new insert appends
        let b = t.insert(row("b")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn coercion_happens_on_insert() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Null, "a".into(), Value::Text("7".into())])
            .unwrap();
        assert_eq!(t.get(id).unwrap()[2], Value::Integer(7));
    }

    // ---- MVCC visibility -------------------------------------------------

    #[test]
    fn uncommitted_insert_visible_only_to_its_writer() {
        let mut t = table();
        let ctx = WriteCtx::exclusive(7);
        let id = t.insert_version(row("mine"), &ctx).unwrap();
        // own view sees it; plain readers and other txns do not
        assert!(t.visible_row(id, Snapshot::current(7)).is_some());
        assert!(t.visible_row(id, Snapshot::latest()).is_none());
        assert!(t.visible_row(id, Snapshot::current(9)).is_none());
        assert_eq!(t.len(), 0);
        // stamping commits it for everyone
        t.stamp_chain(id, 7, 5);
        t.adjust_live(1);
        assert!(t.visible_row(id, Snapshot::latest()).is_some());
        assert!(
            t.visible_row(id, Snapshot::at(4, 0)).is_none(),
            "older snapshot"
        );
        assert!(t.visible_row(id, Snapshot::at(5, 0)).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pinned_snapshot_sees_superseded_version_until_vacuum() {
        let mut t = table();
        let id = t.insert(row("v1")).unwrap(); // committed at stamp 0
        let ctx = WriteCtx::exclusive(3);
        t.update_version(id, vec![Value::Integer(1), "v2".into(), Value::Null], &ctx)
            .unwrap();
        t.stamp_chain(id, 3, 10);
        // a snapshot pinned before the update still reads v1
        assert_eq!(
            t.visible_row(id, Snapshot::at(5, 0)).unwrap()[1],
            Value::Text("v1".into())
        );
        assert_eq!(
            t.visible_row(id, Snapshot::latest()).unwrap()[1],
            Value::Text("v2".into())
        );
        // vacuum below the old version's end keeps it; at/above reclaims
        assert_eq!(t.vacuum(9), 0);
        assert_eq!(t.version_count(), 2);
        assert_eq!(t.vacuum(10), 1);
        assert_eq!(t.version_count(), 1);
        assert_eq!(
            t.visible_row(id, Snapshot::latest()).unwrap()[1],
            Value::Text("v2".into())
        );
    }

    #[test]
    fn foreign_uncommitted_write_is_a_conflict() {
        let mut t = table();
        let id = t.insert(row("base")).unwrap();
        let first = WriteCtx::exclusive(1);
        t.update_version(
            id,
            vec![Value::Integer(1), "w1".into(), Value::Null],
            &first,
        )
        .unwrap();
        // second writer loses: first-writer-wins
        let second = WriteCtx::exclusive(2);
        let err = t
            .update_version(
                id,
                vec![Value::Integer(1), "w2".into(), Value::Null],
                &second,
            )
            .unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }), "{err}");
        let err = t.delete_version(id, &second).unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
        // rollback of the first writer clears the way
        t.rollback_update(id, 1);
        t.update_version(
            id,
            vec![Value::Integer(1), "w2".into(), Value::Null],
            &second,
        )
        .unwrap();
        t.stamp_chain(id, 2, 4);
        assert_eq!(t.get(id).unwrap()[1], Value::Text("w2".into()));
    }

    #[test]
    fn committed_after_snapshot_is_a_conflict() {
        let mut t = table();
        let id = t.insert(row("base")).unwrap();
        let w = WriteCtx::exclusive(1);
        t.update_version(id, vec![Value::Integer(1), "new".into(), Value::Null], &w)
            .unwrap();
        t.stamp_chain(id, 1, 8);
        // a txn whose snapshot predates stamp 8 must not overwrite blindly
        let stale = WriteCtx {
            txid: 2,
            snapshot_lsn: 5,
        };
        let err = t
            .update_version(id, vec![Value::Integer(1), "x".into(), Value::Null], &stale)
            .unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }));
    }

    #[test]
    fn index_probe_respects_visibility() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        let id = t.insert(row("old")).unwrap();
        let ctx = WriteCtx::exclusive(4);
        t.update_version(id, vec![Value::Integer(1), "new".into(), Value::Null], &ctx)
            .unwrap();
        let ix = t.find_index_on(&[1]).unwrap();
        let old_key = [Value::Text("old".into())];
        let new_key = [Value::Text("new".into())];
        // the bucket lists the chain under both keys; probes filter
        assert_eq!(t.probe_visible(ix, &old_key, Snapshot::latest()), vec![id]);
        assert!(t.probe_visible(ix, &new_key, Snapshot::latest()).is_empty());
        assert_eq!(
            t.probe_visible(ix, &new_key, Snapshot::current(4)),
            vec![id]
        );
        assert!(t
            .probe_visible(ix, &old_key, Snapshot::current(4))
            .is_empty());
    }

    #[test]
    fn rollback_of_insert_frees_slot_and_indexes() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        let ctx = WriteCtx::exclusive(6);
        let id = t.insert_version(row("ghost"), &ctx).unwrap();
        t.rollback_insert(id, 6);
        assert_eq!(t.version_count(), 0);
        let ix = t.find_index_on(&[1]).unwrap();
        assert!(ix.lookup(&[Value::Text("ghost".into())]).is_empty());
        // the slot is recycled
        let id2 = t.insert(row("solid")).unwrap();
        assert_eq!(id, id2);
    }

    #[test]
    fn uncommitted_duplicate_pk_from_foreign_txn_conflicts() {
        let mut t = table();
        let a = WriteCtx::exclusive(1);
        t.insert_version(vec![Value::Integer(5), "a".into(), Value::Null], &a)
            .unwrap();
        // another txn inserting the same PK: conflict, not unique violation
        let b = WriteCtx::exclusive(2);
        let err = t
            .insert_version(vec![Value::Integer(5), "b".into(), Value::Null], &b)
            .unwrap_err();
        assert!(matches!(err, Error::WriteConflict { .. }), "{err}");
        // the same txn re-inserting its own key is a plain unique violation
        let err = t
            .insert_version(vec![Value::Integer(5), "b".into(), Value::Null], &a)
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }), "{err}");
    }
}
