//! Row storage for one table, with primary-key and secondary indexes.
//!
//! Rows live in a slot vector; deleted slots are tombstoned and recycled.
//! A `RowId` names a slot and is stable for the lifetime of the row, which
//! lets indexes and the undo log refer to rows cheaply.

use crate::error::{Error, Result};
use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Stable identifier of a row slot within one table.
pub type RowId = usize;

/// A stored row: one `Value` per column, in schema order.
pub type Row = Vec<Value>;

/// A secondary index over one or more columns.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    /// Column positions in the table schema, in index order.
    pub columns: Vec<usize>,
    pub unique: bool,
    /// Ordered map from composite key to the rows holding it.
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
}

impl Index {
    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    /// Row ids whose indexed columns equal `key` exactly.
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys (used by the planner's cost heuristic).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// One table: schema + slots + indexes.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    slots: Vec<Option<Row>>,
    free: Vec<RowId>,
    live: usize,
    /// Primary-key index (present iff the schema declares a PK).
    pk_index: Option<HashMap<Vec<Value>, RowId>>,
    indexes: Vec<Index>,
    next_auto: i64,
}

impl Table {
    pub fn new(schema: TableSchema) -> Result<Table> {
        schema.validate()?;
        let pk_index = if schema.primary_key.is_empty() {
            None
        } else {
            Some(HashMap::new())
        };
        Ok(Table {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            pk_index,
            indexes: Vec::new(),
            next_auto: 1,
        })
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The value the next auto-increment insert would receive.
    pub fn peek_auto(&self) -> i64 {
        self.next_auto
    }

    /// Iterate over `(RowId, &Row)` for all live rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|r| (id, r)))
    }

    /// Fetch a row by id (None if deleted or out of range).
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slots.get(id).and_then(|s| s.as_ref())
    }

    /// Exact-match lookup through the primary-key index.
    pub fn get_by_pk(&self, key: &[Value]) -> Option<(RowId, &Row)> {
        let idx = self.pk_index.as_ref()?;
        let id = *idx.get(key)?;
        self.get(id).map(|r| (id, r))
    }

    /// The secondary indexes of this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index whose leading columns are exactly `columns` (a prefix
    /// match is enough for an equality probe on the prefix).
    pub fn find_index_on(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.columns.len() >= columns.len() && ix.columns[..columns.len()] == *columns)
    }

    /// Create a secondary index and populate it from existing rows.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column_names: &[String],
        unique: bool,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(Error::DuplicateIndex(name));
        }
        let mut columns = Vec::with_capacity(column_names.len());
        for c in column_names {
            columns.push(self.schema.require_column(c)?);
        }
        let mut ix = Index {
            name,
            columns,
            unique,
            map: BTreeMap::new(),
        };
        for (id, row) in self.slots.iter().enumerate() {
            if let Some(row) = row {
                let key = ix.key_of(row);
                let bucket = ix.map.entry(key).or_default();
                if unique && !bucket.is_empty() {
                    return Err(Error::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: column_names.join(","),
                    });
                }
                bucket.push(id);
            }
        }
        self.indexes.push(ix);
        Ok(())
    }

    fn pk_key(&self, row: &Row) -> Option<Vec<Value>> {
        if self.schema.primary_key.is_empty() {
            None
        } else {
            Some(
                self.schema
                    .primary_key
                    .iter()
                    .map(|&i| row[i].clone())
                    .collect(),
            )
        }
    }

    /// Validate NOT NULL + apply defaults + auto-increment. `row` must have
    /// one entry per column.
    fn prepare_row(&mut self, mut row: Row) -> Result<Row> {
        for (i, col) in self.schema.columns.iter().enumerate() {
            if row[i].is_null() {
                if col.auto_increment {
                    row[i] = Value::Integer(self.next_auto);
                    self.next_auto += 1;
                    continue;
                }
                if let Some(d) = &col.default {
                    row[i] = d.clone();
                }
            }
            if row[i].is_null() && !col.nullable {
                return Err(Error::NullViolation {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                });
            }
            if !row[i].is_null() {
                row[i] = std::mem::replace(&mut row[i], Value::Null).coerce(col.data_type)?;
            }
        }
        // keep the auto counter ahead of explicitly supplied keys
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.auto_increment {
                if let Value::Integer(v) = row[i] {
                    if v >= self.next_auto {
                        self.next_auto = v + 1;
                    }
                }
            }
        }
        Ok(row)
    }

    /// Insert a prepared row. Returns its id.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        if row.len() != self.schema.columns.len() {
            return Err(Error::Parameter(format!(
                "row arity {} != {} columns of {}",
                row.len(),
                self.schema.columns.len(),
                self.schema.name
            )));
        }
        let row = self.prepare_row(row)?;
        if let Some(key) = self.pk_key(&row) {
            if key.iter().any(Value::is_null) {
                return Err(Error::NullViolation {
                    table: self.schema.name.clone(),
                    column: self.schema.primary_key_names().join(","),
                });
            }
            if self.pk_index.as_ref().unwrap().contains_key(&key) {
                return Err(Error::UniqueViolation {
                    table: self.schema.name.clone(),
                    column: self.schema.primary_key_names().join(","),
                });
            }
        }
        for ix in &self.indexes {
            if ix.unique {
                let key = ix.key_of(&row);
                if !ix.lookup(&key).is_empty() {
                    return Err(Error::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: ix.name.clone(),
                    });
                }
            }
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id] = Some(row);
                id
            }
            None => {
                self.slots.push(Some(row));
                self.slots.len() - 1
            }
        };
        let row_ref = self.slots[id].as_ref().unwrap();
        if let Some(key) = self.pk_key(row_ref) {
            self.pk_index.as_mut().unwrap().insert(key, id);
        }
        let keys: Vec<Vec<Value>> = self
            .indexes
            .iter()
            .map(|ix| ix.key_of(self.slots[id].as_ref().unwrap()))
            .collect();
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.map.entry(key).or_default().push(id);
        }
        self.live += 1;
        Ok(id)
    }

    /// Physically place `row` at slot `id`, maintaining every index.
    ///
    /// This is the recovery/undo path: the row carries values that were
    /// already validated when it was first written, so constraints are
    /// **not** re-checked, defaults are not applied, and the slot is taken
    /// verbatim (overwriting any row already there — which makes log
    /// replay idempotent). The auto-increment counter is bumped past any
    /// explicit key values, like [`Table::insert`] does.
    pub fn insert_at(&mut self, id: RowId, row: Row) -> Result<()> {
        if row.len() != self.schema.columns.len() {
            return Err(Error::Parameter(format!(
                "row arity {} != {} columns of {}",
                row.len(),
                self.schema.columns.len(),
                self.schema.name
            )));
        }
        if self.slots.len() <= id {
            self.slots.resize(id + 1, None);
        }
        if self.slots[id].is_some() {
            // drop the previous occupant from all indexes first
            self.delete(id);
        }
        // the slot is now vacant; make sure it is not also on the free list
        self.free.retain(|&f| f != id);
        for (i, col) in self.schema.columns.iter().enumerate() {
            if col.auto_increment {
                if let Value::Integer(v) = row[i] {
                    if v >= self.next_auto {
                        self.next_auto = v + 1;
                    }
                }
            }
        }
        self.slots[id] = Some(row);
        let row_ref = self.slots[id].as_ref().unwrap();
        if let Some(key) = self.pk_key(row_ref) {
            self.pk_index.as_mut().unwrap().insert(key, id);
        }
        let keys: Vec<Vec<Value>> = self
            .indexes
            .iter()
            .map(|ix| ix.key_of(self.slots[id].as_ref().unwrap()))
            .collect();
        for (ix, key) in self.indexes.iter_mut().zip(keys) {
            ix.map.entry(key).or_default().push(id);
        }
        self.live += 1;
        Ok(())
    }

    /// Force the auto-increment counter (snapshot restore); never lowers it.
    pub fn set_next_auto(&mut self, v: i64) {
        if v > self.next_auto {
            self.next_auto = v;
        }
    }

    /// Remove a row by id, returning it (for the undo log).
    pub fn delete(&mut self, id: RowId) -> Option<Row> {
        let row = self.slots.get_mut(id)?.take()?;
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.as_mut().unwrap().remove(&key);
        }
        for ix in &mut self.indexes {
            let key: Vec<Value> = ix.columns.iter().map(|&c| row[c].clone()).collect();
            if let Some(bucket) = ix.map.get_mut(&key) {
                bucket.retain(|&r| r != id);
                if bucket.is_empty() {
                    ix.map.remove(&key);
                }
            }
        }
        self.free.push(id);
        self.live -= 1;
        Some(row)
    }

    /// Replace a row in place, maintaining all indexes. Returns the old row.
    pub fn update(&mut self, id: RowId, new_row: Row) -> Result<Row> {
        if new_row.len() != self.schema.columns.len() {
            return Err(Error::Parameter("update arity mismatch".into()));
        }
        let new_row = self.prepare_row(new_row)?;
        let old = self
            .get(id)
            .cloned()
            .ok_or_else(|| Error::Eval(format!("row {id} not found in {}", self.schema.name)))?;
        // PK change: ensure uniqueness of the new key
        if let (Some(old_key), Some(new_key)) = (self.pk_key(&old), self.pk_key(&new_row)) {
            if old_key != new_key {
                if new_key.iter().any(Value::is_null) {
                    return Err(Error::NullViolation {
                        table: self.schema.name.clone(),
                        column: self.schema.primary_key_names().join(","),
                    });
                }
                if self.pk_index.as_ref().unwrap().contains_key(&new_key) {
                    return Err(Error::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: self.schema.primary_key_names().join(","),
                    });
                }
                let idx = self.pk_index.as_mut().unwrap();
                idx.remove(&old_key);
                idx.insert(new_key, id);
            }
        }
        for ixpos in 0..self.indexes.len() {
            let old_key: Vec<Value> = self.indexes[ixpos]
                .columns
                .iter()
                .map(|&c| old[c].clone())
                .collect();
            let new_key: Vec<Value> = self.indexes[ixpos]
                .columns
                .iter()
                .map(|&c| new_row[c].clone())
                .collect();
            if old_key != new_key {
                if self.indexes[ixpos].unique && !self.indexes[ixpos].lookup(&new_key).is_empty() {
                    return Err(Error::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: self.indexes[ixpos].name.clone(),
                    });
                }
                let ix = &mut self.indexes[ixpos];
                if let Some(bucket) = ix.map.get_mut(&old_key) {
                    bucket.retain(|&r| r != id);
                    if bucket.is_empty() {
                        ix.map.remove(&old_key);
                    }
                }
                ix.map.entry(new_key).or_default().push(id);
            }
        }
        self.slots[id] = Some(new_row);
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            TableSchema::new("t")
                .column(Column::new("oid", DataType::Integer).not_null().auto())
                .column(Column::new("name", DataType::Text).not_null())
                .column(Column::new("score", DataType::Integer).with_default(Value::Integer(0)))
                .primary_key(&["oid"]),
        )
        .unwrap()
    }

    fn row(name: &str) -> Row {
        vec![Value::Null, Value::Text(name.into()), Value::Null]
    }

    #[test]
    fn auto_increment_assigns_sequential_keys() {
        let mut t = table();
        t.insert(row("a")).unwrap();
        t.insert(row("b")).unwrap();
        let (_, r) = t.get_by_pk(&[Value::Integer(2)]).unwrap();
        assert_eq!(r[1], Value::Text("b".into()));
    }

    #[test]
    fn default_applied_when_null() {
        let mut t = table();
        let id = t.insert(row("a")).unwrap();
        assert_eq!(t.get(id).unwrap()[2], Value::Integer(0));
    }

    #[test]
    fn explicit_pk_bumps_auto_counter() {
        let mut t = table();
        t.insert(vec![Value::Integer(10), "x".into(), Value::Null])
            .unwrap();
        let id = t.insert(row("y")).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Integer(11));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.insert(vec![Value::Integer(1), "x".into(), Value::Null])
            .unwrap();
        let err = t
            .insert(vec![Value::Integer(1), "y".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table();
        let err = t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::NullViolation { .. }));
    }

    #[test]
    fn delete_frees_slot_and_index() {
        let mut t = table();
        let id = t.insert(row("a")).unwrap();
        assert_eq!(t.len(), 1);
        t.delete(id).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get_by_pk(&[Value::Integer(1)]).is_none());
        // slot is recycled
        let id2 = t.insert(row("b")).unwrap();
        assert_eq!(id, id2);
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        let a = t.insert(row("dup")).unwrap();
        let b = t.insert(row("dup")).unwrap();
        let ix = t.find_index_on(&[1]).unwrap();
        let hits = ix.lookup(&[Value::Text("dup".into())]);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&a) && hits.contains(&b));
        t.delete(a);
        let ix = t.find_index_on(&[1]).unwrap();
        assert_eq!(ix.lookup(&[Value::Text("dup".into())]), &[b]);
    }

    #[test]
    fn unique_index_rejected_on_duplicate() {
        let mut t = table();
        t.insert(row("a")).unwrap();
        t.insert(row("a")).unwrap();
        assert!(t.create_index("u", &["name".into()], true).is_err());
    }

    #[test]
    fn update_maintains_pk_and_secondary_indexes() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        let id = t.insert(row("old")).unwrap();
        t.update(id, vec![Value::Integer(1), "new".into(), Value::Integer(5)])
            .unwrap();
        let ix = t.find_index_on(&[1]).unwrap();
        assert!(ix.lookup(&[Value::Text("old".into())]).is_empty());
        assert_eq!(ix.lookup(&[Value::Text("new".into())]), &[id]);
    }

    #[test]
    fn update_pk_collision_rejected() {
        let mut t = table();
        t.insert(row("a")).unwrap();
        let b = t.insert(row("b")).unwrap();
        let err = t
            .update(b, vec![Value::Integer(1), "b".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
    }

    #[test]
    fn insert_at_places_row_and_maintains_indexes() {
        let mut t = table();
        t.create_index("ix_name", &["name".into()], false).unwrap();
        // place a row physically at slot 5, leaving holes
        t.insert_at(5, vec![Value::Integer(9), "p".into(), Value::Integer(1)])
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_by_pk(&[Value::Integer(9)]).unwrap().0, 5);
        let ix = t.find_index_on(&[1]).unwrap();
        assert_eq!(ix.lookup(&[Value::Text("p".into())]), &[5]);
        // auto counter is bumped past the explicit key
        let id = t.insert(row("next")).unwrap();
        assert_eq!(t.get(id).unwrap()[0], Value::Integer(10));
        // re-applying the same physical insert is idempotent
        t.insert_at(5, vec![Value::Integer(9), "p".into(), Value::Integer(1)])
            .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(ix_len(&t), 2);
    }

    fn ix_len(t: &Table) -> usize {
        let ix = t.find_index_on(&[1]).unwrap();
        ix.lookup(&[Value::Text("p".into())]).len() + ix.lookup(&[Value::Text("next".into())]).len()
    }

    #[test]
    fn insert_at_reclaims_freed_slot() {
        let mut t = table();
        let a = t.insert(row("a")).unwrap();
        t.delete(a).unwrap();
        // restore physically (the rollback path)
        t.insert_at(a, vec![Value::Integer(1), "a".into(), Value::Integer(0)])
            .unwrap();
        assert_eq!(t.len(), 1);
        // the slot is no longer on the free list: a new insert appends
        let b = t.insert(row("b")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn coercion_happens_on_insert() {
        let mut t = table();
        let id = t
            .insert(vec![Value::Null, "a".into(), Value::Text("7".into())])
            .unwrap();
        assert_eq!(t.get(id).unwrap()[2], Value::Integer(7));
    }
}
