//! The dynamic value system: column types and runtime values.
//!
//! The engine is dynamically typed at the storage layer (every cell is a
//! [`Value`]) but statically checked against the declared [`DataType`] of a
//! column when rows are written.

use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INTEGER`).
    Integer,
    /// 64-bit IEEE float (`REAL`).
    Real,
    /// UTF-8 string (`TEXT` / `VARCHAR`).
    Text,
    /// Boolean (`BOOLEAN`).
    Boolean,
    /// Milliseconds since the Unix epoch (`TIMESTAMP`).
    Timestamp,
    /// Raw bytes (`BLOB`) — used for marshalled beans.
    Blob,
}

impl DataType {
    /// SQL spelling used by the DDL generator.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Real => "REAL",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
            DataType::Timestamp => "TIMESTAMP",
            DataType::Blob => "BLOB",
        }
    }

    /// Parse a SQL type name (case-insensitive, with common synonyms).
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => Some(DataType::Integer),
            "REAL" | "FLOAT" | "DOUBLE" | "DECIMAL" | "NUMERIC" => Some(DataType::Real),
            "TEXT" | "VARCHAR" | "CHAR" | "CLOB" | "STRING" => Some(DataType::Text),
            "BOOLEAN" | "BOOL" => Some(DataType::Boolean),
            "TIMESTAMP" | "DATETIME" | "DATE" => Some(DataType::Timestamp),
            "BLOB" | "BINARY" | "VARBINARY" => Some(DataType::Blob),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A runtime value stored in a cell or produced by an expression.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Integer(i64),
    Real(f64),
    Text(String),
    Boolean(bool),
    /// Milliseconds since the Unix epoch.
    Timestamp(i64),
    Blob(Vec<u8>),
}

impl Value {
    /// `true` iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(DataType::Integer),
            Value::Real(_) => Some(DataType::Real),
            Value::Text(_) => Some(DataType::Text),
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Blob(_) => Some(DataType::Blob),
        }
    }

    /// Coerce this value to the given column type, or fail with
    /// [`Error::TypeMismatch`]. `Null` coerces to any type.
    ///
    /// Coercions mirror what a JDBC driver would do for generated queries:
    /// integers widen to reals, integers/reals/booleans render to text,
    /// numeric strings parse to numbers, integers serve as timestamps.
    pub fn coerce(self, target: DataType) -> Result<Value> {
        let mismatch = |got: &Value| Error::TypeMismatch {
            expected: target.sql_name().to_string(),
            got: got
                .data_type()
                .map(|t| t.sql_name().to_string())
                .unwrap_or_else(|| "NULL".to_string()),
        };
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (v @ Value::Integer(_), DataType::Integer) => Ok(v),
            (Value::Integer(i), DataType::Real) => Ok(Value::Real(i as f64)),
            (Value::Integer(i), DataType::Timestamp) => Ok(Value::Timestamp(i)),
            (Value::Integer(i), DataType::Text) => Ok(Value::Text(i.to_string())),
            (Value::Integer(i), DataType::Boolean) => Ok(Value::Boolean(i != 0)),
            (v @ Value::Real(_), DataType::Real) => Ok(v),
            (Value::Real(r), DataType::Integer) if r.fract() == 0.0 => Ok(Value::Integer(r as i64)),
            (Value::Real(r), DataType::Text) => Ok(Value::Text(format_real(r))),
            (v @ Value::Text(_), DataType::Text) => Ok(v),
            (Value::Text(s), DataType::Integer) => s
                .trim()
                .parse::<i64>()
                .map(Value::Integer)
                .map_err(|_| mismatch(&Value::Text(s))),
            (Value::Text(s), DataType::Real) => s
                .trim()
                .parse::<f64>()
                .map(Value::Real)
                .map_err(|_| mismatch(&Value::Text(s))),
            (Value::Text(s), DataType::Boolean) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" | "yes" => Ok(Value::Boolean(true)),
                "false" | "f" | "0" | "no" => Ok(Value::Boolean(false)),
                _ => Err(mismatch(&Value::Text(s))),
            },
            (Value::Text(s), DataType::Timestamp) => s
                .trim()
                .parse::<i64>()
                .map(Value::Timestamp)
                .map_err(|_| mismatch(&Value::Text(s))),
            (v @ Value::Boolean(_), DataType::Boolean) => Ok(v),
            (Value::Boolean(b), DataType::Integer) => Ok(Value::Integer(b as i64)),
            (Value::Boolean(b), DataType::Text) => Ok(Value::Text(b.to_string())),
            (v @ Value::Timestamp(_), DataType::Timestamp) => Ok(v),
            (Value::Timestamp(t), DataType::Integer) => Ok(Value::Integer(t)),
            (Value::Timestamp(t), DataType::Text) => Ok(Value::Text(t.to_string())),
            (v @ Value::Blob(_), DataType::Blob) => Ok(v),
            (v, _) => Err(mismatch(&v)),
        }
    }

    /// Truthiness used by WHERE clauses (SQL three-valued logic collapses
    /// `NULL` to "not true").
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Boolean(b) => *b,
            Value::Integer(i) => *i != 0,
            Value::Null => false,
            _ => false,
        }
    }

    /// Render the value the way the generated markup layer expects.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Integer(i) => i.to_string(),
            Value::Real(r) => format_real(*r),
            Value::Text(s) => s.clone(),
            Value::Boolean(b) => b.to_string(),
            Value::Timestamp(t) => t.to_string(),
            Value::Blob(b) => format!("<blob {} bytes>", b.len()),
        }
    }

    /// SQL literal syntax for this value (used when inlining defaults in DDL).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Integer(i) => i.to_string(),
            Value::Real(r) => format_real(*r),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Timestamp(t) => t.to_string(),
            Value::Blob(b) => {
                let mut out = String::with_capacity(3 + b.len() * 2);
                out.push_str("X'");
                for byte in b {
                    out.push_str(&format!("{byte:02X}"));
                }
                out.push('\'');
                out
            }
        }
    }

    /// Total ordering used by ORDER BY and B-tree indexes.
    ///
    /// `Null` sorts first; cross-type numeric comparisons are performed on
    /// `f64`; any other cross-type comparison falls back to a stable order
    /// over the type tag so sorting never panics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Integer(a), Real(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Real(a), Integer(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Integer(a), Timestamp(b)) | (Timestamp(a), Integer(b)) => a.cmp(b),
            (Real(a), Timestamp(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Timestamp(a), Real(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Blob(a), Blob(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// SQL equality (used by `=`); `NULL = x` is never equal.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }
}

fn format_real(r: f64) -> String {
    if r.fract() == 0.0 && r.abs() < 1e15 {
        format!("{r:.1}")
    } else {
        format!("{r}")
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        // the numeric family (Integer/Real/Timestamp) compares numerically
        // and never reaches the rank fallback against itself
        Value::Integer(_) | Value::Real(_) | Value::Timestamp(_) => 1,
        Value::Text(_) => 3,
        Value::Boolean(_) => 4,
        Value::Blob(_) => 5,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal && !(self.is_null() ^ other.is_null())
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Integers and equal-valued reals must hash alike because they
            // compare equal under total_cmp.
            Value::Integer(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Real(r) => {
                1u8.hash(state);
                r.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Boolean(b) => {
                4u8.hash(state);
                b.hash(state);
            }
            // timestamps compare numerically with integers/reals, so they
            // must hash in the same family
            Value::Timestamp(t) => {
                1u8.hash(state);
                (*t as f64).to_bits().hash(state);
            }
            Value::Blob(b) => {
                6u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Integer(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coerce_widens_integer_to_real() {
        assert_eq!(
            Value::Integer(3).coerce(DataType::Real).unwrap(),
            Value::Real(3.0)
        );
    }

    #[test]
    fn coerce_null_to_anything() {
        for t in [
            DataType::Integer,
            DataType::Real,
            DataType::Text,
            DataType::Boolean,
            DataType::Timestamp,
            DataType::Blob,
        ] {
            assert_eq!(Value::Null.coerce(t).unwrap(), Value::Null);
        }
    }

    #[test]
    fn coerce_text_to_integer_parses() {
        assert_eq!(
            Value::Text(" 42 ".into())
                .coerce(DataType::Integer)
                .unwrap(),
            Value::Integer(42)
        );
    }

    #[test]
    fn coerce_bad_text_fails() {
        assert!(Value::Text("abc".into()).coerce(DataType::Integer).is_err());
    }

    #[test]
    fn coerce_blob_only_to_blob() {
        assert!(Value::Blob(vec![1]).coerce(DataType::Text).is_err());
        assert!(Value::Blob(vec![1]).coerce(DataType::Blob).is_ok());
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [Value::Integer(1), Value::Null, Value::Integer(0)];
        v.sort();
        assert_eq!(v[0], Value::Null);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Integer(2).total_cmp(&Value::Real(2.5)),
            Ordering::Less
        );
        assert_eq!(
            Value::Real(2.0).total_cmp(&Value::Integer(2)),
            Ordering::Equal
        );
    }

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_eq(&Value::Integer(1)), Some(true));
    }

    #[test]
    fn int_and_real_hash_alike_when_equal() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Integer(7)), h(&Value::Real(7.0)));
    }

    #[test]
    fn sql_literal_escapes_quotes() {
        assert_eq!(Value::Text("O'Hara".into()).to_sql_literal(), "'O''Hara'");
    }

    #[test]
    fn data_type_parse_synonyms() {
        assert_eq!(DataType::parse("varchar"), Some(DataType::Text));
        assert_eq!(DataType::parse("BIGINT"), Some(DataType::Integer));
        assert_eq!(DataType::parse("nope"), None);
    }

    #[test]
    fn render_real_trims() {
        assert_eq!(Value::Real(3.0).render(), "3.0");
        assert_eq!(Value::Real(3.25).render(), "3.25");
    }
}
