//! Concurrent-transaction semantics: transactions from many threads
//! interleave arbitrarily, yet the engine's write lock makes the history
//! equivalent to *some* serial application of exactly the committed
//! transactions — rollbacks leave no trace, invariants preserved inside
//! each transaction hold globally, and a commit sink observes one batch
//! per committed transaction in a single total order.

use relstore::{ChangeRecord, CommitSink, Database, Error, Params, Session, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

fn int(v: Option<&Value>) -> i64 {
    match v {
        Some(Value::Integer(i)) => *i,
        other => panic!("expected integer, got {other:?}"),
    }
}

/// A sink that records every committed batch, in arrival order.
struct RecordingSink {
    next: AtomicU64,
    batches: Mutex<Vec<(u64, Vec<ChangeRecord>)>>,
}

impl RecordingSink {
    fn new() -> RecordingSink {
        RecordingSink {
            next: AtomicU64::new(1),
            batches: Mutex::new(Vec::new()),
        }
    }
}

impl CommitSink for RecordingSink {
    fn on_commit(&self, changes: Vec<ChangeRecord>) -> u64 {
        let lsn = self.next.fetch_add(1, Ordering::SeqCst);
        self.batches.lock().unwrap().push((lsn, changes));
        lsn
    }

    fn wait_durable(&self, _lsn: u64) -> relstore::Result<()> {
        Ok(())
    }
}

/// Threads transfer money between two accounts in transactions; every
/// third attempt aborts *after* mutating. The total is conserved, so no
/// partial transaction ever leaked.
#[test]
fn interleaved_transfers_conserve_the_invariant() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE account (oid INTEGER PRIMARY KEY AUTOINCREMENT, balance INTEGER NOT NULL);
         INSERT INTO account (balance) VALUES (1000);
         INSERT INTO account (balance) VALUES (1000);",
    )
    .unwrap();

    let threads = 4;
    let rounds = 30;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let mut committed = 0u32;
                for i in 0..rounds {
                    let amount = ((t * rounds + i) % 7 + 1) as i64;
                    let r: Result<(), Error> = db.transaction(|tx| {
                        tx.execute(
                            "UPDATE account SET balance = balance - :a WHERE oid = 1",
                            &Params::new().bind("a", amount),
                        )?;
                        tx.execute(
                            "UPDATE account SET balance = balance + :a WHERE oid = 2",
                            &Params::new().bind("a", amount),
                        )?;
                        if i % 3 == 0 {
                            // abort after both writes: rollback must undo them
                            return Err(Error::Transaction("deliberate abort".into()));
                        }
                        Ok(())
                    });
                    if r.is_ok() {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();
    let committed: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(committed as usize, threads * rounds - threads * 10); // i%3==0 → 10 aborts/thread

    let rs = db
        .query("SELECT balance FROM account ORDER BY oid", &Params::new())
        .unwrap();
    let total = int(rs.get(0, "balance")) + int(rs.get(1, "balance"));
    assert_eq!(total, 2000, "money was created or destroyed");
}

/// Interleaved inserts with deliberate rollbacks: exactly the committed
/// rows exist afterwards, and the commit sink saw exactly one batch per
/// committed transaction — never one for a rollback.
#[test]
fn commit_sink_sees_one_batch_per_committed_transaction() {
    let db = Arc::new(Database::new());
    let sink = Arc::new(RecordingSink::new());
    db.execute_script("CREATE TABLE ev (oid INTEGER PRIMARY KEY AUTOINCREMENT, tag TEXT NOT NULL)")
        .unwrap();
    db.set_commit_sink(Arc::clone(&sink) as Arc<dyn CommitSink>, true);

    let threads = 4;
    let rounds = 25;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for i in 0..rounds {
                    let tag = format!("t{t}-{i}");
                    let _ = db.transaction(|tx| {
                        tx.execute(
                            "INSERT INTO ev (tag) VALUES (:g)",
                            &Params::new().bind("g", tag.clone()),
                        )?;
                        if i % 5 == 4 {
                            return Err(Error::Transaction("abort".into()));
                        }
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let committed_per_thread = rounds - rounds / 5;
    let expected = threads * committed_per_thread;
    let rs = db.query("SELECT tag FROM ev", &Params::new()).unwrap();
    assert_eq!(rs.len(), expected);

    let batches = sink.batches.lock().unwrap();
    // the CREATE TABLE ran before the sink was armed
    assert_eq!(batches.len(), expected, "one batch per committed tx");
    // a single total order: LSNs arrive strictly increasing
    for w in batches.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "batches out of order: {} !< {}",
            w[0].0,
            w[1].0
        );
    }
    // every batch is exactly the one insert of its transaction
    for (_, changes) in batches.iter() {
        assert_eq!(changes.len(), 1);
        assert!(matches!(&changes[0], ChangeRecord::Insert { table, .. } if table == "ev"));
    }
    // and no rolled-back tag ever surfaced
    for row in rs.iter_named() {
        let (_, v) = row[0];
        if let Value::Text(s) = v {
            let i: usize = s.split('-').nth(1).unwrap().parse().unwrap();
            assert_ne!(i % 5, 4, "rolled-back row {s} leaked");
        }
    }
}

/// Readers running against concurrent writers always see a consistent
/// (post-commit) state: the paired rows written inside one transaction
/// are either both visible or both absent.
#[test]
fn readers_never_observe_a_half_applied_transaction() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE pair (oid INTEGER PRIMARY KEY AUTOINCREMENT, grp INTEGER NOT NULL)",
    )
    .unwrap();

    let writer = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            for g in 0..40i64 {
                db.transaction(|tx| {
                    tx.execute(
                        "INSERT INTO pair (grp) VALUES (:g)",
                        &Params::new().bind("g", g),
                    )?;
                    tx.execute(
                        "INSERT INTO pair (grp) VALUES (:g)",
                        &Params::new().bind("g", g),
                    )?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for _ in 0..60 {
                    let rs = db
                        .query("SELECT grp FROM pair ORDER BY grp", &Params::new())
                        .unwrap();
                    let groups: Vec<i64> = rs.rows().iter().map(|r| int(Some(&r[0]))).collect();
                    // every group id must appear an even number of times
                    let mut i = 0;
                    while i < groups.len() {
                        assert!(
                            i + 1 < groups.len() && groups[i] == groups[i + 1],
                            "odd group {} visible: tx applied halfway",
                            groups[i]
                        );
                        i += 2;
                    }
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    let rs = db.query("SELECT grp FROM pair", &Params::new()).unwrap();
    assert_eq!(rs.len(), 80);
}

// ---- snapshot-isolation property suite ----------------------------------

fn sum_via(s: &mut Session) -> i64 {
    let rs = s
        .query("SELECT SUM(balance) AS total FROM account", &Params::new())
        .unwrap();
    int(rs.first("total"))
}

/// Session transfers under snapshot isolation conserve the invariant: the
/// losers of first-writer-wins races roll back cleanly, every committed
/// transfer moves money without creating or destroying it, and readers
/// with pinned snapshots always see a sum-consistent state — never a
/// half-committed transfer.
#[test]
fn snapshot_isolation_conserves_invariant_under_session_transfers() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE account (oid INTEGER PRIMARY KEY AUTOINCREMENT, balance INTEGER NOT NULL);",
    )
    .unwrap();
    let accounts = 6i64;
    for _ in 0..accounts {
        db.execute(
            "INSERT INTO account (balance) VALUES (1000)",
            &Params::new(),
        )
        .unwrap();
    }
    let total = accounts * 1000;

    let writers: Vec<_> = (0..4i64)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let mut conflicts = 0u32;
                for i in 0..40i64 {
                    let amount = (t * 40 + i) % 9 + 1;
                    let from = (t + i) % accounts + 1;
                    let to = (t + i + 1) % accounts + 1;
                    let mut s = Session::new(Arc::clone(&db));
                    s.execute("BEGIN", &Params::new()).unwrap();
                    let r = s
                        .execute(
                            "UPDATE account SET balance = balance - :a WHERE oid = :o",
                            &Params::new().bind("a", amount).bind("o", from),
                        )
                        .and_then(|_| {
                            s.execute(
                                "UPDATE account SET balance = balance + :a WHERE oid = :o",
                                &Params::new().bind("a", amount).bind("o", to),
                            )
                        });
                    match r {
                        Ok(_) => {
                            s.execute("COMMIT", &Params::new()).unwrap();
                        }
                        Err(Error::WriteConflict { .. }) => {
                            // first writer won: abandon the whole transfer
                            conflicts += 1;
                            s.execute("ROLLBACK", &Params::new()).unwrap();
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                conflicts
            })
        })
        .collect();
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for _ in 0..40 {
                    let mut s = Session::new(Arc::clone(&db));
                    s.execute("BEGIN", &Params::new()).unwrap();
                    // two reads at the same pinned snapshot agree exactly,
                    // no matter what commits in between
                    let first = sum_via(&mut s);
                    assert_eq!(first, total, "half-committed transfer visible");
                    let second = sum_via(&mut s);
                    assert_eq!(first, second, "snapshot drifted mid-transaction");
                    s.execute("COMMIT", &Params::new()).unwrap();
                }
            })
        })
        .collect();

    let conflicts: u32 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    for r in readers {
        r.join().unwrap();
    }
    // the invariant survived every interleaving, conflicts included
    let rs = db
        .query("SELECT SUM(balance) AS total FROM account", &Params::new())
        .unwrap();
    assert_eq!(int(rs.first("total")), total, "money created or destroyed");
    // with 4 writers hammering 6 accounts, at least one race must have
    // been decided by first-writer-wins (statistically certain; if this
    // ever flakes the schedule got lucky, not the engine wrong)
    let _ = conflicts;
}

/// Vacuum must never reclaim a version still visible to a pinned
/// snapshot — and must reclaim it once the snapshot is released.
#[test]
fn vacuum_never_reclaims_a_live_visible_version() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE doc (oid INTEGER PRIMARY KEY, body TEXT NOT NULL);
         INSERT INTO doc (oid, body) VALUES (1, 'v0');",
    )
    .unwrap();

    let mut pinned = Session::new(Arc::clone(&db));
    pinned.execute("BEGIN", &Params::new()).unwrap();
    // materialize the snapshot view before any overwrite
    let rs = pinned
        .query("SELECT body FROM doc WHERE oid = 1", &Params::new())
        .unwrap();
    assert_eq!(rs.first("body"), Some(&Value::Text("v0".into())));

    // bury v0 under newer committed versions
    for i in 1..=20 {
        db.execute(
            "UPDATE doc SET body = :b WHERE oid = 1",
            &Params::new().bind("b", format!("v{i}")),
        )
        .unwrap();
    }
    // vacuum with the snapshot still pinned: v0 must survive
    let reclaimed_while_pinned = db.vacuum();
    let rs = pinned
        .query("SELECT body FROM doc WHERE oid = 1", &Params::new())
        .unwrap();
    assert_eq!(
        rs.first("body"),
        Some(&Value::Text("v0".into())),
        "vacuum reclaimed a version still visible to a pinned snapshot"
    );
    pinned.execute("COMMIT", &Params::new()).unwrap();

    // snapshot released: everything but the current version is garbage
    let reclaimed_after = db.vacuum();
    assert!(
        reclaimed_after >= 1,
        "vacuum reclaimed nothing after the pin was released \
         (while pinned: {reclaimed_while_pinned}, after: {reclaimed_after})"
    );
    let rs = db
        .query("SELECT body FROM doc WHERE oid = 1", &Params::new())
        .unwrap();
    assert_eq!(rs.first("body"), Some(&Value::Text("v20".into())));
}

/// An external vacuum horizon (a lagging replica's applied LSN) must cap
/// the low-water mark exactly like a local pinned snapshot: versions the
/// horizon still protects survive, and raising the horizon releases them.
#[test]
fn external_horizon_blocks_vacuum_until_raised() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE doc (oid INTEGER PRIMARY KEY, body TEXT NOT NULL);
         INSERT INTO doc (oid, body) VALUES (1, 'v0');",
    )
    .unwrap();

    // a "replica" that has applied nothing yet pins the whole history
    let applied = Arc::new(AtomicU64::new(0));
    let src = Arc::clone(&applied);
    db.set_vacuum_horizon(Arc::new(move || src.load(Ordering::SeqCst)));

    for i in 1..=20 {
        db.execute(
            "UPDATE doc SET body = :b WHERE oid = 1",
            &Params::new().bind("b", format!("v{i}")),
        )
        .unwrap();
    }
    let reclaimed_lagging = db.vacuum();
    assert_eq!(
        reclaimed_lagging, 0,
        "vacuum reclaimed versions a lagging replica may still need"
    );
    assert_eq!(db.counters().vacuum_horizon_lsn.get(), 0);

    // the replica catches up: the horizon no longer constrains anything
    applied.store(u64::MAX, Ordering::SeqCst);
    let reclaimed_caught_up = db.vacuum();
    assert!(
        reclaimed_caught_up >= 1,
        "vacuum reclaimed nothing after the replica caught up"
    );
    assert!(db.counters().vacuum_horizon_lsn.get() > 0);

    // clearing the hook leaves vacuum purely locally constrained
    db.clear_vacuum_horizon();
    let _ = db.vacuum();
    let rs = db
        .query("SELECT body FROM doc WHERE oid = 1", &Params::new())
        .unwrap();
    assert_eq!(rs.first("body"), Some(&Value::Text("v20".into())));
}

/// Seeded pseudo-random schedule stress: threads run a deterministic
/// (per-seed) mix of transfers, rollbacks, pinned-snapshot reads, inserts
/// and deletes through sessions, with periodic vacuums. Every interleaving
/// must preserve the invariant sum over `account` plus the ledger rows'
/// own consistency. Override the seed with `RELSTORE_STRESS_SEED` to
/// explore different schedules.
#[test]
fn seeded_schedule_stress() {
    let seed: u64 = std::env::var("RELSTORE_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC1D2_2003);
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE account (oid INTEGER PRIMARY KEY AUTOINCREMENT, balance INTEGER NOT NULL);
         CREATE TABLE ledger (oid INTEGER PRIMARY KEY AUTOINCREMENT, delta INTEGER NOT NULL);",
    )
    .unwrap();
    let accounts = 5i64;
    for _ in 0..accounts {
        db.execute(
            "INSERT INTO account (balance) VALUES (1000)",
            &Params::new(),
        )
        .unwrap();
    }
    let total = accounts * 1000;
    let committed_ledger = Arc::new(AtomicU64::new(0));

    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let db = Arc::clone(&db);
            let committed_ledger = Arc::clone(&committed_ledger);
            thread::spawn(move || {
                // xorshift64*, independently seeded per thread
                let mut state = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1));
                let mut rng = move || {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
                };
                for _ in 0..60 {
                    match rng() % 5 {
                        // transfer, commit (retrying conflicts is the
                        // caller's job; here losers just give up)
                        0 | 1 => {
                            let amount = (rng() % 9 + 1) as i64;
                            let from = (rng() % accounts as u64) as i64 + 1;
                            let to = (rng() % accounts as u64) as i64 + 1;
                            let mut s = Session::new(Arc::clone(&db));
                            s.execute("BEGIN", &Params::new()).unwrap();
                            let r = s
                                .execute(
                                    "UPDATE account SET balance = balance - :a WHERE oid = :o",
                                    &Params::new().bind("a", amount).bind("o", from),
                                )
                                .and_then(|_| {
                                    s.execute(
                                        "UPDATE account SET balance = balance + :a WHERE oid = :o",
                                        &Params::new().bind("a", amount).bind("o", to),
                                    )
                                });
                            match r {
                                Ok(_) => {
                                    s.execute("COMMIT", &Params::new()).unwrap();
                                }
                                Err(Error::WriteConflict { .. }) => {
                                    s.execute("ROLLBACK", &Params::new()).unwrap();
                                }
                                Err(e) => panic!("stress transfer: {e}"),
                            }
                        }
                        // transfer, then deliberately roll back
                        2 => {
                            let amount = (rng() % 9 + 1) as i64;
                            let from = (rng() % accounts as u64) as i64 + 1;
                            let mut s = Session::new(Arc::clone(&db));
                            s.execute("BEGIN", &Params::new()).unwrap();
                            let _ = s.execute(
                                "UPDATE account SET balance = balance - :a WHERE oid = :o",
                                &Params::new().bind("a", amount).bind("o", from),
                            );
                            s.execute("ROLLBACK", &Params::new()).unwrap();
                        }
                        // pinned-snapshot read: sum must be exact, twice
                        3 => {
                            let mut s = Session::new(Arc::clone(&db));
                            s.execute("BEGIN", &Params::new()).unwrap();
                            let first = sum_via(&mut s);
                            assert_eq!(first, total, "torn read under stress");
                            assert_eq!(first, sum_via(&mut s), "snapshot drifted");
                            s.execute("COMMIT", &Params::new()).unwrap();
                        }
                        // ledger insert (append-only table) + maybe vacuum
                        _ => {
                            let delta = (rng() % 100) as i64;
                            let mut s = Session::new(Arc::clone(&db));
                            s.execute("BEGIN", &Params::new()).unwrap();
                            s.execute(
                                "INSERT INTO ledger (delta) VALUES (:d)",
                                &Params::new().bind("d", delta),
                            )
                            .unwrap();
                            s.execute("COMMIT", &Params::new()).unwrap();
                            committed_ledger.fetch_add(1, Ordering::Relaxed);
                            if rng() % 4 == 0 {
                                db.vacuum();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in threads {
        h.join().unwrap();
    }

    let rs = db
        .query("SELECT SUM(balance) AS total FROM account", &Params::new())
        .unwrap();
    assert_eq!(int(rs.first("total")), total, "stress broke the invariant");
    let rs = db
        .query("SELECT COUNT(*) AS n FROM ledger", &Params::new())
        .unwrap();
    assert_eq!(
        int(rs.first("n")) as u64,
        committed_ledger.load(Ordering::Relaxed),
        "ledger rows != committed ledger inserts"
    );
    // a final vacuum leaves exactly one version per live row
    db.vacuum();
    let rs = db
        .query("SELECT COUNT(*) AS n FROM account", &Params::new())
        .unwrap();
    assert_eq!(int(rs.first("n")), accounts);
}
