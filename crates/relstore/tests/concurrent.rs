//! Concurrent-transaction semantics: transactions from many threads
//! interleave arbitrarily, yet the engine's write lock makes the history
//! equivalent to *some* serial application of exactly the committed
//! transactions — rollbacks leave no trace, invariants preserved inside
//! each transaction hold globally, and a commit sink observes one batch
//! per committed transaction in a single total order.

use relstore::{ChangeRecord, CommitSink, Database, Error, Params, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

fn int(v: Option<&Value>) -> i64 {
    match v {
        Some(Value::Integer(i)) => *i,
        other => panic!("expected integer, got {other:?}"),
    }
}

/// A sink that records every committed batch, in arrival order.
struct RecordingSink {
    next: AtomicU64,
    batches: Mutex<Vec<(u64, Vec<ChangeRecord>)>>,
}

impl RecordingSink {
    fn new() -> RecordingSink {
        RecordingSink {
            next: AtomicU64::new(1),
            batches: Mutex::new(Vec::new()),
        }
    }
}

impl CommitSink for RecordingSink {
    fn on_commit(&self, changes: Vec<ChangeRecord>) -> u64 {
        let lsn = self.next.fetch_add(1, Ordering::SeqCst);
        self.batches.lock().unwrap().push((lsn, changes));
        lsn
    }

    fn wait_durable(&self, _lsn: u64) -> relstore::Result<()> {
        Ok(())
    }
}

/// Threads transfer money between two accounts in transactions; every
/// third attempt aborts *after* mutating. The total is conserved, so no
/// partial transaction ever leaked.
#[test]
fn interleaved_transfers_conserve_the_invariant() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE account (oid INTEGER PRIMARY KEY AUTOINCREMENT, balance INTEGER NOT NULL);
         INSERT INTO account (balance) VALUES (1000);
         INSERT INTO account (balance) VALUES (1000);",
    )
    .unwrap();

    let threads = 4;
    let rounds = 30;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let mut committed = 0u32;
                for i in 0..rounds {
                    let amount = ((t * rounds + i) % 7 + 1) as i64;
                    let r: Result<(), Error> = db.transaction(|tx| {
                        tx.execute(
                            "UPDATE account SET balance = balance - :a WHERE oid = 1",
                            &Params::new().bind("a", amount),
                        )?;
                        tx.execute(
                            "UPDATE account SET balance = balance + :a WHERE oid = 2",
                            &Params::new().bind("a", amount),
                        )?;
                        if i % 3 == 0 {
                            // abort after both writes: rollback must undo them
                            return Err(Error::Transaction("deliberate abort".into()));
                        }
                        Ok(())
                    });
                    if r.is_ok() {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();
    let committed: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(committed as usize, threads * rounds - threads * 10); // i%3==0 → 10 aborts/thread

    let rs = db
        .query("SELECT balance FROM account ORDER BY oid", &Params::new())
        .unwrap();
    let total = int(rs.get(0, "balance")) + int(rs.get(1, "balance"));
    assert_eq!(total, 2000, "money was created or destroyed");
}

/// Interleaved inserts with deliberate rollbacks: exactly the committed
/// rows exist afterwards, and the commit sink saw exactly one batch per
/// committed transaction — never one for a rollback.
#[test]
fn commit_sink_sees_one_batch_per_committed_transaction() {
    let db = Arc::new(Database::new());
    let sink = Arc::new(RecordingSink::new());
    db.execute_script("CREATE TABLE ev (oid INTEGER PRIMARY KEY AUTOINCREMENT, tag TEXT NOT NULL)")
        .unwrap();
    db.set_commit_sink(Arc::clone(&sink) as Arc<dyn CommitSink>, true);

    let threads = 4;
    let rounds = 25;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for i in 0..rounds {
                    let tag = format!("t{t}-{i}");
                    let _ = db.transaction(|tx| {
                        tx.execute(
                            "INSERT INTO ev (tag) VALUES (:g)",
                            &Params::new().bind("g", tag.clone()),
                        )?;
                        if i % 5 == 4 {
                            return Err(Error::Transaction("abort".into()));
                        }
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let committed_per_thread = rounds - rounds / 5;
    let expected = threads * committed_per_thread;
    let rs = db.query("SELECT tag FROM ev", &Params::new()).unwrap();
    assert_eq!(rs.len(), expected);

    let batches = sink.batches.lock().unwrap();
    // the CREATE TABLE ran before the sink was armed
    assert_eq!(batches.len(), expected, "one batch per committed tx");
    // a single total order: LSNs arrive strictly increasing
    for w in batches.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "batches out of order: {} !< {}",
            w[0].0,
            w[1].0
        );
    }
    // every batch is exactly the one insert of its transaction
    for (_, changes) in batches.iter() {
        assert_eq!(changes.len(), 1);
        assert!(matches!(&changes[0], ChangeRecord::Insert { table, .. } if table == "ev"));
    }
    // and no rolled-back tag ever surfaced
    for row in rs.iter_named() {
        let (_, v) = row[0];
        if let Value::Text(s) = v {
            let i: usize = s.split('-').nth(1).unwrap().parse().unwrap();
            assert_ne!(i % 5, 4, "rolled-back row {s} leaked");
        }
    }
}

/// Readers running against concurrent writers always see a consistent
/// (post-commit) state: the paired rows written inside one transaction
/// are either both visible or both absent.
#[test]
fn readers_never_observe_a_half_applied_transaction() {
    let db = Arc::new(Database::new());
    db.execute_script(
        "CREATE TABLE pair (oid INTEGER PRIMARY KEY AUTOINCREMENT, grp INTEGER NOT NULL)",
    )
    .unwrap();

    let writer = {
        let db = Arc::clone(&db);
        thread::spawn(move || {
            for g in 0..40i64 {
                db.transaction(|tx| {
                    tx.execute(
                        "INSERT INTO pair (grp) VALUES (:g)",
                        &Params::new().bind("g", g),
                    )?;
                    tx.execute(
                        "INSERT INTO pair (grp) VALUES (:g)",
                        &Params::new().bind("g", g),
                    )?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                for _ in 0..60 {
                    let rs = db
                        .query("SELECT grp FROM pair ORDER BY grp", &Params::new())
                        .unwrap();
                    let groups: Vec<i64> = rs.rows().iter().map(|r| int(Some(&r[0]))).collect();
                    // every group id must appear an even number of times
                    let mut i = 0;
                    while i < groups.len() {
                        assert!(
                            i + 1 < groups.len() && groups[i] == groups[i + 1],
                            "odd group {} visible: tx applied halfway",
                            groups[i]
                        );
                        i += 2;
                    }
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    let rs = db.query("SELECT grp FROM pair", &Params::new()).unwrap();
    assert_eq!(rs.len(), 80);
}
