//! Planner-path tests: hash joins for unindexed equi-joins, bounded
//! Top-K for `ORDER BY` + `LIMIT`, and the access-path counters that
//! report which path answered each query.

use proptest::prelude::*;
use relstore::{Database, Params, Value};

fn db_orders() -> Database {
    let db = Database::new();
    // `customer_ref` is deliberately NOT the PK and has NO index: joins on
    // it exercise the hash-join path, not the index-probe path.
    db.execute_script(
        "CREATE TABLE customer (oid INTEGER PRIMARY KEY AUTOINCREMENT, code INTEGER, name TEXT NOT NULL);
         CREATE TABLE orders (oid INTEGER PRIMARY KEY AUTOINCREMENT, customer_ref INTEGER, total REAL);",
    )
    .unwrap();
    db
}

fn ints(rs: &relstore::ResultSet, col: &str) -> Vec<i64> {
    (0..rs.len())
        .map(|i| match rs.get(i, col) {
            Some(Value::Integer(n)) => *n,
            other => panic!("{col}[{i}] = {other:?}"),
        })
        .collect()
}

// ---- hash join --------------------------------------------------------------

#[test]
fn hash_join_matches_filtered_cross_product() {
    let db = db_orders();
    for (code, name) in [(10, "ada"), (20, "bob"), (30, "cyd"), (10, "dup")] {
        db.execute(
            "INSERT INTO customer (code, name) VALUES (:c, :n)",
            &Params::new().bind("c", code).bind("n", name),
        )
        .unwrap();
    }
    for (cref, total) in [(10, 5.0), (10, 7.0), (20, 11.0), (99, 13.0)] {
        db.execute(
            "INSERT INTO orders (customer_ref, total) VALUES (:c, :t)",
            &Params::new().bind("c", cref).bind("t", total),
        )
        .unwrap();
    }
    let joined = db
        .query(
            "SELECT c.name, o.total FROM customer c \
             INNER JOIN orders o ON o.customer_ref = c.code \
             ORDER BY c.name, o.total",
            &Params::new(),
        )
        .unwrap();
    // ada and dup share code 10 (2 orders each), bob has one, cyd none,
    // order 99 matches nobody
    assert_eq!(joined.len(), 5);
    let names: Vec<String> = (0..joined.len())
        .map(|i| match joined.get(i, "name") {
            Some(Value::Text(t)) => t.clone(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(names, ["ada", "ada", "bob", "dup", "dup"]);
    assert!(db.counters().hash_joins.get() >= 1, "hash join must engage");
}

#[test]
fn hash_join_skips_null_keys() {
    let db = db_orders();
    db.execute(
        "INSERT INTO customer (code, name) VALUES (NULL, 'nullc'), (1, 'one')",
        &Params::new(),
    )
    .unwrap();
    db.execute(
        "INSERT INTO orders (customer_ref, total) VALUES (NULL, 1.0), (1, 2.0)",
        &Params::new(),
    )
    .unwrap();
    // SQL: NULL = NULL is not true — only the (1, one) pair joins
    let rs = db
        .query(
            "SELECT c.name FROM customer c INNER JOIN orders o ON o.customer_ref = c.code",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.first("name"), Some(&Value::Text("one".into())));
    // LEFT JOIN keeps the null-keyed customer with a null extension
    let rs = db
        .query(
            "SELECT c.name, o.total FROM customer c LEFT JOIN orders o ON o.customer_ref = c.code \
             ORDER BY c.name",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.get(0, "name"), Some(&Value::Text("nullc".into())));
    assert_eq!(rs.get(0, "total"), Some(&Value::Null));
}

#[test]
fn join_on_indexed_column_prefers_index_probe() {
    let db = db_orders();
    db.execute_script("CREATE INDEX ix_orders_cref ON orders (customer_ref);")
        .unwrap();
    db.execute(
        "INSERT INTO customer (code, name) VALUES (1, 'ada')",
        &Params::new(),
    )
    .unwrap();
    db.execute(
        "INSERT INTO orders (customer_ref, total) VALUES (1, 5.0)",
        &Params::new(),
    )
    .unwrap();
    let before = db.counters().hash_joins.get();
    let rs = db
        .query(
            "SELECT o.total FROM customer c INNER JOIN orders o ON o.customer_ref = c.code",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(db.counters().hash_joins.get(), before, "index beats hash");
    assert!(db.counters().index_probes.get() >= 1);
}

// ---- Top-K ------------------------------------------------------------------

fn db_seq(n: i64) -> Database {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER);")
        .unwrap();
    for i in 0..n {
        db.execute(
            "INSERT INTO t (k, v) VALUES (:k, :v)",
            &Params::new().bind("k", i).bind("v", (i * 7919) % 101),
        )
        .unwrap();
    }
    db
}

#[test]
fn topk_with_ordinal_order_by() {
    let db = db_seq(50);
    let rs = db
        .query(
            "SELECT v, k FROM t ORDER BY 1 DESC, 2 LIMIT 3",
            &Params::new(),
        )
        .unwrap();
    let full = db
        .query("SELECT v, k FROM t ORDER BY 1 DESC, 2", &Params::new())
        .unwrap();
    assert_eq!(ints(&rs, "v"), ints(&full, "v")[..3]);
    assert_eq!(ints(&rs, "k"), ints(&full, "k")[..3]);
    assert!(db.counters().topk_shortcuts.get() >= 1, "Top-K must engage");
}

#[test]
fn topk_with_alias_order_by() {
    let db = db_seq(40);
    let rs = db
        .query(
            "SELECT v AS score FROM t ORDER BY score DESC LIMIT 5",
            &Params::new(),
        )
        .unwrap();
    let full = db
        .query(
            "SELECT v AS score FROM t ORDER BY score DESC",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(ints(&rs, "score"), ints(&full, "score")[..5]);
}

#[test]
fn topk_null_ordering_matches_full_sort() {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER);")
        .unwrap();
    for i in 0..20i64 {
        if i % 3 == 0 {
            db.execute(
                "INSERT INTO t (k, v) VALUES (:k, NULL)",
                &Params::new().bind("k", i),
            )
            .unwrap();
        } else {
            db.execute(
                "INSERT INTO t (k, v) VALUES (:k, :v)",
                &Params::new().bind("k", i).bind("v", 100 - i),
            )
            .unwrap();
        }
    }
    for dir in ["ASC", "DESC"] {
        let top = db
            .query(
                &format!("SELECT k, v FROM t ORDER BY v {dir}, k LIMIT 4"),
                &Params::new(),
            )
            .unwrap();
        let full = db
            .query(
                &format!("SELECT k, v FROM t ORDER BY v {dir}, k"),
                &Params::new(),
            )
            .unwrap();
        assert_eq!(ints(&top, "k"), ints(&full, "k")[..4], "dir={dir}");
    }
}

#[test]
fn offset_beyond_result_yields_empty() {
    let db = db_seq(10);
    let rs = db
        .query(
            "SELECT k FROM t ORDER BY k LIMIT 5 OFFSET 10",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 0);
    let rs = db
        .query(
            "SELECT k FROM t ORDER BY k LIMIT 5 OFFSET 1000",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 0);
}

#[test]
fn limit_zero_yields_empty() {
    let db = db_seq(10);
    let rs = db
        .query("SELECT k FROM t ORDER BY k DESC LIMIT 0", &Params::new())
        .unwrap();
    assert_eq!(rs.len(), 0);
    let rs = db
        .query(
            "SELECT k FROM t ORDER BY k LIMIT 0 OFFSET 3",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 0);
}

#[test]
fn topk_is_stable_like_full_sort() {
    // many duplicate keys: the bounded heap must keep the same rows a
    // stable full sort keeps
    let db = Database::new();
    db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY, g INTEGER);")
        .unwrap();
    for i in 0..30i64 {
        db.execute(
            "INSERT INTO t (k, g) VALUES (:k, :g)",
            &Params::new().bind("k", i).bind("g", i % 3),
        )
        .unwrap();
    }
    let top = db
        .query(
            "SELECT k, g FROM t ORDER BY g LIMIT 7 OFFSET 2",
            &Params::new(),
        )
        .unwrap();
    let full = db
        .query("SELECT k, g FROM t ORDER BY g", &Params::new())
        .unwrap();
    assert_eq!(ints(&top, "k"), ints(&full, "k")[2..9]);
}

// ---- property: Top-K ≡ sort-then-slice --------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn topk_equals_sort_then_slice(
        vals in proptest::collection::vec(prop_oneof![Just(None), (0i64..20).prop_map(Some)], 0..40),
        limit in 0usize..12,
        offset in 0usize..12,
        desc in any::<bool>(),
    ) {
        let db = Database::new();
        db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER);").unwrap();
        for (i, v) in vals.iter().enumerate() {
            match v {
                Some(v) => db.execute(
                    "INSERT INTO t (k, v) VALUES (:k, :v)",
                    &Params::new().bind("k", i as i64).bind("v", *v),
                ),
                None => db.execute(
                    "INSERT INTO t (k, v) VALUES (:k, NULL)",
                    &Params::new().bind("k", i as i64),
                ),
            }
            .unwrap();
        }
        let dir = if desc { "DESC" } else { "ASC" };
        let top = db
            .query(
                &format!("SELECT k FROM t ORDER BY v {dir} LIMIT {limit} OFFSET {offset}"),
                &Params::new(),
            )
            .unwrap();
        let full = db
            .query(&format!("SELECT k FROM t ORDER BY v {dir}"), &Params::new())
            .unwrap();
        let expected: Vec<i64> = ints(&full, "k")
            .into_iter()
            .skip(offset)
            .take(limit)
            .collect();
        prop_assert_eq!(ints(&top, "k"), expected);
    }
}

// ---- counters ---------------------------------------------------------------

#[test]
fn scan_fallback_counter_fires_on_unindexed_filter() {
    let db = db_seq(5);
    let before = db.counters().scan_fallbacks.get();
    db.query("SELECT k FROM t WHERE v > 3", &Params::new())
        .unwrap();
    assert!(db.counters().scan_fallbacks.get() > before);
}

#[test]
fn fk_checks_agree_with_and_without_index() {
    // same scenario twice: cascade + restrict must behave identically
    // whether the FK column is indexed (index probe) or not (scan)
    let run = |indexed: bool| -> (usize, usize) {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE parent (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT);
             CREATE TABLE child (oid INTEGER PRIMARY KEY AUTOINCREMENT, parent_oid INTEGER,
                                 CONSTRAINT fk FOREIGN KEY (parent_oid) REFERENCES parent (oid) ON DELETE CASCADE);",
        )
        .unwrap();
        if indexed {
            db.execute_script("CREATE INDEX ix_child_parent ON child (parent_oid);")
                .unwrap();
        }
        db.execute(
            "INSERT INTO parent (name) VALUES ('a'), ('b')",
            &Params::new(),
        )
        .unwrap();
        db.execute(
            "INSERT INTO child (parent_oid) VALUES (1), (1), (2)",
            &Params::new(),
        )
        .unwrap();
        // insert referencing a missing parent must fail either way
        assert!(db
            .execute("INSERT INTO child (parent_oid) VALUES (99)", &Params::new())
            .is_err());
        db.execute("DELETE FROM parent WHERE oid = 1", &Params::new())
            .unwrap();
        (
            db.table_len("parent").unwrap(),
            db.table_len("child").unwrap(),
        )
    };
    assert_eq!(run(false), run(true));
    assert_eq!(run(true), (1, 1));
}
