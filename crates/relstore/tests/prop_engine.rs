//! Property-based tests of the storage engine against simple oracles.

use proptest::prelude::*;
use relstore::{Column, DataType, Database, Params, TableSchema, Value};

// ---- LIKE matcher vs a reference implementation ---------------------------

/// Reference LIKE: dynamic programming over chars (case-insensitive).
fn like_oracle(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        if p[j - 1] == '%' {
            dp[0][j] = dp[0][j - 1];
        }
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && t[i - 1] == c,
            };
        }
    }
    dp[t.len()][p.len()]
}

proptest! {
    #[test]
    fn like_matches_oracle(
        text in "[a-c%_]{0,8}",
        pattern in "[a-c%_]{0,6}",
    ) {
        prop_assert_eq!(
            relstore::expr::like_match(&text, &pattern),
            like_oracle(&text, &pattern),
            "text={:?} pattern={:?}", text, pattern
        );
    }

    #[test]
    fn like_percent_matches_everything(text in ".{0,20}") {
        prop_assert!(relstore::expr::like_match(&text, "%"));
    }
}

// ---- Value ordering is a total order ---------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Integer),
        (-1e12f64..1e12f64).prop_map(Value::Real),
        "[a-z]{0,6}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Boolean),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

proptest! {
    #[test]
    fn value_order_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // antisymmetry
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // transitivity (for the sortable subset)
        if ab != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // sorting never panics
        let mut v = [a, b, c];
        v.sort();
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let b = a.clone();
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        prop_assert_eq!(h1.finish(), h2.finish());
    }
}

// ---- CREATE TABLE round trip -----------------------------------------------

fn arb_schema() -> impl Strategy<Value = TableSchema> {
    let col_type = prop_oneof![
        Just(DataType::Integer),
        Just(DataType::Real),
        Just(DataType::Text),
        Just(DataType::Boolean),
        Just(DataType::Timestamp),
    ];
    proptest::collection::vec(("[a-z][a-z0-9]{0,6}", col_type, any::<bool>()), 1..6).prop_map(
        |cols| {
            let mut schema = TableSchema::new("t");
            let mut seen = std::collections::HashSet::new();
            for (name, dt, not_null) in cols {
                if !seen.insert(name.clone()) {
                    continue;
                }
                let mut c = Column::new(name, dt);
                if not_null {
                    c = c.not_null();
                }
                schema = schema.column(c);
            }
            let first = schema.columns[0].name.clone();
            schema.primary_key(&[first.as_str()])
        },
    )
}

proptest! {
    #[test]
    fn create_table_sql_round_trips(schema in arb_schema()) {
        let sql = schema.to_create_sql();
        let stmt = relstore::parse_statement(&sql).unwrap();
        let relstore::Statement::CreateTable(parsed) = stmt else {
            return Err(TestCaseError::fail("not a CREATE TABLE"));
        };
        prop_assert_eq!(parsed, schema);
    }
}

// ---- model-based CRUD against a Vec oracle ---------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, String),
    DeleteWhereKeyLt(i64),
    UpdateScore(i64, i64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0i64..50, "[a-z]{1,4}").prop_map(|(k, s)| Op::Insert(k, s)),
            (0i64..50).prop_map(Op::DeleteWhereKeyLt),
            (0i64..50, 0i64..100).prop_map(|(k, v)| Op::UpdateScore(k, v)),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn crud_matches_vec_oracle(ops in arb_ops()) {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, name TEXT NOT NULL, score INTEGER);
             CREATE INDEX ix_score ON t (score);",
        )
        .unwrap();
        // oracle: (k, name, score)
        let mut oracle: Vec<(i64, String, i64)> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(k, name) => {
                    let res = db.execute(
                        "INSERT INTO t (k, name, score) VALUES (:k, :n, 0)",
                        &Params::new().bind("k", *k).bind("n", name.clone()),
                    );
                    let dup = oracle.iter().any(|(ok, ..)| ok == k);
                    if dup {
                        prop_assert!(res.is_err(), "duplicate key accepted");
                    } else {
                        prop_assert!(res.is_ok());
                        oracle.push((*k, name.clone(), 0));
                    }
                }
                Op::DeleteWhereKeyLt(k) => {
                    let n = db
                        .execute(
                            "DELETE FROM t WHERE k < :k",
                            &Params::new().bind("k", *k),
                        )
                        .unwrap()
                        .affected();
                    let before = oracle.len();
                    oracle.retain(|(ok, ..)| ok >= k);
                    prop_assert_eq!(n, before - oracle.len());
                }
                Op::UpdateScore(k, v) => {
                    let n = db
                        .execute(
                            "UPDATE t SET score = :v WHERE k = :k",
                            &Params::new().bind("k", *k).bind("v", *v),
                        )
                        .unwrap()
                        .affected();
                    let mut hits = 0;
                    for row in oracle.iter_mut() {
                        if row.0 == *k {
                            row.2 = *v;
                            hits += 1;
                        }
                    }
                    prop_assert_eq!(n, hits);
                }
            }
        }
        // final state identical, in key order
        let rs = db
            .query("SELECT k, name, score FROM t ORDER BY k", &Params::new())
            .unwrap();
        oracle.sort_by_key(|(k, ..)| *k);
        prop_assert_eq!(rs.len(), oracle.len());
        for (i, (k, name, score)) in oracle.iter().enumerate() {
            prop_assert_eq!(rs.get(i, "k"), Some(&Value::Integer(*k)));
            prop_assert_eq!(rs.get(i, "name"), Some(&Value::Text(name.clone())));
            prop_assert_eq!(rs.get(i, "score"), Some(&Value::Integer(*score)));
        }
        // index probe agrees with scan for every distinct score
        for (_, _, score) in &oracle {
            let probed = db
                .query(
                    "SELECT COUNT(*) AS n FROM t WHERE score = :s",
                    &Params::new().bind("s", *score),
                )
                .unwrap();
            let expected = oracle.iter().filter(|(.., s)| s == score).count() as i64;
            prop_assert_eq!(probed.first("n"), Some(&Value::Integer(expected)));
        }
    }

    #[test]
    fn limit_offset_windows_correctly(
        n in 0usize..30,
        limit in 0usize..10,
        offset in 0usize..35,
    ) {
        let db = Database::new();
        db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY);").unwrap();
        for i in 0..n {
            db.execute(
                "INSERT INTO t (k) VALUES (:k)",
                &Params::new().bind("k", i as i64),
            )
            .unwrap();
        }
        let rs = db
            .query(
                &format!("SELECT k FROM t ORDER BY k LIMIT {limit} OFFSET {offset}"),
                &Params::new(),
            )
            .unwrap();
        let expected: Vec<i64> = (0..n as i64).skip(offset).take(limit).collect();
        prop_assert_eq!(rs.len(), expected.len());
        for (i, k) in expected.iter().enumerate() {
            prop_assert_eq!(rs.get(i, "k"), Some(&Value::Integer(*k)));
        }
    }

    #[test]
    fn transactions_are_all_or_nothing(rows in 1usize..10, fail_at in 0usize..10) {
        let db = Database::new();
        db.execute_script("CREATE TABLE t (k INTEGER PRIMARY KEY);").unwrap();
        let result: relstore::Result<()> = db.transaction(|tx| {
            for i in 0..rows {
                if i == fail_at {
                    return Err(relstore::Error::Eval("injected".into()));
                }
                tx.execute(
                    "INSERT INTO t (k) VALUES (:k)",
                    &Params::new().bind("k", i as i64),
                )?;
            }
            Ok(())
        });
        let len = db.table_len("t").unwrap();
        if result.is_ok() {
            prop_assert_eq!(len, rows);
        } else {
            prop_assert_eq!(len, 0);
        }
    }
}
