//! SQL conformance battery: small focused cases across the supported
//! subset, including the awkward corners the generated queries can hit.

use relstore::{Database, Error, Params, Value};

fn db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE dept (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL);
         CREATE TABLE emp (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL,
             salary REAL, active BOOLEAN DEFAULT TRUE, dept_oid INTEGER,
             CONSTRAINT fk_dept FOREIGN KEY (dept_oid) REFERENCES dept (oid));
         CREATE INDEX ix_emp_dept ON emp (dept_oid);
         CREATE UNIQUE INDEX ux_dept_name ON dept (name);",
    )
    .unwrap();
    for d in ["Sales", "Engineering", "Marketing"] {
        db.execute(
            "INSERT INTO dept (name) VALUES (:n)",
            &Params::new().bind("n", d),
        )
        .unwrap();
    }
    let rows = [
        ("Ada", 120.0, true, 2),
        ("Grace", 130.0, true, 2),
        ("Edsger", 110.0, false, 2),
        ("Tim", 90.0, true, 1),
        ("Vint", 95.0, true, 1),
        ("Don", 150.0, true, 3),
    ];
    for (n, s, a, d) in rows {
        db.execute(
            "INSERT INTO emp (name, salary, active, dept_oid) VALUES (:n, :s, :a, :d)",
            &Params::new()
                .bind("n", n)
                .bind("s", s)
                .bind("a", a)
                .bind("d", d as i64),
        )
        .unwrap();
    }
    db
}

#[test]
fn unique_index_via_sql_enforced() {
    let db = db();
    let err = db
        .execute("INSERT INTO dept (name) VALUES ('Sales')", &Params::new())
        .unwrap_err();
    assert!(matches!(err, Error::UniqueViolation { .. }));
}

#[test]
fn fk_restrict_refuses_delete_of_referenced_row() {
    let db = db();
    let err = db
        .execute("DELETE FROM dept WHERE oid = 2", &Params::new())
        .unwrap_err();
    assert!(matches!(err, Error::ForeignKeyViolation { .. }));
    // unreferenced rows may go... all depts are referenced here, so detach
    db.execute(
        "UPDATE emp SET dept_oid = NULL WHERE dept_oid = 3",
        &Params::new(),
    )
    .unwrap();
    assert_eq!(
        db.execute("DELETE FROM dept WHERE oid = 3", &Params::new())
            .unwrap()
            .affected(),
        1
    );
}

#[test]
fn boolean_defaults_and_filters() {
    let db = db();
    db.execute(
        "INSERT INTO emp (name, salary) VALUES ('Default', 1.0)",
        &Params::new(),
    )
    .unwrap();
    let rs = db
        .query(
            "SELECT COUNT(*) AS n FROM emp WHERE active = TRUE",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.first("n"), Some(&Value::Integer(6))); // 5 seeded + default
}

#[test]
fn group_by_text_keys_with_having_and_aliases() {
    let db = db();
    let rs = db
        .query(
            "SELECT d.name AS dept, COUNT(*) AS headcount, AVG(e.salary) AS avg_sal \
             FROM emp e INNER JOIN dept d ON d.oid = e.dept_oid \
             GROUP BY d.name HAVING COUNT(*) >= 2 ORDER BY headcount DESC, dept",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.get(0, "dept"), Some(&Value::Text("Engineering".into())));
    assert_eq!(rs.get(0, "headcount"), Some(&Value::Integer(3)));
    assert_eq!(rs.get(0, "avg_sal"), Some(&Value::Real(120.0)));
    assert_eq!(rs.get(1, "dept"), Some(&Value::Text("Sales".into())));
}

#[test]
fn aggregates_on_empty_input() {
    let db = db();
    let rs = db
        .query(
            "SELECT COUNT(*) AS n, SUM(salary) AS s, MIN(salary) AS mn, AVG(salary) AS a \
             FROM emp WHERE salary > 10000",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.first("n"), Some(&Value::Integer(0)));
    assert_eq!(rs.first("s"), Some(&Value::Null));
    assert_eq!(rs.first("mn"), Some(&Value::Null));
    assert_eq!(rs.first("a"), Some(&Value::Null));
}

#[test]
fn count_ignores_nulls_but_count_star_does_not() {
    let db = db();
    db.execute(
        "INSERT INTO emp (name, salary) VALUES ('NoSalary', NULL)",
        &Params::new(),
    )
    .unwrap();
    let rs = db
        .query(
            "SELECT COUNT(*) AS stars, COUNT(salary) AS sals FROM emp",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.first("stars"), Some(&Value::Integer(7)));
    assert_eq!(rs.first("sals"), Some(&Value::Integer(6)));
}

#[test]
fn in_list_and_between_and_not() {
    let db = db();
    let rs = db
        .query(
            "SELECT name FROM emp WHERE dept_oid IN (1, 3) AND salary BETWEEN 90 AND 100 \
             ORDER BY name",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 2); // Tim, Vint
    let rs = db
        .query(
            "SELECT COUNT(*) AS n FROM emp WHERE name NOT LIKE '%a%'",
            &Params::new(),
        )
        .unwrap();
    // Ada/Grace contain 'a'; LIKE is case-insensitive so Ada matches too
    assert_eq!(rs.first("n"), Some(&Value::Integer(4)));
}

#[test]
fn expressions_and_concat_in_projection() {
    let db = db();
    let rs = db
        .query(
            "SELECT name || ' (' || salary || ')' AS label, salary * 1.1 AS raised \
             FROM emp WHERE oid = 1",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.first("label"), Some(&Value::Text("Ada (120.0)".into())));
    assert_eq!(rs.first("raised"), Some(&Value::Real(132.0)));
}

#[test]
fn update_with_in_subcondition_and_arithmetic() {
    let db = db();
    let n = db
        .execute(
            "UPDATE emp SET salary = salary + 10 WHERE dept_oid IN (1, 2)",
            &Params::new(),
        )
        .unwrap()
        .affected();
    assert_eq!(n, 5);
    let rs = db
        .query("SELECT salary FROM emp WHERE name = 'Tim'", &Params::new())
        .unwrap();
    assert_eq!(rs.first("salary"), Some(&Value::Real(100.0)));
}

#[test]
fn self_join_with_aliases() {
    let db = db();
    // colleagues in the same department, strictly ordered to avoid dupes
    let rs = db
        .query(
            "SELECT a.name AS x, b.name AS y FROM emp a \
             INNER JOIN emp b ON b.dept_oid = a.dept_oid \
             WHERE a.oid < b.oid ORDER BY x, y",
            &Params::new(),
        )
        .unwrap();
    // Engineering: C(3,2)=3 pairs; Sales: 1 pair; Marketing: 0
    assert_eq!(rs.len(), 4);
}

#[test]
fn left_join_counts_unmatched() {
    let db = db();
    db.execute("INSERT INTO dept (name) VALUES ('Empty')", &Params::new())
        .unwrap();
    let rs = db
        .query(
            "SELECT d.name, COUNT(e.oid) AS n FROM dept d \
             LEFT JOIN emp e ON e.dept_oid = d.oid \
             GROUP BY d.name ORDER BY n DESC, d.name",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    let empty_row = (0..rs.len())
        .find(|&i| rs.get(i, "name") == Some(&Value::Text("Empty".into())))
        .unwrap();
    assert_eq!(rs.get(empty_row, "n"), Some(&Value::Integer(0)));
}

#[test]
fn distinct_on_expressions() {
    let db = db();
    let rs = db
        .query(
            "SELECT DISTINCT active FROM emp ORDER BY active",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn scalar_functions_in_where() {
    let db = db();
    let rs = db
        .query(
            "SELECT name FROM emp WHERE UPPER(name) = 'ADA'",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    let rs = db
        .query(
            "SELECT name FROM emp WHERE LENGTH(name) <= 3 ORDER BY name",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 3); // Ada, Don, Tim
}

#[test]
fn type_mismatch_on_insert_reported() {
    let db = db();
    let err = db
        .execute(
            "INSERT INTO emp (name, salary) VALUES ('X', 'not-a-number')",
            &Params::new(),
        )
        .unwrap_err();
    assert!(matches!(err, Error::TypeMismatch { .. }));
}

#[test]
fn unknown_references_are_precise_errors() {
    let db = db();
    assert!(matches!(
        db.query("SELECT * FROM ghost", &Params::new()).unwrap_err(),
        Error::UnknownTable(_)
    ));
    assert!(matches!(
        db.query("SELECT ghost FROM emp", &Params::new())
            .unwrap_err(),
        Error::UnknownColumn(_)
    ));
    assert!(matches!(
        db.query("SELECT name FROM emp WHERE oid = :missing", &Params::new())
            .unwrap_err(),
        Error::Parameter(_)
    ));
}

#[test]
fn order_by_multiple_keys_mixed_direction() {
    let db = db();
    let rs = db
        .query(
            "SELECT name, dept_oid FROM emp ORDER BY dept_oid DESC, name ASC",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.get(0, "name"), Some(&Value::Text("Don".into())));
    assert_eq!(rs.get(1, "name"), Some(&Value::Text("Ada".into())));
}

#[test]
fn limit_zero_and_huge_offset() {
    let db = db();
    assert_eq!(
        db.query("SELECT oid FROM emp LIMIT 0", &Params::new())
            .unwrap()
            .len(),
        0
    );
    assert_eq!(
        db.query("SELECT oid FROM emp LIMIT 10 OFFSET 100", &Params::new())
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn mysql_style_limit_comma() {
    let db = db();
    let rs = db
        .query(
            "SELECT oid FROM emp ORDER BY oid LIMIT 2, 3",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.first("oid"), Some(&Value::Integer(3)));
}

#[test]
fn qualified_wildcard_in_join() {
    let db = db();
    let rs = db
        .query(
            "SELECT e.*, d.name AS dept_name FROM emp e \
             INNER JOIN dept d ON d.oid = e.dept_oid WHERE e.oid = 1",
            &Params::new(),
        )
        .unwrap();
    assert!(rs.column_index("salary").is_some());
    assert_eq!(
        rs.first("dept_name"),
        Some(&Value::Text("Engineering".into()))
    );
}

#[test]
fn is_null_and_coalesce() {
    let db = db();
    db.execute(
        "INSERT INTO emp (name, salary) VALUES ('NullSal', NULL)",
        &Params::new(),
    )
    .unwrap();
    let rs = db
        .query(
            "SELECT COALESCE(salary, 0) AS s FROM emp WHERE salary IS NULL",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.first("s"), Some(&Value::Integer(0)));
    let rs = db
        .query(
            "SELECT COUNT(*) AS n FROM emp WHERE salary IS NOT NULL",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.first("n"), Some(&Value::Integer(6)));
}

#[test]
fn drop_table_referenced_semantics() {
    let db = db();
    // our engine allows dropping (constraints live on the referencing
    // table); after dropping dept, emp inserts with dept_oid fail cleanly
    db.execute("DROP TABLE dept", &Params::new()).unwrap();
    let err = db
        .execute(
            "INSERT INTO emp (name, dept_oid) VALUES ('Orphan', 1)",
            &Params::new(),
        )
        .unwrap_err();
    assert!(matches!(err, Error::UnknownTable(_)));
}

#[test]
fn comments_in_optimized_queries_are_tolerated() {
    // the §6 workflow appends /* hand-tuned */ markers to SQL
    let db = db();
    let rs = db
        .query(
            "SELECT oid FROM emp /* hand-tuned: forced index */ WHERE oid = 1 -- trailing",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
}
