//! Deploy wiring: one application, a leader, N replicas, M shards.
//!
//! [`deploy_replicated`] honors `webratio::DeployOptions::{replicas,
//! shards}`: the leader deploys durably (its WAL is the replication log),
//! each replica bootstraps by recovering the leader's snapshot + log into
//! its own store, then subscribes to the durable batch stream via
//! [`Wal::replay_from`] — the hole between "recovered to LSN x" and
//! "subscribed" is closed by replaying the tail under the observer lock.
//! The leader's vacuum horizon is pinned to the slowest replica so MVCC
//! versions a replica still needs are never reclaimed under it.

use mvc::{Controller, ServiceRegistry, WebRequest, WebResponse};
use presentation::DeviceRegistry;
use relstore::Database;
use std::sync::Arc;
use webratio::{
    apply_derived_indexes, pin_descriptor_plans, Application, DeployError, DeployOptions,
    Deployment, DurabilityConfig,
};

use crate::router::{ReplicaEndpoint, Router};
use crate::transport::{InProcessLink, ShippingObserver};
use crate::{Replica, ShardedStore};

/// A replicated (and optionally partitioned) deployment.
pub struct ReplicatedDeployment {
    /// The write side: a plain durable deployment.
    pub leader: Deployment,
    /// The routing tier in front of leader + replicas.
    pub router: Arc<Router>,
    pub replicas: Vec<Arc<Replica>>,
    /// The partitioned data tier, when `options.shards >= 2`. Runs beside
    /// the replicated store (shard routing is exercised directly and by
    /// the bench); folding the controller onto it is future work.
    pub sharded: Option<ShardedStore>,
}

impl ReplicatedDeployment {
    /// Service one request through the routing tier.
    pub fn handle(&self, req: &WebRequest) -> WebResponse {
        self.router.handle(req)
    }
}

/// Deploy `app` with `options.replicas` log-shipping read replicas behind
/// a [`Router`], and — when `options.shards >= 2` — a model-partitioned
/// [`ShardedStore`] bootstrapped from the same generated DDL.
///
/// `options.analysis` gates the deploy exactly like
/// `Application::deploy_checked`, but through
/// [`analyze::analyze_deployment`] with the requested topology — so the
/// distribution-safety passes (`AZ4xx`) run here and an `AZ401` (or any
/// other Error-severity finding) refuses the deploy at `Gate::Deny`
/// *before* any durable side effect. The report lands on
/// `leader.analysis`, and `AZ4xx` counts are exported as
/// `analyze_distribution_total{code}`.
pub fn deploy_replicated(
    app: &Application,
    options: DeployOptions,
    durability: &DurabilityConfig,
) -> Result<ReplicatedDeployment, DeployError> {
    let report = match options.analysis {
        analyze::Gate::Off => None,
        gate => {
            let t0 = std::time::Instant::now();
            let generated = app.generate().map_err(DeployError::Generation)?;
            let topo = analyze::Topology {
                replicas: options.replicas,
                shards: options.shards,
            };
            let report = analyze::analyze_deployment(
                &app.er,
                &app.mapping,
                &app.hypertext,
                &generated.descriptors,
                &topo,
            );
            let micros = t0.elapsed().as_micros() as u64;
            if gate == analyze::Gate::Deny && report.has_errors() {
                return Err(DeployError::Analysis(Box::new(report)));
            }
            Some((report, micros))
        }
    };

    let mut leader = app.deploy_durable(options.runtime.clone(), durability)?;
    if let Some((report, micros)) = report {
        leader.obs.analyze.runs.inc();
        leader.obs.analyze.analysis_micros.observe_us(micros);
        for ((code, severity), n) in report.code_counts() {
            leader.obs.analyze.record_diagnostics(code, severity, n);
            if code.starts_with("AZ4") {
                leader.obs.analyze.record_distribution(code, n);
            }
        }
        leader.analysis = Some(report);
    }
    let leader = leader;
    let wal = Arc::clone(
        leader
            .wal
            .as_ref()
            .expect("durable deploy always has a WAL"),
    );
    let registry = Arc::clone(&leader.obs);
    let generated = &leader.generated;

    let mut replicas = Vec::with_capacity(options.replicas);
    let mut endpoints = Vec::with_capacity(options.replicas);
    for i in 0..options.replicas {
        // bootstrap: recover the leader's snapshot + log tail into a
        // fresh store — schema arrives through logged DDL, so the replica
        // is structurally identical by construction
        let db = Arc::new(Database::with_counters(Arc::clone(&registry.db)));
        let info = wal.recover_into(&db).map_err(DeployError::Durability)?;
        apply_derived_indexes(&db, &generated.derived_indexes).map_err(DeployError::Schema)?;
        pin_descriptor_plans(&db, &generated.descriptors);
        let controller = Arc::new(Controller::with_shared_sessions(
            generated.descriptors.clone(),
            generated.skeletons.clone(),
            Arc::clone(&db),
            options.runtime.clone(),
            ServiceRegistry::standard(),
            DeviceRegistry::standard(),
            Arc::clone(&registry),
            Arc::clone(&leader.controller.sessions),
        ));
        let replica = Replica::new(
            format!("replica-{i}"),
            db,
            info.last_lsn,
            Arc::clone(&registry.repl),
        );
        // §6 invalidation runs per replica, against the replica's own
        // bean cache, driven by the same applied change stream
        if let Some(cache) = controller.bean_cache_arc() {
            replica.set_invalidator(Arc::new(webcache::LogDrivenInvalidator::new(cache)));
        }
        // subscribe through the serialization boundary; replay_from
        // delivers whatever the leader logged since recover_into, then
        // attaches for live batches with no window in between
        let link = Arc::new(InProcessLink::new(Arc::clone(&replica)));
        wal.replay_from(info.last_lsn, Arc::new(ShippingObserver::new(link)))
            .map_err(DeployError::Durability)?;
        endpoints.push(ReplicaEndpoint {
            replica: Arc::clone(&replica),
            controller,
        });
        replicas.push(replica);
    }

    // the leader must not vacuum MVCC versions a lagging replica has not
    // applied past: pin the vacuum horizon to the slowest replica
    if !replicas.is_empty() {
        let horizon_view: Vec<Arc<Replica>> = replicas.clone();
        leader.db.set_vacuum_horizon(Arc::new(move || {
            horizon_view
                .iter()
                .map(|r| r.applied_lsn())
                .min()
                .unwrap_or(u64::MAX)
        }));
    }

    let sharded = if options.shards >= 2 {
        let keys = codegen::derive_shard_keys(&app.er, &app.mapping, &app.hypertext);
        Some(
            ShardedStore::bootstrap(
                options.shards,
                &generated.ddl,
                &keys,
                Arc::clone(&registry.repl),
            )
            .map_err(DeployError::Schema)?,
        )
    } else {
        None
    };

    let router = Arc::new(Router::new(
        Arc::clone(&leader.controller),
        Arc::clone(&wal),
        endpoints,
        Arc::clone(&registry.repl),
    ));

    Ok(ReplicatedDeployment {
        leader,
        router,
        replicas,
        sharded,
    })
}
