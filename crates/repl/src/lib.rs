//! # repl — replication + partitioning: one app, N stores
//!
//! The paper's §6 ships cache-invalidation messages to *replicated* front
//! ends; this crate generalizes that stream into actual data replication
//! and adds model-derived partitioning, so reads scale past one
//! [`relstore::Database`]:
//!
//! * **log-shipping read replicas** ([`Replica`]) — each replica owns its
//!   own `Database` and consumes the leader's durable WAL batch stream
//!   (leader-based replication, the DDIA ch. 5 shape). Batches cross a
//!   real serialization boundary ([`transport`]) even in process, apply
//!   idempotently in LSN order, and drive a replica-side
//!   [`webcache::LogDrivenInvalidator`] exactly as §6 prescribes;
//! * **bounded-staleness routing** ([`Router`]) — writes go to the
//!   leader; reads go to a replica only if its `applied_lsn` has caught
//!   up with the session's last write (read-your-writes), else the leader
//!   serves them and `repl_stale_redirects_total` counts the redirect;
//! * **model-derived partitioning** ([`ShardedStore`]) — shard keys come
//!   from [`codegen::derive_shard_keys`] (unit access paths, like derived
//!   indexes); single-shard statements route directly, everything else
//!   fans out with an ordered merge + global LIMIT/OFFSET.
//!
//! Deploy wiring lives in [`deploy_replicated`], honoring
//! `webratio::DeployOptions::{replicas, shards}`. Lag, routed reads, and
//! duplicate-batch counts report into [`obs::ReplCounters`] and render at
//! `/metrics`.

pub mod deploy;
pub mod replica;
pub mod router;
pub mod shard;
pub mod transport;

pub use deploy::{deploy_replicated, ReplicatedDeployment};
pub use replica::Replica;
pub use router::{Router, LAST_WRITE_VAR};
pub use shard::ShardedStore;
pub use transport::{decode_frame, encode_frame, FrameSink, InProcessLink, ShippingObserver};
