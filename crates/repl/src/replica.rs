//! A log-shipping read replica: its own [`Database`], fed by the leader's
//! durable batch stream, applying idempotently in LSN order.

use mvc::UnitBean;
use parking_lot::RwLock;
use relstore::{ChangeRecord, Database};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wal::SnapshotData;
use webcache::LogDrivenInvalidator;

/// One read replica. Owns a full copy of the data tier, tracks the last
/// LSN it has applied, and (optionally) invalidates its own bean cache
/// from each applied batch — the paper's §6 invalidation, per replica.
///
/// Apply is **idempotent**: a batch with `lsn <= applied_lsn` is counted
/// as a duplicate and skipped, so reconnect replays (`Wal::replay_from`
/// overlapping the live stream) converge instead of corrupting state.
pub struct Replica {
    name: String,
    db: Arc<Database>,
    applied: AtomicU64,
    gauges: Arc<obs::ReplicaGauges>,
    counters: Arc<obs::ReplCounters>,
    invalidator: RwLock<Option<Arc<LogDrivenInvalidator<UnitBean>>>>,
}

impl Replica {
    /// Wrap `db` (already bootstrapped to `applied_lsn`; 0 for empty) as
    /// a replica named `name` in the registry's gauge families.
    pub fn new(
        name: impl Into<String>,
        db: Arc<Database>,
        applied_lsn: u64,
        counters: Arc<obs::ReplCounters>,
    ) -> Arc<Replica> {
        let name = name.into();
        let gauges = counters.replica_gauges(&name);
        gauges.applied_lsn.set(applied_lsn as i64);
        Arc::new(Replica {
            name,
            db,
            applied: AtomicU64::new(applied_lsn),
            gauges,
            counters,
            invalidator: RwLock::new(None),
        })
    }

    /// Invalidate this bean cache after every applied batch (wire the
    /// replica controller's own cache here, not the leader's).
    pub fn set_invalidator(&self, inv: Arc<LogDrivenInvalidator<UnitBean>>) {
        *self.invalidator.write() = Some(inv);
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Last LSN fully applied (readers at or below this are satisfied).
    pub fn applied_lsn(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Refresh this replica's lag gauge against the leader's LSN.
    pub fn refresh_lag(&self, leader_lsn: u64) {
        let lag = leader_lsn.saturating_sub(self.applied_lsn());
        self.gauges.lag_lsn.set(lag as i64);
    }

    /// Apply one durable batch. Returns `false` (and counts a duplicate)
    /// when the batch was already applied. Panics if the change stream
    /// diverges from the replica's state — with idempotent physical
    /// replay that indicates a torn transport, not a data race.
    pub fn apply_batch(&self, lsn: u64, changes: &[ChangeRecord]) -> bool {
        if lsn <= self.applied.load(Ordering::SeqCst) {
            self.counters.batches_duplicate.inc();
            return false;
        }
        for c in changes {
            self.db.apply_change(c).unwrap_or_else(|e| {
                panic!("replica {} diverged applying lsn {lsn}: {e}", self.name)
            });
        }
        self.applied.store(lsn, Ordering::SeqCst);
        self.gauges.applied_lsn.set(lsn as i64);
        self.counters.batches_applied.inc();
        if let Some(inv) = self.invalidator.read().as_ref() {
            inv.apply(changes);
        }
        true
    }

    /// Write this replica's own recovery snapshot (applied LSN + tables),
    /// so a crashed replica restarts from local state and only replays
    /// the tail via `Wal::replay_from(applied_lsn, ...)`.
    pub fn snapshot_to(&self, path: &Path) -> io::Result<u64> {
        let (tables, lsn) = self.db.freeze_tables(|| self.applied_lsn());
        let snap = SnapshotData::from_frozen(&tables, lsn);
        wal::snapshot::write_snapshot(path, &snap)?;
        Ok(lsn)
    }

    /// Restore a replica database from [`Replica::snapshot_to`] output:
    /// returns the fresh database and the LSN it is caught up to (0 when
    /// no snapshot exists yet).
    pub fn restore_db(path: &Path) -> io::Result<(Arc<Database>, u64)> {
        let db = Arc::new(Database::new());
        let lsn = match wal::snapshot::load_snapshot(path)? {
            Some(snap) => {
                let lsn = snap.last_lsn;
                snap.restore_into(&db)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                lsn
            }
            None => 0,
        };
        Ok((db, lsn))
    }

    /// Default snapshot path for replica `name` under `dir`.
    pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.snap"))
    }
}

/// Direct (unserialized) observer wiring, for tests that want to bypass
/// the frame transport. Production wiring goes through
/// [`crate::ShippingObserver`] + [`crate::InProcessLink`].
impl wal::LogObserver for Replica {
    fn on_durable(&self, lsn: u64, changes: &[ChangeRecord]) {
        self.apply_batch(lsn, changes);
    }
}
