//! The routing tier: writes to the leader, reads to caught-up replicas.
//!
//! Staleness contract (monotonic enough for a web session, DDIA ch. 5):
//!
//! * **read-your-writes** — after an operation commits on the leader, the
//!   session's `__last_write_lsn` var records the leader's append LSN;
//!   a later read is served by a replica only if that replica's
//!   `applied_lsn` has reached it, else the leader serves the read and
//!   `repl_stale_redirects_total` counts the redirect;
//! * **bounded staleness** — replicas apply only durable batches, so a
//!   replica read is at most one group-commit window plus apply latency
//!   behind the leader, and never behind the session's own writes.
//!
//! The session store is shared (`Controller::with_shared_sessions`), so
//! the LSN watermark written on the leader is visible to every replica
//! controller resolving the same cookie.

use descriptors::ActionKind;
use mvc::{Controller, WebRequest, WebResponse};
use relstore::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::Replica;

/// Reserved session variable holding the session's last write LSN.
pub const LAST_WRITE_VAR: &str = "__last_write_lsn";

/// One replica endpoint: the apply loop plus a controller over its store.
pub struct ReplicaEndpoint {
    pub replica: Arc<Replica>,
    pub controller: Arc<Controller>,
}

/// The request router in front of `mvc`.
pub struct Router {
    leader: Arc<Controller>,
    wal: Arc<wal::Wal>,
    replicas: Vec<ReplicaEndpoint>,
    counters: Arc<obs::ReplCounters>,
    rr: AtomicUsize,
}

impl Router {
    pub fn new(
        leader: Arc<Controller>,
        wal: Arc<wal::Wal>,
        replicas: Vec<ReplicaEndpoint>,
        counters: Arc<obs::ReplCounters>,
    ) -> Router {
        Router {
            leader,
            wal,
            replicas,
            counters,
            rr: AtomicUsize::new(0),
        }
    }

    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    pub fn leader(&self) -> &Arc<Controller> {
        &self.leader
    }

    pub fn replicas(&self) -> &[ReplicaEndpoint] {
        &self.replicas
    }

    /// Refresh every replica's lag gauge against the leader's append LSN.
    pub fn refresh_lag(&self) {
        let leader_lsn = self.wal.appended_lsn();
        for ep in &self.replicas {
            ep.replica.refresh_lag(leader_lsn);
        }
    }

    /// Is `path` a write (operation chain) under the leader's descriptor
    /// set? Unknown paths count as reads; the leader serves their 404.
    fn is_write(&self, path: &str) -> bool {
        matches!(
            self.leader
                .descriptor_set()
                .controller
                .resolve(path)
                .map(|m| &m.kind),
            Some(ActionKind::Operation { .. })
        )
    }

    /// The LSN this session must not read below (its last write), from
    /// the shared session store. 0 for fresh/anonymous sessions.
    fn session_floor(&self, req: &WebRequest) -> u64 {
        let Some(sid) = req.session.as_deref() else {
            return 0;
        };
        let Some(session) = self.leader.sessions.get(sid) else {
            return 0;
        };
        let guard = session.lock();
        match guard.vars.get(LAST_WRITE_VAR) {
            Some(Value::Integer(lsn)) => *lsn as u64,
            _ => 0,
        }
    }

    /// Record the session's new write watermark after a leader write.
    fn record_write(&self, sid: &str, lsn: u64) {
        if let Some(session) = self.leader.sessions.get(sid) {
            session
                .lock()
                .vars
                .insert(LAST_WRITE_VAR.to_string(), Value::Integer(lsn as i64));
        }
    }

    /// Service one request: operations on the leader (recording the
    /// session's write LSN), page reads on the first caught-up replica in
    /// round-robin order, falling back to the leader when every replica
    /// lags the session's own writes.
    pub fn handle(&self, req: &WebRequest) -> WebResponse {
        if self.is_write(&req.path) {
            let resp = self.leader.handle(req);
            // the append LSN covers this operation's commits; non-strict
            // commits may not be durable yet, which is exactly why a
            // replica (which only sees durable batches) must catch up to
            // it before serving this session again
            let lsn = self.wal.appended_lsn();
            if let Some(sid) = resp.set_session.as_deref().or(req.session.as_deref()) {
                self.record_write(sid, lsn);
            }
            self.refresh_lag();
            return resp;
        }

        let floor = self.session_floor(req);
        if !self.replicas.is_empty() {
            let start = self.rr.fetch_add(1, Ordering::Relaxed);
            for k in 0..self.replicas.len() {
                let ep = &self.replicas[(start + k) % self.replicas.len()];
                if ep.replica.applied_lsn() >= floor {
                    self.counters.record_read(ep.replica.name());
                    return ep.controller.handle(req);
                }
            }
            // every replica lags this session's last write
            self.counters.stale_redirects.inc();
        }
        self.counters.record_read("leader");
        self.leader.handle(req)
    }
}
