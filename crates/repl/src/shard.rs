//! Model-derived hash partitioning: one logical store, N physical shards.
//!
//! Shard keys come from [`codegen::derive_shard_keys`] — the same unit
//! access paths that drive derived indexes decide how rows spread across
//! stores, so the model (not a DBA) places the data. Routing rules:
//!
//! * DDL runs on every shard (schemas stay identical);
//! * an INSERT routes by its shard-key value; OID-keyed tables mint a
//!   *global* id first so surrogate keys stay unique across shards;
//! * UPDATE/DELETE/SELECT with a shard-key equality in the WHERE clause
//!   touch exactly one shard — the unit-query hot path (`unit.oid = ?`,
//!   `child.fk = ?`) stays single-shard by construction;
//! * anything else fans out to all shards and merges: ordered merge via
//!   `Value::total_cmp`, per-shard `LIMIT limit+offset` pushdown, then
//!   global DISTINCT/OFFSET/LIMIT. `COUNT(*)` sums per-shard counts.
//!
//! Which statements are routable is NOT decided here: the store dispatches
//! on [`analyze::routing`], the same pure classifier the deploy-time
//! distribution pass lowers generated statements through — a statement the
//! analyzer calls `AZ401` is exactly a statement this store rejects, with
//! the same explanation ([`Unroutable::explain`]). Deliberate restrictions
//! (surfaced as `Error::Unsupported`, never wrong answers): cross-shard
//! GROUP BY/aggregates beyond `COUNT(*)`, multi-statement transactions,
//! inserts without a column list or a routable shard-key value, and
//! fan-out ORDER BY keys missing from the projection.

use analyze::routing::{
    self, DmlRouting, InsertRouting, RejectRule, SelectRouting, ShardKeyMap, Unroutable,
};
use codegen::ShardKey;
use parking_lot::Mutex;
use relstore::sql::ast::{Expr, Insert, Select, Statement};
use relstore::{Database, Error, ExecResult, Params, ResultSet, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// N databases behind one SQL front door.
pub struct ShardedStore {
    shards: Vec<Arc<Database>>,
    /// table → shard-key column, from the model derivation.
    keys: ShardKeyMap,
    /// Global surrogate-key mint: next OID per table, so auto-assigned
    /// ids never collide across shards.
    oid_next: Mutex<HashMap<String, i64>>,
    counters: Arc<obs::ReplCounters>,
}

/// FNV-1a over a canonical byte encoding of the routing value.
fn hash_value(v: &Value) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match v {
        Value::Integer(i) => eat(&i.to_le_bytes()),
        Value::Text(s) => eat(s.as_bytes()),
        other => eat(other.render().as_bytes()),
    }
    h
}

/// Evaluate a routing expression the classifier has already vetted as
/// [`routing::is_routable_value`] — literals and bound parameters.
fn eval_route(e: &Expr, params: &Params) -> relstore::Result<Value> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => params.get_positional(*i).cloned(),
        Expr::NamedParam(n) => params.get_named(n).cloned(),
        _ => Err(Error::Unsupported(
            "shard routing needs a literal or parameter value".into(),
        )),
    }
}

/// Render a classifier rejection as the store's runtime error — one
/// explanation shared with the deploy-time `AZ401` diagnostic.
fn unsupported(rule: RejectRule, sql: &str) -> Error {
    Error::Unsupported(Unroutable::new(rule, sql.trim()).explain())
}

impl ShardedStore {
    /// Wrap already-bootstrapped shards. `keys` normally comes straight
    /// from [`codegen::derive_shard_keys`]; tables it does not mention
    /// route by `oid`.
    pub fn new(
        shards: Vec<Arc<Database>>,
        keys: &[ShardKey],
        counters: Arc<obs::ReplCounters>,
    ) -> ShardedStore {
        assert!(shards.len() >= 2, "a sharded store needs at least 2 shards");
        ShardedStore {
            shards,
            keys: ShardKeyMap::new(keys),
            oid_next: Mutex::new(HashMap::new()),
            counters,
        }
    }

    /// Create `n` empty shards and run `ddl` on each.
    pub fn bootstrap(
        n: usize,
        ddl: &str,
        keys: &[ShardKey],
        counters: Arc<obs::ReplCounters>,
    ) -> relstore::Result<ShardedStore> {
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let db = Arc::new(Database::new());
            if !ddl.trim().is_empty() {
                db.execute_script(ddl)?;
            }
            shards.push(db);
        }
        Ok(ShardedStore::new(shards, keys, counters))
    }

    pub fn shards(&self) -> &[Arc<Database>] {
        &self.shards
    }

    /// The shard-key column a table routes by (`oid` by default).
    pub fn shard_key(&self, table: &str) -> &str {
        self.keys.key_of(table)
    }

    /// Which shard holds rows of `table` whose shard key equals `value`.
    pub fn shard_for(&self, value: &Value) -> usize {
        (hash_value(value) % self.shards.len() as u64) as usize
    }

    fn record_read(&self, shard: usize) {
        self.counters.record_read(&format!("shard-{shard}"));
    }

    /// Execute one statement against the sharded store.
    pub fn execute(&self, sql: &str, params: &Params) -> relstore::Result<ExecResult> {
        let stmt = relstore::parse_statement(sql)?;
        match stmt {
            Statement::CreateTable(_) | Statement::CreateIndex(_) | Statement::DropTable { .. } => {
                let shared = Arc::new(stmt);
                for db in &self.shards {
                    db.execute_prepared(&shared, params)?;
                }
                Ok(ExecResult::Affected(0))
            }
            Statement::Insert(ins) => self.execute_insert(sql, ins, params),
            Statement::Update(ref upd) => self.execute_dml(
                &stmt,
                routing::dml_routing(&upd.table, upd.where_clause.as_ref(), &self.keys),
                params,
            ),
            Statement::Delete(ref del) => self.execute_dml(
                &stmt,
                routing::dml_routing(&del.table, del.where_clause.as_ref(), &self.keys),
                params,
            ),
            Statement::Select(sel) => self.execute_select(sql, sel, params).map(ExecResult::Rows),
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                Err(unsupported(RejectRule::MultiStatementTxn, sql))
            }
        }
    }

    /// Execute a SELECT, returning its rows.
    pub fn query(&self, sql: &str, params: &Params) -> relstore::Result<ResultSet> {
        match self.execute(sql, params)? {
            ExecResult::Rows(rs) => Ok(rs),
            ExecResult::Affected(_) => Err(Error::Unsupported("not a SELECT".into())),
        }
    }

    fn execute_insert(
        &self,
        sql: &str,
        ins: Insert,
        params: &Params,
    ) -> relstore::Result<ExecResult> {
        let plan = routing::insert_routing(&ins, &self.keys).map_err(|r| unsupported(r, sql))?;
        let key = self.shard_key(&ins.table).to_string();
        let mut affected = 0usize;
        for row in &ins.rows {
            let one = Insert {
                table: ins.table.clone(),
                columns: ins.columns.clone(),
                rows: vec![row.clone()],
            };
            affected += match plan {
                InsertRouting::ByKeyColumn(pos) => {
                    let v = eval_route(&row[pos], params)?;
                    // explicit surrogate keys must advance the global
                    // mint, or a later auto-insert would collide
                    if key == "oid" {
                        if let Value::Integer(i) = v {
                            let mut mint = self.oid_next.lock();
                            let next = mint.entry(ins.table.to_lowercase()).or_insert(1);
                            *next = (*next).max(i + 1);
                        }
                    }
                    let target = self.shard_for(&v);
                    let stmt = Arc::new(Statement::Insert(one));
                    self.shards[target]
                        .execute_prepared(&stmt, params)?
                        .affected()
                }
                InsertRouting::ByMintedOid => {
                    // auto-assigned surrogate: mint a global id, force the
                    // target shard's counter to it, insert — the shard
                    // assigns exactly the minted id because every insert
                    // (routed or explicit) keeps per-shard counters ≤ mint
                    let g = {
                        let mut mint = self.oid_next.lock();
                        let next = mint.entry(ins.table.to_lowercase()).or_insert(1);
                        let g = *next;
                        *next = g + 1;
                        g
                    };
                    let target = self.shard_for(&Value::Integer(g));
                    self.shards[target].set_auto_counter(&ins.table, g)?;
                    let stmt = Arc::new(Statement::Insert(one));
                    self.shards[target]
                        .execute_prepared(&stmt, params)?
                        .affected()
                }
            };
        }
        Ok(ExecResult::Affected(affected))
    }

    fn execute_dml(
        &self,
        stmt: &Statement,
        plan: DmlRouting,
        params: &Params,
    ) -> relstore::Result<ExecResult> {
        let stmt = Arc::new(stmt.clone());
        match plan {
            DmlRouting::SingleShard(v) => {
                let v = eval_route(&v, params)?;
                self.shards[self.shard_for(&v)].execute_prepared(&stmt, params)
            }
            DmlRouting::Fanout => {
                let mut affected = 0usize;
                for db in &self.shards {
                    affected += db.execute_prepared(&stmt, params)?.affected();
                }
                Ok(ExecResult::Affected(affected))
            }
        }
    }

    fn execute_select(
        &self,
        sql: &str,
        sel: Select,
        params: &Params,
    ) -> relstore::Result<ResultSet> {
        match routing::select_routing(&sel, &self.keys).map_err(|r| unsupported(r, sql))? {
            SelectRouting::AnyShard => {
                // no FROM: any shard computes the same scalars
                self.record_read(0);
                let stmt = Arc::new(Statement::Select(sel));
                self.shards[0].query_prepared(&stmt, params)
            }
            SelectRouting::SingleShard(v) => {
                // shard-key equality on the base table — this is what
                // keeps model unit queries on exactly one store
                let v = eval_route(&v, params)?;
                let target = self.shard_for(&v);
                self.record_read(target);
                let stmt = Arc::new(Statement::Select(sel));
                self.shards[target].query_prepared(&stmt, params)
            }
            SelectRouting::FanoutCount => self.fanout_count(&sel, params),
            SelectRouting::FanoutMerge => self.fanout_merge(sql, sel, params),
        }
    }

    /// `SELECT COUNT(*)` over all shards: counts add.
    fn fanout_count(&self, sel: &Select, params: &Params) -> relstore::Result<ResultSet> {
        let stmt = Arc::new(Statement::Select(sel.clone()));
        let mut total: i64 = 0;
        let mut columns: Vec<String> = Vec::new();
        for (i, db) in self.shards.iter().enumerate() {
            self.record_read(i);
            let rs = db.query_prepared(&stmt, params)?;
            if columns.is_empty() {
                columns = rs.columns().to_vec();
            }
            if let Some(Value::Integer(n)) = rs.rows().first().and_then(|r| r.first()) {
                total += n;
            }
        }
        Ok(ResultSet::new(columns, vec![vec![Value::Integer(total)]]))
    }

    /// Scatter, gather, merge: per-shard `LIMIT limit+offset` pushdown,
    /// global ORDER BY via `total_cmp`, then DISTINCT/OFFSET/LIMIT.
    fn fanout_merge(&self, sql: &str, sel: Select, params: &Params) -> relstore::Result<ResultSet> {
        let limit = match sel.limit.as_ref() {
            Some(e) => match eval_route(e, params)? {
                Value::Integer(n) if n >= 0 => Some(n as usize),
                v => {
                    return Err(Error::Unsupported(format!(
                        "LIMIT must be a non-negative integer, got {}",
                        v.render()
                    )))
                }
            },
            None => None,
        };
        let offset = match sel.offset.as_ref() {
            Some(e) => match eval_route(e, params)? {
                Value::Integer(n) if n >= 0 => n as usize,
                v => {
                    return Err(Error::Unsupported(format!(
                        "OFFSET must be a non-negative integer, got {}",
                        v.render()
                    )))
                }
            },
            None => 0,
        };

        // per-shard statement: Top-(limit+offset) pushdown, no offset —
        // the global winner set is a subset of each shard's local top
        let mut per_shard = sel.clone();
        per_shard.offset = None;
        per_shard.limit = limit.map(|l| Expr::Literal(Value::Integer((l + offset) as i64)));
        // DISTINCT stays pushed down too (local dedupe shrinks transfer);
        // the global pass below dedupes across shards.
        let stmt = Arc::new(Statement::Select(per_shard));

        let mut columns: Vec<String> = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (i, db) in self.shards.iter().enumerate() {
            self.record_read(i);
            let rs = db.query_prepared(&stmt, params)?;
            if columns.is_empty() {
                columns = rs.columns().to_vec();
            }
            rows.extend(rs.into_rows());
        }

        // global ORDER BY: the classifier proved every key is projected,
        // so failing to resolve one here would be a drift bug — reject
        // loudly rather than silently keeping concat order
        let probe = ResultSet::new(columns.clone(), Vec::new());
        let mut sort_keys: Vec<(usize, bool)> = Vec::with_capacity(sel.order_by.len());
        for o in &sel.order_by {
            let Expr::Column { name, .. } = &o.expr else {
                return Err(unsupported(
                    RejectRule::OrderByNotMergeable {
                        column: "<expression>".into(),
                    },
                    sql,
                ));
            };
            let idx = probe
                .column_index(name)
                .or_else(|| columns.iter().position(|c| c.eq_ignore_ascii_case(name)));
            match idx {
                Some(idx) => sort_keys.push((idx, o.ascending)),
                None => {
                    return Err(unsupported(
                        RejectRule::OrderByNotMergeable {
                            column: name.clone(),
                        },
                        sql,
                    ))
                }
            }
        }
        if !sort_keys.is_empty() {
            rows.sort_by(|a, b| {
                for (idx, asc) in &sort_keys {
                    let ord = a[*idx].total_cmp(&b[*idx]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        if sel.distinct {
            let mut seen: Vec<Vec<Value>> = Vec::new();
            rows.retain(|r| {
                if seen.contains(r) {
                    false
                } else {
                    seen.push(r.clone());
                    true
                }
            });
        }

        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .skip(offset)
            .take(limit.unwrap_or(usize::MAX))
            .collect();
        Ok(ResultSet::new(columns, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ShardedStore {
        let keys = vec![ShardKey {
            table: "issue".into(),
            column: "volume_oid".into(),
            reasons: vec!["test".into()],
        }];
        let s = ShardedStore::bootstrap(
            3,
            "CREATE TABLE volume (oid INTEGER NOT NULL AUTOINCREMENT, title TEXT, PRIMARY KEY (oid));\n\
             CREATE TABLE issue (oid INTEGER NOT NULL AUTOINCREMENT, volume_oid INTEGER, number INTEGER, PRIMARY KEY (oid));",
            &keys,
            Arc::new(obs::ReplCounters::new()),
        )
        .expect("bootstrap");
        for i in 1..=9 {
            s.execute(
                "INSERT INTO volume (title) VALUES (?)",
                &Params::positional([Value::Text(format!("vol {i}"))]),
            )
            .expect("insert volume");
        }
        for v in 1..=9i64 {
            for n in 1..=2i64 {
                s.execute(
                    "INSERT INTO issue (volume_oid, number) VALUES (?, ?)",
                    &Params::positional([Value::Integer(v), Value::Integer(n)]),
                )
                .expect("insert issue");
            }
        }
        s
    }

    #[test]
    fn auto_oids_are_globally_unique_and_spread() {
        let s = store();
        let mut oids: Vec<i64> = Vec::new();
        let mut populated = 0;
        for db in s.shards() {
            let rs = db.query("SELECT oid FROM volume", &Params::new()).unwrap();
            if !rs.is_empty() {
                populated += 1;
            }
            for r in rs.rows() {
                if let Value::Integer(i) = r[0] {
                    oids.push(i);
                }
            }
        }
        oids.sort_unstable();
        assert_eq!(oids, (1..=9).collect::<Vec<i64>>(), "dense, no collisions");
        assert!(populated >= 2, "9 rows should spread past one shard");
    }

    #[test]
    fn key_equality_routes_to_exactly_one_shard() {
        let s = store();
        let counters = Arc::clone(&s.counters);
        let before: u64 = (0..3)
            .map(|i| counters.reads_for(&format!("shard-{i}")))
            .sum();
        let rs = s
            .query(
                "SELECT oid, title FROM volume WHERE oid = ?",
                &Params::positional([Value::Integer(5)]),
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.first("title"), Some(&Value::Text("vol 5".into())));
        let after: u64 = (0..3)
            .map(|i| counters.reads_for(&format!("shard-{i}")))
            .sum();
        assert_eq!(after - before, 1, "exactly one shard touched");

        // fk-keyed children of one parent are co-located: also one shard
        let before = after;
        let rs = s
            .query(
                "SELECT oid, number FROM issue WHERE volume_oid = ? ORDER BY number",
                &Params::positional([Value::Integer(4)]),
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        let after: u64 = (0..3)
            .map(|i| counters.reads_for(&format!("shard-{i}")))
            .sum();
        assert_eq!(after - before, 1, "unit query stays single-shard");
    }

    #[test]
    fn fanout_merges_order_limit_and_count() {
        let s = store();
        let rs = s
            .query(
                "SELECT oid, title FROM volume ORDER BY oid DESC LIMIT 3 OFFSET 1",
                &Params::new(),
            )
            .unwrap();
        let oids: Vec<i64> = rs
            .rows()
            .iter()
            .map(|r| match r[0] {
                Value::Integer(i) => i,
                _ => panic!("oid"),
            })
            .collect();
        assert_eq!(oids, vec![8, 7, 6], "global Top-K after offset");

        let rs = s
            .query("SELECT COUNT(*) FROM issue", &Params::new())
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Integer(18));

        let rs = s
            .query(
                "SELECT DISTINCT number FROM issue ORDER BY number",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.len(), 2, "global DISTINCT across shards");
    }

    #[test]
    fn dml_routes_and_fans_out() {
        let s = store();
        // routed update: one shard
        let n = s
            .execute(
                "UPDATE volume SET title = ? WHERE oid = ?",
                &Params::positional([Value::Text("renamed".into()), Value::Integer(3)]),
            )
            .unwrap()
            .affected();
        assert_eq!(n, 1);
        let rs = s
            .query(
                "SELECT title FROM volume WHERE oid = ?",
                &Params::positional([Value::Integer(3)]),
            )
            .unwrap();
        assert_eq!(rs.first("title"), Some(&Value::Text("renamed".into())));

        // fan-out delete sums across shards
        let n = s
            .execute(
                "DELETE FROM issue WHERE number = ?",
                &Params::positional([Value::Integer(2)]),
            )
            .unwrap()
            .affected();
        assert_eq!(n, 9);
        let rs = s
            .query("SELECT COUNT(*) FROM issue", &Params::new())
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Integer(9));
    }

    #[test]
    fn unsupported_shapes_fail_loudly_not_wrongly() {
        let s = store();
        assert!(matches!(
            s.execute("BEGIN", &Params::new()),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            s.query(
                "SELECT volume_oid, COUNT(*) FROM issue GROUP BY volume_oid",
                &Params::new()
            ),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(
            s.execute("INSERT INTO issue VALUES (99, 1, 1)", &Params::new()),
            Err(Error::Unsupported(_))
        ));
        // a fan-out whose ORDER BY key is not projected cannot be merged:
        // reject, never return a wrongly-ordered concatenation
        assert!(matches!(
            s.query("SELECT title FROM volume ORDER BY oid", &Params::new()),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn rejections_render_the_shared_explanation() {
        let s = store();
        let Err(Error::Unsupported(msg)) = s.execute("BEGIN", &Params::new()) else {
            panic!("BEGIN must be rejected");
        };
        assert!(msg.starts_with("sharding: "), "{msg}");
        assert!(msg.contains("BEGIN"), "carries the statement: {msg}");

        let Err(Error::Unsupported(msg)) =
            s.execute("INSERT INTO issue VALUES (99, 1, 1)", &Params::new())
        else {
            panic!("column-less INSERT must be rejected");
        };
        assert!(msg.contains("must list its columns"), "{msg}");
        assert!(msg.contains("INSERT INTO issue VALUES (99, 1, 1)"), "{msg}");
    }

    #[test]
    fn explicit_oids_bump_the_global_mint() {
        let keys: Vec<ShardKey> = Vec::new();
        let s = ShardedStore::bootstrap(
            2,
            "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT, x INTEGER, PRIMARY KEY (oid))",
            &keys,
            Arc::new(obs::ReplCounters::new()),
        )
        .unwrap();
        s.execute(
            "INSERT INTO t (oid, x) VALUES (?, ?)",
            &Params::positional([Value::Integer(10), Value::Integer(0)]),
        )
        .unwrap();
        s.execute(
            "INSERT INTO t (x) VALUES (?)",
            &Params::positional([Value::Integer(1)]),
        )
        .unwrap();
        let mut oids: Vec<i64> = Vec::new();
        for db in s.shards() {
            for r in db
                .query("SELECT oid FROM t", &Params::new())
                .unwrap()
                .rows()
            {
                if let Value::Integer(i) = r[0] {
                    oids.push(i);
                }
            }
        }
        oids.sort_unstable();
        assert_eq!(oids, vec![10, 11], "auto id minted past the explicit one");
    }
}
