//! The replication transport boundary.
//!
//! Pidkameny's tier-separation argument (and plain DDIA ch. 5 hygiene)
//! says the leader→replica hop must be a *serialization* boundary even
//! when both ends live in one process: the leader encodes each durable
//! batch to the WAL's own wire framing, and the replica decodes it back —
//! so a socket transport can slot in later by moving bytes instead of
//! `Arc`s, and framing bugs surface in process first.
//!
//! One frame is exactly one WAL record (`len | lsn | crc | payload`, see
//! `wal::record`), so the stream a replica consumes is byte-compatible
//! with the log the leader writes.

use relstore::ChangeRecord;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wal::record::{append_record, scan_log, LOG_MAGIC};

/// Receiving end of a replication link: consumes encoded frames.
pub trait FrameSink: Send + Sync {
    fn ship(&self, frame: &[u8]);
}

/// Encode one durable batch as a self-checking wire frame.
pub fn encode_frame(lsn: u64, changes: &[ChangeRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    append_record(&mut buf, lsn, changes);
    buf
}

/// Decode a frame produced by [`encode_frame`]. `None` when the frame is
/// torn or fails its checksum — a real transport would NAK and re-request.
pub fn decode_frame(frame: &[u8]) -> Option<(u64, Vec<ChangeRecord>)> {
    // reuse the log scanner: a frame is a record, so magic + frame is a
    // well-formed single-record log
    let mut bytes = Vec::with_capacity(LOG_MAGIC.len() + frame.len());
    bytes.extend_from_slice(LOG_MAGIC);
    bytes.extend_from_slice(frame);
    let scan = scan_log(&bytes);
    if !matches!(scan.outcome, wal::ScanOutcome::Clean) || scan.records.len() != 1 {
        return None;
    }
    scan.records.into_iter().next()
}

/// Leader-side [`wal::LogObserver`] that serializes every durable batch
/// and ships it down a [`FrameSink`]. Attach via `Wal::replay_from` so a
/// (re)connecting replica receives the history it missed first.
pub struct ShippingObserver {
    sink: Arc<dyn FrameSink>,
    frames: AtomicU64,
    bytes: AtomicU64,
}

impl ShippingObserver {
    pub fn new(sink: Arc<dyn FrameSink>) -> ShippingObserver {
        ShippingObserver {
            sink,
            frames: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    pub fn frames_shipped(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    pub fn bytes_shipped(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl wal::LogObserver for ShippingObserver {
    fn on_durable(&self, lsn: u64, changes: &[ChangeRecord]) {
        let frame = encode_frame(lsn, changes);
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.sink.ship(&frame);
    }
}

/// The in-process link: decodes each frame and applies it to a replica
/// synchronously. The socket transport of the future replaces exactly
/// this type.
pub struct InProcessLink {
    replica: Arc<crate::Replica>,
}

impl InProcessLink {
    pub fn new(replica: Arc<crate::Replica>) -> InProcessLink {
        InProcessLink { replica }
    }
}

impl FrameSink for InProcessLink {
    fn ship(&self, frame: &[u8]) {
        let (lsn, changes) = decode_frame(frame).expect("replication frame failed its checksum");
        self.replica.apply_batch(lsn, &changes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Value;

    #[test]
    fn frame_round_trip() {
        let changes = vec![ChangeRecord::Insert {
            table: "t".into(),
            row_id: 3,
            row: vec![Value::Integer(7), Value::Text("x".into())],
        }];
        let frame = encode_frame(42, &changes);
        let (lsn, got) = decode_frame(&frame).expect("clean frame decodes");
        assert_eq!(lsn, 42);
        assert_eq!(got, changes);
    }

    #[test]
    fn torn_or_corrupt_frames_are_rejected() {
        let frame = encode_frame(
            1,
            &[ChangeRecord::Ddl {
                sql: "CREATE TABLE t (oid INTEGER PRIMARY KEY)".into(),
            }],
        );
        assert!(decode_frame(&frame[..frame.len() - 1]).is_none(), "torn");
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(decode_frame(&bad).is_none(), "corrupt");
    }
}
