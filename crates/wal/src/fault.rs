//! Deterministic fault injection for the durability subsystem.
//!
//! Crashes are simulated by killing the *log writer*, not the process: when
//! a [`CrashPlan`] trips, the writer stops touching the file (optionally
//! after writing a deliberately torn tail) and marks itself crashed, so the
//! test can drop everything and run recovery against the bytes that would
//! have survived a real power cut at that instant. Because the plan names
//! an exact flush ordinal, every crash point is exactly reproducible —
//! recovery properties can be checked by enumeration rather than luck.

use std::fs::OpenOptions;
use std::io;
use std::path::Path;

/// Where, relative to one physical flush, the simulated crash strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die before any byte of the batch reaches the file: the whole batch
    /// (and everything after it) is lost.
    BeforeFlush,
    /// Die after writing a *prefix* of the batch's final record: the tail
    /// of the file is torn mid-record, earlier records of the batch are
    /// intact.
    MidRecord,
    /// Die immediately after write + sync: the batch is durable; only
    /// later batches are lost.
    AfterFlush,
}

/// A deterministic crash instruction: trip at the `ordinal`-th non-empty
/// flush (1-based), at the given point.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashPlan {
    pub point: Option<(CrashPoint, u64)>,
    /// Fail the `ordinal`-th flush with a *real* I/O error (EIO-style)
    /// instead of a simulated power loss. Unlike a crash point — which the
    /// writer absorbs silently, because a dead machine acks nothing — an
    /// I/O error must be surfaced loudly: the kernel said no, but the
    /// process is still alive and its callers are still waiting for acks.
    pub io_error: Option<u64>,
}

impl CrashPlan {
    /// Never crash.
    pub fn none() -> CrashPlan {
        CrashPlan::default()
    }

    /// Crash at flush number `ordinal` (1-based), at `point`.
    pub fn at(point: CrashPoint, ordinal: u64) -> CrashPlan {
        CrashPlan {
            point: Some((point, ordinal)),
            io_error: None,
        }
    }

    /// Fail flush number `ordinal` (1-based) with an injected write error,
    /// exercising the same path a real ENOSPC/EIO from the kernel takes.
    pub fn io_error_at(ordinal: u64) -> CrashPlan {
        CrashPlan {
            point: None,
            io_error: Some(ordinal),
        }
    }

    /// Does this plan trip at flush `ordinal`?
    pub fn trips_at(&self, ordinal: u64) -> Option<CrashPoint> {
        match self.point {
            Some((p, o)) if o == ordinal => Some(p),
            _ => None,
        }
    }

    /// Does this plan inject a write error at flush `ordinal`?
    pub fn fails_at(&self, ordinal: u64) -> bool {
        self.io_error == Some(ordinal)
    }
}

// ---------------------------------------------------------------------------
// File-level damage helpers (for checksum/torn-tail recovery tests)
// ---------------------------------------------------------------------------

/// Truncate `path` to `len` bytes — a coarse torn-tail simulation.
pub fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)
}

/// XOR the byte at `offset` with `0xFF` — bit-rot / bad-sector simulation
/// that a checksum must catch.
pub fn corrupt_byte(path: &Path, offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 0xFF;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

/// A unique, self-cleaning temporary directory (no `tempfile` crate in the
/// offline vendor set).
#[derive(Debug)]
pub struct TempDir {
    path: std::path::PathBuf,
}

impl TempDir {
    pub fn new(tag: &str) -> io::Result<TempDir> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "wal-{tag}-{}-{}-{n}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0),
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_trips_only_at_its_ordinal() {
        let p = CrashPlan::at(CrashPoint::MidRecord, 3);
        assert_eq!(p.trips_at(2), None);
        assert_eq!(p.trips_at(3), Some(CrashPoint::MidRecord));
        assert_eq!(p.trips_at(4), None);
        assert_eq!(CrashPlan::none().trips_at(1), None);
    }

    #[test]
    fn damage_helpers_modify_files() {
        let dir = TempDir::new("damage").unwrap();
        let p = dir.path().join("f.bin");
        std::fs::write(&p, [0u8; 16]).unwrap();
        corrupt_byte(&p, 4).unwrap();
        let data = std::fs::read(&p).unwrap();
        assert_eq!(data[4], 0xFF);
        truncate_file(&p, 8).unwrap();
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 8);
    }
}
