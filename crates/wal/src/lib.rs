//! # wal — the durability spine of the WebML/WebRatio reproduction
//!
//! The paper's runtime treats the relational store as an always-on data
//! source; this crate supplies the missing durability layer underneath it:
//!
//! * an **append-only, checksummed write-ahead log** of committed
//!   transactions (see [`record`] for the binary framing), fed by
//!   `relstore`'s commit hook ([`Wal`] implements
//!   [`relstore::CommitSink`]);
//! * **group commit**: committers append under a short lock and a flusher
//!   thread syncs once per window, so many HTTP workers share each fsync
//!   ([`log::LogWriter`]);
//! * **snapshots** + **recovery**: [`Wal::snapshot`] writes a fuzzy-safe
//!   image and compacts the log; [`Wal::recover_into`] rebuilds a fresh
//!   [`relstore::Database`] from snapshot + log tail;
//! * **deterministic fault injection** ([`fault`]): crash points
//!   before/mid/after flush plus torn-tail and checksum corruption, so the
//!   recovery invariant — *the recovered state is always a committed
//!   prefix* — is provable by property test;
//! * a **durable change stream** for replicas: [`LogObserver`]s receive
//!   every batch *after* it is durable, which is how the bean cache's
//!   log-driven invalidation is fed (`webcache::LogDrivenInvalidator`).
//!
//! Flush economics (flush count, batch-size histogram, bytes, recovery
//! time) are reported through [`obs::WalCounters`] and exported at
//! `/metrics`.

pub mod fault;
pub mod log;
pub mod record;
pub mod snapshot;

pub use fault::{CrashPlan, CrashPoint, TempDir};
pub use record::{scan_log, LogScan, ScanOutcome};
pub use snapshot::SnapshotData;

use crate::log::LogWriter;
use obs::WalCounters;
use parking_lot::RwLock;
use relstore::{ChangeRecord, CommitSink, Database};
use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one durable log directory.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding `wal.log` and `wal.snap` (created if missing).
    pub dir: PathBuf,
    /// Group-commit window: how long the flusher sleeps between syncs.
    /// Larger windows amortize fsyncs across more committers at the cost
    /// of strict-commit latency.
    pub group_commit_window: Duration,
    /// Flush inline (without waiting for the window) once the buffer
    /// holds this many bytes.
    pub flush_watermark_bytes: usize,
    /// Deterministic crash injection (tests only; [`CrashPlan::none`] in
    /// production).
    pub crash_plan: CrashPlan,
}

impl WalConfig {
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            group_commit_window: Duration::from_millis(2),
            flush_watermark_bytes: 1 << 20,
            crash_plan: CrashPlan::none(),
        }
    }
}

/// Subscriber to the durable change stream. Called *after* a batch is
/// written + synced, outside all locks — exactly the stream a replica (or
/// the bean cache's log-driven invalidator) needs, because it never shows
/// a change that could still be lost.
pub trait LogObserver: Send + Sync {
    fn on_durable(&self, lsn: u64, changes: &[ChangeRecord]);
}

/// What recovery found and did.
#[derive(Debug)]
pub struct RecoveryInfo {
    /// LSN covered by the snapshot (0 when none was loaded).
    pub snapshot_lsn: u64,
    /// Log records replayed on top of the snapshot.
    pub replayed_records: usize,
    /// Highest LSN in the recovered state.
    pub last_lsn: u64,
    /// Entities (canonical table names) touched by replayed records —
    /// callers invalidate these in their caches.
    pub tables_touched: BTreeSet<String>,
    /// How the log scan ended (`TornTail`/`Corrupt` tails were truncated
    /// away at open).
    pub log_outcome: ScanOutcome,
}

/// The durability subsystem: log writer + snapshotter + recovery, exposed
/// to the engine as a [`CommitSink`] and to replicas as a stream of
/// [`LogObserver`] callbacks.
pub struct Wal {
    writer: Arc<LogWriter>,
    observers: Arc<RwLock<Vec<Arc<dyn LogObserver>>>>,
    counters: Arc<WalCounters>,
    snap_path: PathBuf,
    /// Outcome of the open-time log scan (before repair truncation).
    open_outcome: ScanOutcome,
    flusher: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Wal {
    /// Open (or create) the log directory: scan the log, truncate any torn
    /// or corrupt tail, position the writer after the last good record,
    /// and start the group-commit flusher thread.
    pub fn open(config: WalConfig, counters: Arc<WalCounters>) -> io::Result<Arc<Wal>> {
        std::fs::create_dir_all(&config.dir)?;
        let log_path = config.dir.join("wal.log");
        let snap_path = config.dir.join("wal.snap");

        // scan + repair: keep only the checksummed good prefix
        let (start_lsn, open_outcome) = match std::fs::read(&log_path) {
            Ok(bytes) => {
                let scan = scan_log(&bytes);
                match scan.outcome {
                    ScanOutcome::BadHeader if bytes.is_empty() => {
                        // treat as a fresh log; LogWriter writes the header
                        let _ = std::fs::remove_file(&log_path);
                    }
                    ScanOutcome::BadHeader => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "wal.log exists but has no valid header",
                        ));
                    }
                    ScanOutcome::TornTail { .. } | ScanOutcome::Corrupt { .. } => {
                        fault::truncate_file(&log_path, scan.good_len as u64)?;
                    }
                    ScanOutcome::Clean => {}
                }
                let last = scan.records.last().map(|(l, _)| *l).unwrap_or(0);
                (last, scan.outcome)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (0, ScanOutcome::Clean),
            Err(e) => return Err(e),
        };
        let snap_lsn = snapshot::load_snapshot(&snap_path)?
            .map(|s| s.last_lsn)
            .unwrap_or(0);

        let writer = LogWriter::open(
            &log_path,
            start_lsn.max(snap_lsn),
            config.group_commit_window,
            config.flush_watermark_bytes,
            config.crash_plan,
            Arc::clone(&counters),
        )?;

        let observers: Arc<RwLock<Vec<Arc<dyn LogObserver>>>> = Arc::new(RwLock::new(Vec::new()));

        // group-commit flusher: syncs the buffer every window and feeds
        // durable batches to observers (outside the writer lock)
        let flusher = {
            let writer = Arc::clone(&writer);
            let observers = Arc::clone(&observers);
            std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || loop {
                    // parks up to one window; wakes early on stop()
                    let keep_going = writer.park_flusher();
                    let batch = writer.flush_now();
                    if !batch.is_empty() {
                        let obs = observers.read().clone();
                        for (lsn, changes) in &batch {
                            for o in &obs {
                                o.on_durable(*lsn, changes);
                            }
                        }
                    }
                    if !keep_going {
                        return;
                    }
                })?
        };

        Ok(Arc::new(Wal {
            writer,
            observers,
            counters,
            snap_path,
            open_outcome,
            flusher: parking_lot::Mutex::new(Some(flusher)),
        }))
    }

    /// Subscribe to the durable change stream.
    ///
    /// An observer attached this way sees only batches flushed *after*
    /// the attach — anything already durable is silently missed. A
    /// (re)connecting replica must use [`Wal::replay_from`] instead.
    pub fn attach_observer(&self, o: Arc<dyn LogObserver>) {
        self.observers.write().push(o);
    }

    /// Attach `observer` *and* deterministically deliver the history it
    /// missed: every record with `lsn > from_lsn` still present in the
    /// log is replayed to the observer before any new batch can reach it.
    ///
    /// The observer list's write lock is held across the whole replay;
    /// the flusher dispatches under the read lock, so no concurrent batch
    /// can interleave with — or sneak past — the catch-up. Two caveats
    /// the caller owns:
    ///
    /// * records compacted away by a snapshot are no longer in the log —
    ///   a from-scratch replica bootstraps via [`Wal::recover_into`] (or
    ///   its own snapshot) first, then calls this with the recovered LSN;
    /// * batches flushed between the log read and future dispatches may
    ///   be delivered twice — consumers dedupe by LSN (replica apply is
    ///   idempotent and skips `lsn <= applied_lsn`).
    ///
    /// Returns the highest LSN replayed (`from_lsn` when none was).
    pub fn replay_from(&self, from_lsn: u64, observer: Arc<dyn LogObserver>) -> io::Result<u64> {
        let mut obs = self.observers.write();
        let bytes = std::fs::read(self.writer.path())?;
        let scan = scan_log(&bytes);
        let mut last = from_lsn;
        for (lsn, changes) in &scan.records {
            if *lsn > from_lsn {
                observer.on_durable(*lsn, changes);
                last = *lsn;
            }
        }
        obs.push(observer);
        Ok(last)
    }

    /// Rebuild `db` (which must be fresh/empty) from snapshot + log tail.
    /// Call *before* installing this `Wal` as the database's commit sink,
    /// so replay is not re-logged.
    pub fn recover_into(&self, db: &Database) -> io::Result<RecoveryInfo> {
        let started = Instant::now();
        let snap = snapshot::load_snapshot(&self.snap_path)?;
        let snapshot_lsn = match &snap {
            Some(s) => {
                s.restore_into(db)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                s.last_lsn
            }
            None => 0,
        };
        let bytes = std::fs::read(self.writer.path())?;
        let scan = scan_log(&bytes);
        let mut replayed = 0usize;
        let mut tables_touched = BTreeSet::new();
        let mut last_lsn = snapshot_lsn;
        for (lsn, changes) in &scan.records {
            if *lsn <= snapshot_lsn {
                continue;
            }
            for c in changes {
                db.apply_change(c)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                if let Some(t) = c.table() {
                    tables_touched.insert(t.to_string());
                }
            }
            replayed += 1;
            last_lsn = (*lsn).max(last_lsn);
        }
        self.counters
            .recovery_micros
            .observe_us(started.elapsed().as_micros() as u64);
        Ok(RecoveryInfo {
            snapshot_lsn,
            replayed_records: replayed,
            last_lsn,
            tables_touched,
            log_outcome: self.open_outcome.clone(),
        })
    }

    /// Write a snapshot of `db` and compact the log to the records beyond
    /// it. Fuzzy-safe: the `(tables, lsn)` pair is pinned under the
    /// database write lock, and commits keep flowing the whole time.
    /// Returns the snapshot's covering LSN.
    pub fn snapshot(&self, db: &Database) -> io::Result<u64> {
        // make sure everything already committed is on disk first, so the
        // snapshot never covers records the log does not have
        self.flush_and_notify();
        let (tables, lsn) = db.freeze_tables(|| self.writer.appended_lsn());
        let snap = SnapshotData::from_frozen(&tables, lsn);
        let bytes = snapshot::write_snapshot(&self.snap_path, &snap)?;
        self.counters.snapshots.inc();
        self.counters.bytes_written.add(bytes);
        // anything <= lsn is covered by the snapshot; drop it from the log
        self.writer.compact_through(lsn)?;
        Ok(lsn)
    }

    /// Synchronously flush the group-commit buffer and dispatch observer
    /// callbacks for the batches made durable.
    pub fn flush_and_notify(&self) {
        self.dispatch(self.writer.flush_now());
    }

    /// The non-strict coherence barrier: write the buffer to the log and
    /// dispatch observers *without* waiting on the physical sync, which
    /// the flusher thread performs within one group-commit window (see
    /// [`log::LogWriter::flush_now_relaxed`]). Cache maintenance therefore
    /// runs before the committer can re-read, while disk latency stays off
    /// the request path — the same bounded durability lag non-strict
    /// commit already accepts.
    pub fn flush_and_notify_relaxed(&self) {
        self.dispatch(self.writer.flush_now_relaxed());
    }

    /// The cheapest coherence barrier: dispatch observers for every
    /// appended-but-unflushed batch without touching the file at all
    /// (see [`log::LogWriter::take_pending`]). The encoded bytes reach
    /// the disk on the flusher's next window flush — the identical
    /// write+sync schedule a deployment with no barrier gets — so
    /// non-strict durability is unchanged while cache maintenance still
    /// runs before the committer can re-read.
    pub fn notify_buffered(&self) {
        self.dispatch(self.writer.take_pending());
    }

    fn dispatch(&self, batch: log::DurableBatch) {
        if !batch.is_empty() {
            let obs = self.observers.read().clone();
            for (lsn, changes) in &batch {
                for o in &obs {
                    o.on_durable(*lsn, changes);
                }
            }
        }
    }

    /// Simulate power loss *now*: the unflushed buffer is dropped and the
    /// writer stops touching the file. Recovery from the on-disk bytes is
    /// exactly what a real crash would see.
    pub fn simulate_crash(&self) {
        self.writer.simulate_crash();
    }

    /// Did a (simulated) crash occur?
    pub fn crashed(&self) -> bool {
        self.writer.crashed()
    }

    /// The first *real* write/sync failure, if one has poisoned the log
    /// writer (also counted in `wal_flush_errors`). Non-strict deployments
    /// should check this: their commits no longer reach stable storage.
    pub fn io_error(&self) -> Option<String> {
        self.writer.io_error()
    }

    /// Highest LSN appended (not necessarily durable).
    pub fn appended_lsn(&self) -> u64 {
        self.writer.appended_lsn()
    }

    /// Highest LSN written + synced.
    pub fn durable_lsn(&self) -> u64 {
        self.writer.durable_lsn()
    }

    /// Number of non-empty physical flushes so far.
    pub fn flush_count(&self) -> u64 {
        self.writer.flush_ordinal()
    }

    /// The counters this subsystem reports into.
    pub fn counters(&self) -> &Arc<WalCounters> {
        &self.counters
    }

    /// Path of the log file (tests damage it deliberately).
    pub fn log_path(&self) -> &std::path::Path {
        self.writer.path()
    }

    /// Stop the flusher thread after a final flush. Called automatically
    /// on drop.
    pub fn stop(&self) {
        self.writer.stop();
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.stop();
    }
}

impl CommitSink for Wal {
    fn on_commit(&self, changes: Vec<ChangeRecord>) -> u64 {
        self.writer.append(changes)
    }

    fn wait_durable(&self, lsn: u64) -> relstore::Result<()> {
        self.writer
            .wait_durable(lsn)
            .map_err(relstore::Error::Durability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Params;

    fn config(dir: &TempDir) -> WalConfig {
        let mut c = WalConfig::new(dir.path());
        c.group_commit_window = Duration::from_millis(1);
        c
    }

    fn open(dir: &TempDir) -> Arc<Wal> {
        Wal::open(config(dir), Arc::new(WalCounters::new())).unwrap()
    }

    fn durable_db(wal: &Arc<Wal>) -> Database {
        let db = Database::new();
        db.set_commit_sink(Arc::clone(wal) as Arc<dyn CommitSink>, true);
        db
    }

    #[test]
    fn commit_recover_round_trip() {
        let dir = TempDir::new("wal-rt").unwrap();
        let before = {
            let wal = open(&dir);
            let db = durable_db(&wal);
            db.execute_script(
                "CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT NOT NULL)",
            )
            .unwrap();
            db.execute("INSERT INTO t (v) VALUES ('a'), ('b')", &Params::new())
                .unwrap();
            db.execute("UPDATE t SET v = 'B' WHERE oid = 2", &Params::new())
                .unwrap();
            db.execute("DELETE FROM t WHERE oid = 1", &Params::new())
                .unwrap();
            wal.stop();
            db.dump()
        };
        // "restart": reopen the directory, recover into a fresh database
        let wal = open(&dir);
        let db = Database::new();
        let info = wal.recover_into(&db).unwrap();
        assert_eq!(db.dump(), before);
        assert_eq!(info.snapshot_lsn, 0);
        assert!(info.replayed_records >= 4);
        assert!(info.tables_touched.contains("t"));
        assert_eq!(info.log_outcome, ScanOutcome::Clean);
        assert!(wal.counters().recovery_micros.count() >= 1);
    }

    #[test]
    fn snapshot_compacts_log_and_recovery_uses_tail() {
        let dir = TempDir::new("wal-snap").unwrap();
        let before = {
            let wal = open(&dir);
            let db = durable_db(&wal);
            db.execute_script(
                "CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT NOT NULL)",
            )
            .unwrap();
            for i in 0..10 {
                db.execute(
                    "INSERT INTO t (v) VALUES (:v)",
                    &Params::new().bind("v", format!("v{i}")),
                )
                .unwrap();
            }
            let snap_lsn = wal.snapshot(&db).unwrap();
            assert!(snap_lsn >= 11);
            // post-snapshot traffic lands in the compacted log
            db.execute("INSERT INTO t (v) VALUES ('tail')", &Params::new())
                .unwrap();
            wal.stop();
            // the log now holds only the tail record(s)
            let scan = scan_log(&std::fs::read(wal.log_path()).unwrap());
            assert!(
                scan.records.len() <= 2,
                "log not compacted: {}",
                scan.records.len()
            );
            db.dump()
        };
        let wal = open(&dir);
        let db = Database::new();
        let info = wal.recover_into(&db).unwrap();
        assert!(info.snapshot_lsn >= 11);
        assert!(info.replayed_records >= 1);
        assert_eq!(db.dump(), before);
    }

    #[test]
    fn observers_see_only_durable_batches() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct Seen(Mutex<Vec<(u64, usize)>>);
        impl LogObserver for Seen {
            fn on_durable(&self, lsn: u64, changes: &[ChangeRecord]) {
                self.0.lock().push((lsn, changes.len()));
            }
        }
        let dir = TempDir::new("wal-obs").unwrap();
        let mut cfg = config(&dir);
        cfg.group_commit_window = Duration::from_secs(3600); // manual flushes only
        let wal = Wal::open(cfg, Arc::new(WalCounters::new())).unwrap();
        let seen = Arc::new(Seen::default());
        wal.attach_observer(Arc::clone(&seen) as Arc<dyn LogObserver>);
        let db = Database::new();
        db.set_commit_sink(Arc::clone(&wal) as Arc<dyn CommitSink>, false);
        db.execute_script("CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)")
            .unwrap();
        db.execute("INSERT INTO t (v) VALUES ('x')", &Params::new())
            .unwrap();
        // nothing durable yet → nothing observed
        assert!(seen.0.lock().is_empty());
        wal.flush_and_notify();
        let events = seen.0.lock().clone();
        assert_eq!(events.len(), 2); // DDL + insert, in commit order
        assert_eq!(events[0].0, 1);
        assert_eq!(events[1].0, 2);
        wal.stop();
    }

    #[test]
    fn stop_dispatches_pending_batches_to_observers() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct Seen(Mutex<Vec<u64>>);
        impl LogObserver for Seen {
            fn on_durable(&self, lsn: u64, _changes: &[ChangeRecord]) {
                self.0.lock().push(lsn);
            }
        }
        let dir = TempDir::new("wal-stopdisp").unwrap();
        let mut cfg = config(&dir);
        // one-hour window: only stop()'s internal flush can cover these
        cfg.group_commit_window = Duration::from_secs(3600);
        let wal = Wal::open(cfg, Arc::new(WalCounters::new())).unwrap();
        let seen = Arc::new(Seen::default());
        wal.attach_observer(Arc::clone(&seen) as Arc<dyn LogObserver>);
        let db = Database::new();
        db.set_commit_sink(Arc::clone(&wal) as Arc<dyn CommitSink>, false);
        db.execute_script("CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)")
            .unwrap();
        db.execute("INSERT INTO t (v) VALUES ('x')", &Params::new())
            .unwrap();
        wal.stop();
        // the batches flushed by stop() still reached the observers —
        // log-driven invalidation must never miss a durable batch
        assert_eq!(*seen.0.lock(), vec![1, 2]);
    }

    #[test]
    fn replay_from_closes_the_attach_after_flush_window() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct Seen(Mutex<Vec<u64>>);
        impl LogObserver for Seen {
            fn on_durable(&self, lsn: u64, _changes: &[ChangeRecord]) {
                self.0.lock().push(lsn);
            }
        }
        let dir = TempDir::new("wal-replay").unwrap();
        let mut cfg = config(&dir);
        cfg.group_commit_window = Duration::from_secs(3600); // manual flushes only
        let wal = Wal::open(cfg, Arc::new(WalCounters::new())).unwrap();
        let db = Database::new();
        db.set_commit_sink(Arc::clone(&wal) as Arc<dyn CommitSink>, false);
        db.execute_script("CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)")
            .unwrap();
        db.execute("INSERT INTO t (v) VALUES ('early')", &Params::new())
            .unwrap();
        // the history (LSNs 1, 2) is durable BEFORE anyone subscribes
        wal.flush_and_notify();

        // a plain attach misses it: this is the window the fix closes
        let late = Arc::new(Seen::default());
        wal.attach_observer(Arc::clone(&late) as Arc<dyn LogObserver>);
        db.execute("INSERT INTO t (v) VALUES ('tail')", &Params::new())
            .unwrap();
        wal.flush_and_notify();
        assert_eq!(*late.0.lock(), vec![3], "plain attach replays nothing");

        // replay_from(0) delivers the missed prefix, then streams live
        let replica = Arc::new(Seen::default());
        let caught_up = wal
            .replay_from(0, Arc::clone(&replica) as Arc<dyn LogObserver>)
            .unwrap();
        assert_eq!(caught_up, 3);
        assert_eq!(*replica.0.lock(), vec![1, 2, 3]);
        db.execute("INSERT INTO t (v) VALUES ('live')", &Params::new())
            .unwrap();
        wal.flush_and_notify();
        assert_eq!(*replica.0.lock(), vec![1, 2, 3, 4]);

        // a partially caught-up replica resumes exactly past its LSN
        let resumed = Arc::new(Seen::default());
        let last = wal
            .replay_from(2, Arc::clone(&resumed) as Arc<dyn LogObserver>)
            .unwrap();
        assert_eq!(last, 4);
        assert_eq!(*resumed.0.lock(), vec![3, 4]);
        wal.stop();
    }

    #[test]
    fn real_flush_failure_propagates_to_strict_commits() {
        let dir = TempDir::new("wal-eio").unwrap();
        let mut cfg = config(&dir);
        cfg.crash_plan = CrashPlan::io_error_at(1);
        let counters = Arc::new(WalCounters::new());
        let wal = Wal::open(cfg, Arc::clone(&counters)).unwrap();
        let db = durable_db(&wal); // strict commits
        let err = db
            .execute_script("CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT)")
            .unwrap_err();
        assert!(
            matches!(err, relstore::Error::Durability(_)),
            "expected Durability error, got {err:?}"
        );
        assert!(wal.io_error().unwrap().contains("injected write failure"));
        assert_eq!(counters.flush_errors.get(), 1);
        wal.stop();
    }

    #[test]
    fn simulated_crash_drops_unflushed_commits() {
        let dir = TempDir::new("wal-crash").unwrap();
        let mut cfg = config(&dir);
        cfg.group_commit_window = Duration::from_secs(3600);
        let wal = Wal::open(cfg, Arc::new(WalCounters::new())).unwrap();
        let db = Database::new();
        db.set_commit_sink(Arc::clone(&wal) as Arc<dyn CommitSink>, false);
        db.execute_script("CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)")
            .unwrap();
        db.execute("INSERT INTO t (v) VALUES ('durable')", &Params::new())
            .unwrap();
        wal.flush_and_notify();
        db.execute("INSERT INTO t (v) VALUES ('lost')", &Params::new())
            .unwrap();
        wal.simulate_crash(); // before the second flush
        wal.stop();
        let wal = open(&dir);
        let db2 = Database::new();
        wal.recover_into(&db2).unwrap();
        assert_eq!(db2.table_len("t").unwrap(), 1);
        let rs = db2.query("SELECT v FROM t", &Params::new()).unwrap();
        assert_eq!(
            rs.first("v"),
            Some(&relstore::Value::Text("durable".into()))
        );
    }

    #[test]
    fn reopen_continues_lsns_after_recovery() {
        let dir = TempDir::new("wal-lsn").unwrap();
        {
            let wal = open(&dir);
            let db = durable_db(&wal);
            db.execute_script("CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)")
                .unwrap();
            db.execute("INSERT INTO t (v) VALUES ('one')", &Params::new())
                .unwrap();
            wal.stop();
        }
        let wal = open(&dir);
        let db = Database::new();
        let info = wal.recover_into(&db).unwrap();
        db.set_commit_sink(Arc::clone(&wal) as Arc<dyn CommitSink>, true);
        db.execute("INSERT INTO t (v) VALUES ('two')", &Params::new())
            .unwrap();
        assert!(wal.appended_lsn() > info.last_lsn);
        wal.stop();
        // final state survives another round trip
        let wal = open(&dir);
        let db2 = Database::new();
        wal.recover_into(&db2).unwrap();
        assert_eq!(db2.table_len("t").unwrap(), 2);
    }
}
