//! The group-commit log writer.
//!
//! Committers append encoded redo records to an in-memory buffer under a
//! short mutex hold (this happens inside `Database`'s storage lock, so it
//! must stay cheap — appending never does I/O; even a full watermark only
//! *wakes* the flusher) and receive an LSN. A background flusher wakes
//! every `window` (or early, on a watermark request) and writes + syncs
//! the whole buffer in one physical flush; strict-mode committers block in
//! [`LogWriter::wait_durable`] on a condvar until their LSN is covered.
//! Many committers therefore share one sync — the classic group-commit
//! amortization — and the batch size per flush is recorded in
//! `obs::WalCounters::group_batch_size`.
//!
//! Every flushed batch is queued for observer dispatch and drained by
//! [`LogWriter::flush_now`]; internal flush paths (watermark, compaction,
//! [`LogWriter::stop`]) can therefore never lose a batch the
//! log-driven cache invalidator should have seen.
//!
//! [`LogWriter::flush_now_relaxed`] writes and dispatches without the
//! inline sync: the physical `fdatasync` is deferred to the next synced
//! flush, so non-strict committers can run cache-coherence observers on
//! their own thread without paying disk latency per write.
//!
//! Crash points from [`crate::fault::CrashPlan`] trip inside the flush path
//! (see [`CrashPoint`]): the writer marks itself crashed, stops touching
//! the file, and wakes all waiters, simulating power loss at that exact
//! instant without killing the test process.

use crate::fault::{CrashPlan, CrashPoint};
use crate::record::{append_record, LOG_MAGIC};
use obs::WalCounters;
use relstore::ChangeRecord;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One flushed batch, as handed to observers: `(lsn, changes)` per
/// committed transaction, in commit order.
pub type DurableBatch = Vec<(u64, Arc<Vec<ChangeRecord>>)>;

struct WriterState {
    file: Option<File>,
    /// Encoded records not yet flushed.
    buf: Vec<u8>,
    /// Offset in `buf` where the most recently appended record starts
    /// (the record a `MidRecord` crash tears).
    last_record_start: usize,
    /// Decoded copies of buffered records, for observer dispatch.
    pending: Vec<(u64, Arc<Vec<ChangeRecord>>)>,
    /// Batches already flushed (durable) but not yet drained by a
    /// dispatcher via [`LogWriter::flush_now`]. Every internal flush path
    /// (watermark, compaction, stop) queues here, so no durable batch can
    /// ever miss observer dispatch.
    dispatch: DurableBatch,
    /// Set by the watermark path in [`LogWriter::append`]: asks the
    /// flusher thread to flush ahead of its window (append itself must
    /// never do I/O — it runs under the database storage lock).
    flush_due: bool,
    /// First *real* write/sync failure, verbatim. Once set, the writer is
    /// poisoned: strict committers get an `Err` from
    /// [`LogWriter::wait_durable`] instead of a silent ack.
    io_error: Option<String>,
    next_lsn: u64,
    /// Highest LSN appended to the buffer (≥ durable_lsn).
    appended_lsn: u64,
    /// Highest LSN written to the file — possibly ahead of `durable_lsn`
    /// after a relaxed flush, until the next synced flush catches up.
    written_lsn: u64,
    /// Set by a relaxed flush: bytes are in the file but not yet synced;
    /// the next synced flush (normally the flusher's window tick) owes an
    /// `fdatasync` even if its buffer is empty.
    sync_pending: bool,
    /// Highest LSN written + synced to the file.
    durable_lsn: u64,
    /// Count of non-empty physical flushes so far (crash plans index this).
    flush_ordinal: u64,
    crash_plan: CrashPlan,
    crashed: bool,
    stopping: bool,
}

/// Append-only log file with group commit and simulated crash points.
pub struct LogWriter {
    state: Mutex<WriterState>,
    cond: Condvar,
    path: PathBuf,
    counters: Arc<WalCounters>,
    window: Duration,
    watermark: usize,
}

impl LogWriter {
    /// Open (creating or repairing as needed is the caller's job — the file
    /// must exist and start with a valid header) and position after
    /// `start_lsn`.
    pub fn open(
        path: &Path,
        start_lsn: u64,
        window: Duration,
        watermark: usize,
        crash_plan: CrashPlan,
        counters: Arc<WalCounters>,
    ) -> io::Result<Arc<LogWriter>> {
        if !path.exists() {
            let mut f = File::create(path)?;
            f.write_all(LOG_MAGIC)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Arc::new(LogWriter {
            state: Mutex::new(WriterState {
                file: Some(file),
                buf: Vec::new(),
                last_record_start: 0,
                pending: Vec::new(),
                dispatch: Vec::new(),
                flush_due: false,
                io_error: None,
                next_lsn: start_lsn + 1,
                appended_lsn: start_lsn,
                written_lsn: start_lsn,
                sync_pending: false,
                durable_lsn: start_lsn,
                flush_ordinal: 0,
                crash_plan,
                crashed: false,
                stopping: false,
            }),
            cond: Condvar::new(),
            path: path.to_path_buf(),
            counters,
            window,
            watermark,
        }))
    }

    /// Append one committed transaction's redo image; returns its LSN.
    /// Cheap (no I/O) — called with the database storage lock held.
    pub fn append(&self, changes: Vec<ChangeRecord>) -> u64 {
        let mut s = self.state.lock().unwrap();
        let lsn = s.next_lsn;
        s.next_lsn += 1;
        s.appended_lsn = lsn;
        if s.crashed {
            // the "machine" is down: accept and drop, like writes after
            // power loss
            return lsn;
        }
        s.last_record_start = s.buf.len();
        let mut buf = std::mem::take(&mut s.buf);
        append_record(&mut buf, lsn, &changes);
        s.buf = buf;
        s.pending.push((lsn, Arc::new(changes)));
        self.counters.records_appended.inc();
        if s.buf.len() >= self.watermark && !s.flush_due {
            // No I/O here — the storage write lock is held. Ask the
            // flusher thread to run ahead of its window instead.
            s.flush_due = true;
            self.cond.notify_all();
        }
        lsn
    }

    /// Flush the buffer now and drain *every* durable batch — including
    /// ones flushed internally by the watermark/compaction/stop paths —
    /// for observer dispatch outside the lock. Callers (the flusher
    /// thread, `Wal::flush_and_notify`) own dispatching what they drain.
    pub fn flush_now(&self) -> DurableBatch {
        let mut s = self.state.lock().unwrap();
        self.flush_locked(&mut s);
        std::mem::take(&mut s.dispatch)
    }

    /// Like [`LogWriter::flush_now`], but *relaxed*: the buffer is written
    /// to the log file and the batch queued for dispatch without waiting
    /// on the physical sync — that is deferred to the next synced flush
    /// (normally the flusher's window tick), so the durability lag stays
    /// bounded by the group-commit window. This is the non-strict
    /// coherence barrier: observers (cache maintenance) run against the
    /// written log on the committer's thread while the disk sync stays
    /// amortized off it. `durable_lsn` does not advance until the sync
    /// lands, so strict committers are never acked early.
    pub fn flush_now_relaxed(&self) -> DurableBatch {
        let mut s = self.state.lock().unwrap();
        self.flush_inner(&mut s, false);
        std::mem::take(&mut s.dispatch)
    }

    /// Drain the buffered-but-unflushed batches for observer dispatch
    /// without any file I/O: the encoded bytes stay in the buffer and
    /// reach the disk on the flusher's next window flush, exactly as
    /// they would with no barrier at all. This is the cheapest coherence
    /// barrier for non-strict commit — the committer runs cache
    /// maintenance against its own appended records on its own thread,
    /// while durability (write + sync, `durable_lsn`) rides the
    /// group-commit window unchanged.
    pub fn take_pending(&self) -> DurableBatch {
        let mut s = self.state.lock().unwrap();
        let batch = std::mem::take(&mut s.pending);
        s.dispatch.extend(batch);
        std::mem::take(&mut s.dispatch)
    }

    /// Write + sync the buffer and queue the flushed batch on
    /// `s.dispatch`. Never hands batches to the caller directly, so no
    /// internal flush path can drop them on the floor.
    fn flush_locked(&self, s: &mut WriterState) {
        self.flush_inner(s, true)
    }

    fn flush_inner(&self, s: &mut WriterState, sync: bool) {
        s.flush_due = false;
        if s.crashed {
            return;
        }
        if s.buf.is_empty() {
            // nothing new to write — but a prior relaxed flush may still
            // owe the disk its sync
            if sync && s.sync_pending {
                if let Some(f) = s.file.as_mut() {
                    if let Err(e) = f.sync_data() {
                        self.fail_io(s, &e);
                        return;
                    }
                }
                s.sync_pending = false;
                s.durable_lsn = s.written_lsn;
                self.cond.notify_all();
            }
            return;
        }
        let ordinal = s.flush_ordinal + 1;
        if s.crash_plan.fails_at(ordinal) {
            // injected kernel failure (EIO/ENOSPC stand-in) — takes the
            // same loud path a real write_all/sync_data error takes below
            let e = io::Error::other("injected write failure");
            self.fail_io(s, &e);
            return;
        }
        match s.crash_plan.trips_at(ordinal) {
            Some(CrashPoint::BeforeFlush) => {
                // power dies before any byte reaches the disk
                self.die(s);
                return;
            }
            Some(CrashPoint::MidRecord) => {
                // a prefix of the batch hits the disk; the final record is
                // torn halfway through
                let tail = s.buf.len() - s.last_record_start;
                let torn = s.last_record_start + (tail / 2).max(1);
                if let Some(f) = s.file.as_mut() {
                    let _ = f.write_all(&s.buf[..torn]);
                    let _ = f.sync_data();
                }
                self.die(s);
                return;
            }
            Some(CrashPoint::AfterFlush) => {
                // the batch is fully durable; the machine dies right after
                if let Some(f) = s.file.as_mut() {
                    let _ = f.write_all(&s.buf);
                    let _ = f.sync_data();
                }
                self.die(s);
                return;
            }
            None => {}
        }
        let file = match s.file.as_mut() {
            Some(f) => f,
            None => return,
        };
        let res = if sync {
            file.write_all(&s.buf).and_then(|_| file.sync_data())
        } else {
            file.write_all(&s.buf)
        };
        if let Err(e) = res {
            self.fail_io(s, &e);
            return;
        }
        self.counters.flushes.inc();
        self.counters.bytes_written.add(s.buf.len() as u64);
        if !s.pending.is_empty() {
            // a dispatch-only barrier may have drained `pending` already;
            // only batches flushed here count toward group sizing
            self.counters
                .group_batch_size
                .observe(s.pending.len() as u64);
        }
        s.flush_ordinal = ordinal;
        s.written_lsn = s.appended_lsn;
        if sync {
            s.sync_pending = false;
            s.durable_lsn = s.appended_lsn;
        } else {
            s.sync_pending = true;
        }
        s.buf.clear();
        s.last_record_start = 0;
        let batch = std::mem::take(&mut s.pending);
        s.dispatch.extend(batch);
        self.cond.notify_all();
    }

    fn die(&self, s: &mut WriterState) {
        s.crashed = true;
        s.flush_due = false;
        s.buf.clear();
        s.pending.clear();
        // `s.dispatch` is deliberately left intact: those batches were
        // already written + synced, so observers must still hear them.
        s.file = None;
        self.cond.notify_all();
    }

    /// A *real* write/sync failure — unlike an injected power-loss crash,
    /// which is absorbed silently by design (a dead machine acks nothing),
    /// this poisons the writer: the error is counted in
    /// `wal_flush_errors`, stored, and surfaced to every strict committer
    /// through [`LogWriter::wait_durable`].
    fn fail_io(&self, s: &mut WriterState, e: &io::Error) {
        s.io_error = Some(e.to_string());
        self.counters.flush_errors.inc();
        self.die(s);
    }

    /// Force the simulated machine down, dropping any unflushed buffer
    /// (equivalent to a `BeforeFlush` crash right now).
    pub fn simulate_crash(&self) {
        let mut s = self.state.lock().unwrap();
        self.die(&mut s);
    }

    /// Block until `lsn` is durable — or the writer crashed or is stopping,
    /// in which case waiting any longer is pointless.
    ///
    /// Returns `Err` when a *real* write/sync failure (not an injected
    /// power-loss crash) means `lsn` will never become durable: the ack
    /// the committer is waiting for would be a lie.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), String> {
        let mut s = self.state.lock().unwrap();
        while s.durable_lsn < lsn && !s.crashed && !s.stopping {
            let (guard, _timeout) = self
                .cond
                .wait_timeout(s, self.window.max(Duration::from_millis(1)))
                .unwrap();
            s = guard;
        }
        match &s.io_error {
            Some(e) if s.durable_lsn < lsn => Err(format!("wal flush failed: {e}")),
            _ => Ok(()),
        }
    }

    /// The first real write/sync failure, if one has poisoned the writer.
    pub fn io_error(&self) -> Option<String> {
        self.state.lock().unwrap().io_error.clone()
    }

    /// Highest LSN handed out (appended, not necessarily durable).
    pub fn appended_lsn(&self) -> u64 {
        self.state.lock().unwrap().appended_lsn
    }

    /// Highest LSN written + synced.
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().unwrap().durable_lsn
    }

    /// Number of non-empty physical flushes so far.
    pub fn flush_ordinal(&self) -> u64 {
        self.state.lock().unwrap().flush_ordinal
    }

    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Drop every durable record with `lsn <= through` by rewriting the
    /// file (log compaction after a snapshot). The buffer must have been
    /// flushed first; records above `through` are preserved byte-exact.
    pub fn compact_through(&self, through: u64) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        if s.crashed {
            return Ok(());
        }
        // Any batch flushed here lands on `s.dispatch`; wake the flusher
        // so observers hear about it promptly once we release the lock.
        self.flush_locked(&mut s);
        self.cond.notify_all();
        let bytes = std::fs::read(&self.path)?;
        let scan = crate::record::scan_log(&bytes);
        let mut out = LOG_MAGIC.to_vec();
        for (lsn, changes) in &scan.records {
            if *lsn > through {
                append_record(&mut out, *lsn, changes);
            }
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        s.file = Some(OpenOptions::new().append(true).open(&self.path)?);
        Ok(())
    }

    /// Tell the flusher loop (and all waiters) to wind down. Any batch
    /// flushed here is queued on the dispatch queue; the flusher's final
    /// [`LogWriter::flush_now`] drains and dispatches it before exiting.
    pub fn stop(&self) {
        let mut s = self.state.lock().unwrap();
        s.stopping = true;
        self.flush_locked(&mut s);
        self.cond.notify_all();
    }

    pub fn stopping(&self) -> bool {
        self.state.lock().unwrap().stopping
    }

    /// Park the flusher thread for up to one group-commit window. Wakes
    /// early when [`LogWriter::stop`] is called (the condvar doubles as
    /// the shutdown signal) and skips parking entirely when work is
    /// already waiting — a watermark flush request from
    /// [`LogWriter::append`] or queued-but-undispatched batches. Returns
    /// `false` once stopping.
    pub fn park_flusher(&self) -> bool {
        let s = self.state.lock().unwrap();
        if s.stopping {
            return false;
        }
        if s.flush_due || !s.dispatch.is_empty() {
            return true;
        }
        let (s, _timeout) = self
            .cond
            .wait_timeout(s, self.window.max(Duration::from_millis(1)))
            .unwrap();
        !s.stopping
    }

    /// The group-commit window.
    pub fn window(&self) -> Duration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TempDir;
    use crate::record::{scan_log, ScanOutcome};

    fn changes(n: i64) -> Vec<ChangeRecord> {
        vec![ChangeRecord::Insert {
            table: "t".into(),
            row_id: n as usize,
            row: vec![relstore::Value::Integer(n)],
        }]
    }

    fn writer(dir: &TempDir, plan: CrashPlan) -> Arc<LogWriter> {
        LogWriter::open(
            &dir.path().join("wal.log"),
            0,
            Duration::from_millis(1),
            usize::MAX,
            plan,
            Arc::new(WalCounters::new()),
        )
        .unwrap()
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let dir = TempDir::new("log-rt").unwrap();
        let w = writer(&dir, CrashPlan::none());
        assert_eq!(w.append(changes(1)), 1);
        assert_eq!(w.append(changes(2)), 2);
        let batch = w.flush_now();
        assert_eq!(batch.len(), 2);
        assert_eq!(w.durable_lsn(), 2);
        assert_eq!(w.flush_ordinal(), 1);
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].0, 2);
    }

    #[test]
    fn empty_flush_is_not_counted() {
        let dir = TempDir::new("log-empty").unwrap();
        let w = writer(&dir, CrashPlan::none());
        assert!(w.flush_now().is_empty());
        assert_eq!(w.flush_ordinal(), 0);
    }

    #[test]
    fn relaxed_flush_dispatches_before_sync() {
        let dir = TempDir::new("log-relaxed").unwrap();
        let w = writer(&dir, CrashPlan::none());
        w.append(changes(1));
        let batch = w.flush_now_relaxed();
        assert_eq!(batch.len(), 1, "relaxed flush must dispatch its batch");
        // the bytes are in the file…
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 1);
        // …but durability is not acked until the deferred sync lands
        assert_eq!(w.durable_lsn(), 0);
        assert!(w.flush_now().is_empty(), "no new batch, only the sync");
        assert_eq!(w.durable_lsn(), 1);
        w.wait_durable(1).unwrap();
    }

    #[test]
    fn before_flush_crash_loses_the_batch() {
        let dir = TempDir::new("log-bf").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::BeforeFlush, 2));
        w.append(changes(1));
        w.flush_now(); // ordinal 1: survives
        w.append(changes(2));
        w.append(changes(3));
        assert!(w.flush_now().is_empty()); // ordinal 2: dies first
        assert!(w.crashed());
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn mid_record_crash_tears_only_the_last_record() {
        let dir = TempDir::new("log-mid").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::MidRecord, 1));
        w.append(changes(1));
        w.append(changes(2));
        w.append(changes(3));
        w.flush_now();
        assert!(w.crashed());
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert!(matches!(scan.outcome, ScanOutcome::TornTail { .. }));
        assert_eq!(scan.records.len(), 2); // first two intact, third torn
    }

    #[test]
    fn after_flush_crash_keeps_the_batch() {
        let dir = TempDir::new("log-af").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::AfterFlush, 1));
        w.append(changes(1));
        w.append(changes(2));
        w.flush_now();
        assert!(w.crashed());
        // appends after the crash are accepted and dropped
        w.append(changes(3));
        w.flush_now();
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn watermark_wakes_the_flusher_instead_of_flushing_inline() {
        let dir = TempDir::new("log-wm").unwrap();
        // One-hour window: only the watermark wake-up can explain a
        // prompt flush.
        let w = LogWriter::open(
            &dir.path().join("wal.log"),
            0,
            Duration::from_secs(3600),
            1, // any byte requests a flush
            CrashPlan::none(),
            Arc::new(WalCounters::new()),
        )
        .unwrap();
        let wf = Arc::clone(&w);
        let flusher = std::thread::spawn(move || loop {
            let keep_going = wf.park_flusher();
            wf.flush_now();
            if !keep_going {
                return;
            }
        });
        let lsn = w.append(changes(1));
        // append itself did no I/O — durability arrives via the flusher
        w.wait_durable(lsn).unwrap();
        assert_eq!(w.durable_lsn(), 1);
        assert_eq!(w.flush_ordinal(), 1);
        w.stop();
        flusher.join().unwrap();
    }

    #[test]
    fn internal_flush_paths_queue_batches_for_dispatch() {
        // stop() flushes internally; the batch must still be drainable —
        // this is what feeds LogObservers (replica-style invalidation)
        let dir = TempDir::new("log-dispatch").unwrap();
        let w = writer(&dir, CrashPlan::none());
        w.append(changes(1));
        w.append(changes(2));
        w.stop();
        let batch = w.flush_now(); // drains what stop() queued
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1].0, 2);

        // compact_through flushes internally too
        let dir = TempDir::new("log-dispatch2").unwrap();
        let w = writer(&dir, CrashPlan::none());
        w.append(changes(1));
        w.compact_through(0).unwrap();
        let batch = w.flush_now();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn wait_durable_returns_after_crash() {
        let dir = TempDir::new("log-wait").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::BeforeFlush, 1));
        let lsn = w.append(changes(1));
        w.flush_now(); // crashes

        // must not hang; a simulated power loss is not an I/O error
        assert!(w.wait_durable(lsn).is_ok());
        assert!(w.crashed());
        assert!(w.io_error().is_none());
    }

    #[test]
    fn real_write_failure_is_loud() {
        let dir = TempDir::new("log-eio").unwrap();
        let counters = Arc::new(WalCounters::new());
        let w = LogWriter::open(
            &dir.path().join("wal.log"),
            0,
            Duration::from_millis(1),
            usize::MAX,
            CrashPlan::io_error_at(1),
            Arc::clone(&counters),
        )
        .unwrap();
        let lsn = w.append(changes(1));
        assert!(w.flush_now().is_empty()); // the write "fails"

        // poisoned: the failure is counted, stored, and propagated
        assert_eq!(counters.flush_errors.get(), 1);
        assert!(w.io_error().unwrap().contains("injected write failure"));
        let err = w.wait_durable(lsn).unwrap_err();
        assert!(err.contains("wal flush failed"), "err: {err}");
        // an LSN that was already durable before the failure stays Ok
        assert!(w.wait_durable(0).is_ok());
    }

    #[test]
    fn compaction_drops_covered_records_and_keeps_tail() {
        let dir = TempDir::new("log-compact").unwrap();
        let w = writer(&dir, CrashPlan::none());
        for i in 1..=4 {
            w.append(changes(i));
        }
        w.flush_now();
        w.compact_through(2).unwrap();
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        let lsns: Vec<u64> = scan.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![3, 4]);
        // appending after compaction still works
        w.append(changes(5));
        w.flush_now();
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.records.len(), 3);
    }

    #[test]
    fn group_commit_across_threads_shares_flushes() {
        let dir = TempDir::new("log-group").unwrap();
        let counters = Arc::new(WalCounters::new());
        let w = LogWriter::open(
            &dir.path().join("wal.log"),
            0,
            Duration::from_millis(2),
            usize::MAX,
            CrashPlan::none(),
            Arc::clone(&counters),
        )
        .unwrap();
        // background flusher stand-in
        let wf = Arc::clone(&w);
        let flusher = std::thread::spawn(move || {
            while !wf.stopping() {
                std::thread::sleep(Duration::from_millis(1));
                wf.flush_now();
            }
        });
        let mut handles = Vec::new();
        for t in 0..4 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let lsn = w.append(changes(t * 100 + i));
                    w.wait_durable(lsn).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        w.stop();
        flusher.join().unwrap();
        assert_eq!(w.durable_lsn(), 100);
        let flushes = counters.flushes.get();
        assert!((1..=100).contains(&flushes));
        assert_eq!(counters.records_appended.get(), 100);
        // batch-size histogram accounts for every record
        assert_eq!(counters.group_batch_size.sum(), 100);
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 100);
    }
}
