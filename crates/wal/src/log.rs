//! The group-commit log writer.
//!
//! Committers append encoded redo records to an in-memory buffer under a
//! short mutex hold (this happens inside `Database`'s storage lock, so it
//! must stay cheap) and receive an LSN. A background flusher wakes every
//! `window` and writes + syncs the whole buffer in one physical flush;
//! strict-mode committers block in [`LogWriter::wait_durable`] on a condvar
//! until their LSN is covered. Many committers therefore share one sync —
//! the classic group-commit amortization — and the batch size per flush is
//! recorded in `obs::WalCounters::group_batch_size`.
//!
//! Crash points from [`crate::fault::CrashPlan`] trip inside the flush path
//! (see [`CrashPoint`]): the writer marks itself crashed, stops touching
//! the file, and wakes all waiters, simulating power loss at that exact
//! instant without killing the test process.

use crate::fault::{CrashPlan, CrashPoint};
use crate::record::{append_record, LOG_MAGIC};
use obs::WalCounters;
use relstore::ChangeRecord;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One flushed batch, as handed to observers: `(lsn, changes)` per
/// committed transaction, in commit order.
pub type DurableBatch = Vec<(u64, Arc<Vec<ChangeRecord>>)>;

struct WriterState {
    file: Option<File>,
    /// Encoded records not yet flushed.
    buf: Vec<u8>,
    /// Offset in `buf` where the most recently appended record starts
    /// (the record a `MidRecord` crash tears).
    last_record_start: usize,
    /// Decoded copies of buffered records, for observer dispatch.
    pending: Vec<(u64, Arc<Vec<ChangeRecord>>)>,
    next_lsn: u64,
    /// Highest LSN appended to the buffer (≥ durable_lsn).
    appended_lsn: u64,
    /// Highest LSN written + synced to the file.
    durable_lsn: u64,
    /// Count of non-empty physical flushes so far (crash plans index this).
    flush_ordinal: u64,
    crash_plan: CrashPlan,
    crashed: bool,
    stopping: bool,
}

/// Append-only log file with group commit and simulated crash points.
pub struct LogWriter {
    state: Mutex<WriterState>,
    cond: Condvar,
    path: PathBuf,
    counters: Arc<WalCounters>,
    window: Duration,
    watermark: usize,
}

impl LogWriter {
    /// Open (creating or repairing as needed is the caller's job — the file
    /// must exist and start with a valid header) and position after
    /// `start_lsn`.
    pub fn open(
        path: &Path,
        start_lsn: u64,
        window: Duration,
        watermark: usize,
        crash_plan: CrashPlan,
        counters: Arc<WalCounters>,
    ) -> io::Result<Arc<LogWriter>> {
        if !path.exists() {
            let mut f = File::create(path)?;
            f.write_all(LOG_MAGIC)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Arc::new(LogWriter {
            state: Mutex::new(WriterState {
                file: Some(file),
                buf: Vec::new(),
                last_record_start: 0,
                pending: Vec::new(),
                next_lsn: start_lsn + 1,
                appended_lsn: start_lsn,
                durable_lsn: start_lsn,
                flush_ordinal: 0,
                crash_plan,
                crashed: false,
                stopping: false,
            }),
            cond: Condvar::new(),
            path: path.to_path_buf(),
            counters,
            window,
            watermark,
        }))
    }

    /// Append one committed transaction's redo image; returns its LSN.
    /// Cheap (no I/O) — called with the database storage lock held.
    pub fn append(&self, changes: Vec<ChangeRecord>) -> u64 {
        let mut s = self.state.lock().unwrap();
        let lsn = s.next_lsn;
        s.next_lsn += 1;
        s.appended_lsn = lsn;
        if s.crashed {
            // the "machine" is down: accept and drop, like writes after
            // power loss
            return lsn;
        }
        s.last_record_start = s.buf.len();
        let mut buf = std::mem::take(&mut s.buf);
        append_record(&mut buf, lsn, &changes);
        s.buf = buf;
        s.pending.push((lsn, Arc::new(changes)));
        self.counters.records_appended.inc();
        if s.buf.len() >= self.watermark {
            let _ = self.flush_locked(&mut s);
        }
        lsn
    }

    /// Flush the buffer now (called by the flusher thread, the watermark
    /// path, and snapshotting). Returns the batches made durable, for
    /// observer dispatch *outside* the lock.
    pub fn flush_now(&self) -> DurableBatch {
        let mut s = self.state.lock().unwrap();
        self.flush_locked(&mut s)
    }

    fn flush_locked(&self, s: &mut WriterState) -> DurableBatch {
        if s.crashed || s.buf.is_empty() {
            return Vec::new();
        }
        let ordinal = s.flush_ordinal + 1;
        match s.crash_plan.trips_at(ordinal) {
            Some(CrashPoint::BeforeFlush) => {
                // power dies before any byte reaches the disk
                self.die(s);
                return Vec::new();
            }
            Some(CrashPoint::MidRecord) => {
                // a prefix of the batch hits the disk; the final record is
                // torn halfway through
                let tail = s.buf.len() - s.last_record_start;
                let torn = s.last_record_start + (tail / 2).max(1);
                if let Some(f) = s.file.as_mut() {
                    let _ = f.write_all(&s.buf[..torn]);
                    let _ = f.sync_data();
                }
                self.die(s);
                return Vec::new();
            }
            Some(CrashPoint::AfterFlush) => {
                // the batch is fully durable; the machine dies right after
                if let Some(f) = s.file.as_mut() {
                    let _ = f.write_all(&s.buf);
                    let _ = f.sync_data();
                }
                self.die(s);
                return Vec::new();
            }
            None => {}
        }
        let file = match s.file.as_mut() {
            Some(f) => f,
            None => return Vec::new(),
        };
        if file
            .write_all(&s.buf)
            .and_then(|_| file.sync_data())
            .is_err()
        {
            self.die(s);
            return Vec::new();
        }
        self.counters.flushes.inc();
        self.counters.bytes_written.add(s.buf.len() as u64);
        self.counters
            .group_batch_size
            .observe_us(s.pending.len() as u64);
        s.flush_ordinal = ordinal;
        s.durable_lsn = s.appended_lsn;
        s.buf.clear();
        s.last_record_start = 0;
        let batch = std::mem::take(&mut s.pending);
        self.cond.notify_all();
        batch
    }

    fn die(&self, s: &mut WriterState) {
        s.crashed = true;
        s.buf.clear();
        s.pending.clear();
        s.file = None;
        self.cond.notify_all();
    }

    /// Force the simulated machine down, dropping any unflushed buffer
    /// (equivalent to a `BeforeFlush` crash right now).
    pub fn simulate_crash(&self) {
        let mut s = self.state.lock().unwrap();
        self.die(&mut s);
    }

    /// Block until `lsn` is durable — or the writer crashed or is stopping,
    /// in which case waiting any longer is pointless.
    pub fn wait_durable(&self, lsn: u64) {
        let mut s = self.state.lock().unwrap();
        while s.durable_lsn < lsn && !s.crashed && !s.stopping {
            let (guard, _timeout) = self
                .cond
                .wait_timeout(s, self.window.max(Duration::from_millis(1)))
                .unwrap();
            s = guard;
        }
    }

    /// Highest LSN handed out (appended, not necessarily durable).
    pub fn appended_lsn(&self) -> u64 {
        self.state.lock().unwrap().appended_lsn
    }

    /// Highest LSN written + synced.
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().unwrap().durable_lsn
    }

    /// Number of non-empty physical flushes so far.
    pub fn flush_ordinal(&self) -> u64 {
        self.state.lock().unwrap().flush_ordinal
    }

    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Drop every durable record with `lsn <= through` by rewriting the
    /// file (log compaction after a snapshot). The buffer must have been
    /// flushed first; records above `through` are preserved byte-exact.
    pub fn compact_through(&self, through: u64) -> io::Result<()> {
        let mut s = self.state.lock().unwrap();
        if s.crashed {
            return Ok(());
        }
        let _ = self.flush_locked(&mut s);
        let bytes = std::fs::read(&self.path)?;
        let scan = crate::record::scan_log(&bytes);
        let mut out = LOG_MAGIC.to_vec();
        for (lsn, changes) in &scan.records {
            if *lsn > through {
                append_record(&mut out, *lsn, changes);
            }
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        s.file = Some(OpenOptions::new().append(true).open(&self.path)?);
        Ok(())
    }

    /// Tell the flusher loop (and all waiters) to wind down.
    pub fn stop(&self) {
        let mut s = self.state.lock().unwrap();
        s.stopping = true;
        let _ = self.flush_locked(&mut s);
        self.cond.notify_all();
    }

    pub fn stopping(&self) -> bool {
        self.state.lock().unwrap().stopping
    }

    /// Park the flusher thread for up to one group-commit window. Wakes
    /// early when [`LogWriter::stop`] is called (the condvar doubles as
    /// the shutdown signal). Returns `false` once stopping.
    pub fn park_flusher(&self) -> bool {
        let s = self.state.lock().unwrap();
        if s.stopping {
            return false;
        }
        let (s, _timeout) = self
            .cond
            .wait_timeout(s, self.window.max(Duration::from_millis(1)))
            .unwrap();
        !s.stopping
    }

    /// The group-commit window.
    pub fn window(&self) -> Duration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TempDir;
    use crate::record::{scan_log, ScanOutcome};

    fn changes(n: i64) -> Vec<ChangeRecord> {
        vec![ChangeRecord::Insert {
            table: "t".into(),
            row_id: n as usize,
            row: vec![relstore::Value::Integer(n)],
        }]
    }

    fn writer(dir: &TempDir, plan: CrashPlan) -> Arc<LogWriter> {
        LogWriter::open(
            &dir.path().join("wal.log"),
            0,
            Duration::from_millis(1),
            usize::MAX,
            plan,
            Arc::new(WalCounters::new()),
        )
        .unwrap()
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let dir = TempDir::new("log-rt").unwrap();
        let w = writer(&dir, CrashPlan::none());
        assert_eq!(w.append(changes(1)), 1);
        assert_eq!(w.append(changes(2)), 2);
        let batch = w.flush_now();
        assert_eq!(batch.len(), 2);
        assert_eq!(w.durable_lsn(), 2);
        assert_eq!(w.flush_ordinal(), 1);
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].0, 2);
    }

    #[test]
    fn empty_flush_is_not_counted() {
        let dir = TempDir::new("log-empty").unwrap();
        let w = writer(&dir, CrashPlan::none());
        assert!(w.flush_now().is_empty());
        assert_eq!(w.flush_ordinal(), 0);
    }

    #[test]
    fn before_flush_crash_loses_the_batch() {
        let dir = TempDir::new("log-bf").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::BeforeFlush, 2));
        w.append(changes(1));
        w.flush_now(); // ordinal 1: survives
        w.append(changes(2));
        w.append(changes(3));
        assert!(w.flush_now().is_empty()); // ordinal 2: dies first
        assert!(w.crashed());
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn mid_record_crash_tears_only_the_last_record() {
        let dir = TempDir::new("log-mid").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::MidRecord, 1));
        w.append(changes(1));
        w.append(changes(2));
        w.append(changes(3));
        w.flush_now();
        assert!(w.crashed());
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert!(matches!(scan.outcome, ScanOutcome::TornTail { .. }));
        assert_eq!(scan.records.len(), 2); // first two intact, third torn
    }

    #[test]
    fn after_flush_crash_keeps_the_batch() {
        let dir = TempDir::new("log-af").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::AfterFlush, 1));
        w.append(changes(1));
        w.append(changes(2));
        w.flush_now();
        assert!(w.crashed());
        // appends after the crash are accepted and dropped
        w.append(changes(3));
        w.flush_now();
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn watermark_triggers_inline_flush() {
        let dir = TempDir::new("log-wm").unwrap();
        let w = LogWriter::open(
            &dir.path().join("wal.log"),
            0,
            Duration::from_secs(3600),
            1, // any byte triggers a flush
            CrashPlan::none(),
            Arc::new(WalCounters::new()),
        )
        .unwrap();
        w.append(changes(1));
        assert_eq!(w.durable_lsn(), 1);
        assert_eq!(w.flush_ordinal(), 1);
    }

    #[test]
    fn wait_durable_returns_after_crash() {
        let dir = TempDir::new("log-wait").unwrap();
        let w = writer(&dir, CrashPlan::at(CrashPoint::BeforeFlush, 1));
        let lsn = w.append(changes(1));
        w.flush_now(); // crashes
        w.wait_durable(lsn); // must not hang
        assert!(w.crashed());
    }

    #[test]
    fn compaction_drops_covered_records_and_keeps_tail() {
        let dir = TempDir::new("log-compact").unwrap();
        let w = writer(&dir, CrashPlan::none());
        for i in 1..=4 {
            w.append(changes(i));
        }
        w.flush_now();
        w.compact_through(2).unwrap();
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        let lsns: Vec<u64> = scan.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![3, 4]);
        // appending after compaction still works
        w.append(changes(5));
        w.flush_now();
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.records.len(), 3);
    }

    #[test]
    fn group_commit_across_threads_shares_flushes() {
        let dir = TempDir::new("log-group").unwrap();
        let counters = Arc::new(WalCounters::new());
        let w = LogWriter::open(
            &dir.path().join("wal.log"),
            0,
            Duration::from_millis(2),
            usize::MAX,
            CrashPlan::none(),
            Arc::clone(&counters),
        )
        .unwrap();
        // background flusher stand-in
        let wf = Arc::clone(&w);
        let flusher = std::thread::spawn(move || {
            while !wf.stopping() {
                std::thread::sleep(Duration::from_millis(1));
                wf.flush_now();
            }
        });
        let mut handles = Vec::new();
        for t in 0..4 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let lsn = w.append(changes(t * 100 + i));
                    w.wait_durable(lsn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        w.stop();
        flusher.join().unwrap();
        assert_eq!(w.durable_lsn(), 100);
        let flushes = counters.flushes.get();
        assert!((1..=100).contains(&flushes));
        assert_eq!(counters.records_appended.get(), 100);
        // batch-size histogram accounts for every record
        assert_eq!(counters.group_batch_size.sum_us(), 100);
        let scan = scan_log(&std::fs::read(w.path()).unwrap());
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 100);
    }
}
