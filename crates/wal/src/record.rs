//! Binary framing of the write-ahead log.
//!
//! ```text
//! file   := HEADER record*
//! HEADER := b"WRWAL\x01\0\0"                       (8 bytes)
//! record := len:u32  lsn:u64  crc:u32  payload     (crc = CRC-32 of payload)
//! payload:= count:u32  change*                     (len = payload length)
//! ```
//!
//! Everything is little-endian. A record is the redo image of exactly one
//! committed transaction; `lsn` values are strictly increasing. The CRC
//! covers only the payload, so a torn tail (partial final record, the
//! normal crash artefact of an append-only file) and a corrupted record
//! are both detected by [`scan_log`], which reports the byte offset where
//! the good prefix ends so recovery can truncate the file there.

use relstore::{ChangeRecord, Row, Value};

/// Magic + format version, written once at file creation.
pub const LOG_MAGIC: &[u8; 8] = b"WRWAL\x01\0\0";

/// Fixed bytes of a record frame before the payload.
pub const RECORD_HEADER_LEN: usize = 4 + 8 + 4;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, table-driven)
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Integer(i) => {
            buf.push(1);
            put_u64(buf, *i as u64);
        }
        Value::Real(r) => {
            buf.push(2);
            put_u64(buf, r.to_bits());
        }
        Value::Text(s) => {
            buf.push(3);
            put_bytes(buf, s.as_bytes());
        }
        Value::Boolean(b) => {
            buf.push(4);
            buf.push(*b as u8);
        }
        Value::Timestamp(t) => {
            buf.push(5);
            put_u64(buf, *t as u64);
        }
        Value::Blob(b) => {
            buf.push(6);
            put_bytes(buf, b);
        }
    }
}

pub fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn put_change(buf: &mut Vec<u8>, c: &ChangeRecord) {
    match c {
        ChangeRecord::Insert { table, row_id, row } => {
            buf.push(0);
            put_bytes(buf, table.as_bytes());
            put_u64(buf, *row_id as u64);
            put_row(buf, row);
        }
        ChangeRecord::Update { table, row_id, row } => {
            buf.push(1);
            put_bytes(buf, table.as_bytes());
            put_u64(buf, *row_id as u64);
            put_row(buf, row);
        }
        ChangeRecord::Delete { table, row_id, row } => {
            buf.push(2);
            put_bytes(buf, table.as_bytes());
            put_u64(buf, *row_id as u64);
            put_row(buf, row);
        }
        ChangeRecord::Ddl { sql } => {
            buf.push(3);
            put_bytes(buf, sql.as_bytes());
        }
    }
}

/// Append one framed record (the redo image of one committed transaction)
/// to `buf`. Returns the number of bytes appended.
pub fn append_record(buf: &mut Vec<u8>, lsn: u64, changes: &[ChangeRecord]) -> usize {
    let mut payload = Vec::with_capacity(64 * changes.len() + 8);
    put_u32(&mut payload, changes.len() as u32);
    for c in changes {
        put_change(&mut payload, c);
    }
    let start = buf.len();
    put_u32(buf, payload.len() as u32);
    put_u64(buf, lsn);
    put_u32(buf, crc32(&payload));
    buf.extend_from_slice(&payload);
    buf.len() - start
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Option<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).ok()
    }

    fn value(&mut self) -> Option<Value> {
        Some(match self.u8()? {
            0 => Value::Null,
            1 => Value::Integer(self.u64()? as i64),
            2 => Value::Real(f64::from_bits(self.u64()?)),
            3 => Value::Text(self.string()?),
            4 => Value::Boolean(self.u8()? != 0),
            5 => Value::Timestamp(self.u64()? as i64),
            6 => Value::Blob(self.bytes()?.to_vec()),
            _ => return None,
        })
    }

    fn row(&mut self) -> Option<Row> {
        let n = self.u32()? as usize;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Some(row)
    }

    fn change(&mut self) -> Option<ChangeRecord> {
        Some(match self.u8()? {
            0 => ChangeRecord::Insert {
                table: self.string()?,
                row_id: self.u64()? as usize,
                row: self.row()?,
            },
            1 => ChangeRecord::Update {
                table: self.string()?,
                row_id: self.u64()? as usize,
                row: self.row()?,
            },
            2 => ChangeRecord::Delete {
                table: self.string()?,
                row_id: self.u64()? as usize,
                row: self.row()?,
            },
            3 => ChangeRecord::Ddl {
                sql: self.string()?,
            },
            _ => return None,
        })
    }
}

/// Decode a row from an encoded buffer (shared with the snapshot format).
pub fn decode_row(data: &[u8], pos: &mut usize) -> Option<Row> {
    let mut c = Cursor { data, pos: *pos };
    let row = c.row()?;
    *pos = c.pos;
    Some(row)
}

/// How a log scan ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanOutcome {
    /// Every byte of the file parsed and checksummed clean.
    Clean,
    /// The final record was incomplete (normal crash artefact): the file
    /// ends mid-record at `at` bytes into it.
    TornTail { at: usize },
    /// A record failed its CRC or was structurally invalid at offset `at`.
    Corrupt { at: usize },
    /// The file header was missing or wrong.
    BadHeader,
}

/// The result of scanning a log file image.
#[derive(Debug)]
pub struct LogScan {
    /// Every intact record, in file order: `(lsn, changes)`.
    pub records: Vec<(u64, Vec<ChangeRecord>)>,
    /// Length of the good prefix in bytes — recovery truncates here.
    pub good_len: usize,
    pub outcome: ScanOutcome,
}

/// Scan a full log image, stopping at the first torn or corrupt record.
pub fn scan_log(bytes: &[u8]) -> LogScan {
    if bytes.len() < LOG_MAGIC.len() || &bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
        return LogScan {
            records: Vec::new(),
            good_len: 0,
            outcome: ScanOutcome::BadHeader,
        };
    }
    let mut records = Vec::new();
    let mut pos = LOG_MAGIC.len();
    loop {
        if pos == bytes.len() {
            return LogScan {
                records,
                good_len: pos,
                outcome: ScanOutcome::Clean,
            };
        }
        let rest = &bytes[pos..];
        if rest.len() < RECORD_HEADER_LEN {
            return LogScan {
                records,
                good_len: pos,
                outcome: ScanOutcome::TornTail { at: pos },
            };
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let lsn = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[12..16].try_into().unwrap());
        if rest.len() < RECORD_HEADER_LEN + len {
            return LogScan {
                records,
                good_len: pos,
                outcome: ScanOutcome::TornTail { at: pos },
            };
        }
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if crc32(payload) != crc {
            return LogScan {
                records,
                good_len: pos,
                outcome: ScanOutcome::Corrupt { at: pos },
            };
        }
        let mut c = Cursor {
            data: payload,
            pos: 0,
        };
        let n = match c.u32() {
            Some(n) => n as usize,
            None => {
                return LogScan {
                    records,
                    good_len: pos,
                    outcome: ScanOutcome::Corrupt { at: pos },
                }
            }
        };
        let mut changes = Vec::with_capacity(n);
        let mut ok = true;
        for _ in 0..n {
            match c.change() {
                Some(ch) => changes.push(ch),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || c.pos != payload.len() {
            return LogScan {
                records,
                good_len: pos,
                outcome: ScanOutcome::Corrupt { at: pos },
            };
        }
        records.push((lsn, changes));
        pos += RECORD_HEADER_LEN + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_changes() -> Vec<ChangeRecord> {
        vec![
            ChangeRecord::Insert {
                table: "book".into(),
                row_id: 3,
                row: vec![
                    Value::Integer(42),
                    Value::Text("WebML".into()),
                    Value::Real(19.5),
                    Value::Null,
                    Value::Boolean(true),
                    Value::Timestamp(1_700_000_000_000),
                    Value::Blob(vec![1, 2, 3]),
                ],
            },
            ChangeRecord::Update {
                table: "book".into(),
                row_id: 3,
                row: vec![Value::Integer(42)],
            },
            ChangeRecord::Delete {
                table: "author".into(),
                row_id: 9,
                row: vec![Value::Integer(9), Value::Text("Ceri".into())],
            },
            ChangeRecord::Ddl {
                sql: "CREATE TABLE t (oid INTEGER PRIMARY KEY)".into(),
            },
        ]
    }

    fn log_with(records: &[(u64, Vec<ChangeRecord>)]) -> Vec<u8> {
        let mut buf = LOG_MAGIC.to_vec();
        for (lsn, changes) in records {
            append_record(&mut buf, *lsn, changes);
        }
        buf
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32(IEEE) of "123456789" is 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_all_value_kinds() {
        let changes = sample_changes();
        let buf = log_with(&[(7, changes.clone())]);
        let scan = scan_log(&buf);
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.good_len, buf.len());
        assert_eq!(scan.records, vec![(7, changes)]);
    }

    #[test]
    fn multiple_records_in_order() {
        let a = vec![ChangeRecord::Delete {
            table: "t".into(),
            row_id: 0,
            row: vec![Value::Integer(1)],
        }];
        let b = vec![ChangeRecord::Ddl {
            sql: "DROP TABLE t".into(),
        }];
        let buf = log_with(&[(1, a.clone()), (2, b.clone())]);
        let scan = scan_log(&buf);
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0], (1, a));
        assert_eq!(scan.records[1], (2, b));
    }

    #[test]
    fn torn_tail_keeps_good_prefix() {
        let changes = sample_changes();
        let full = log_with(&[(1, changes.clone()), (2, changes.clone())]);
        let one = log_with(&[(1, changes.clone())]);
        // cut the second record anywhere: header-only, mid-payload, 1 byte short
        for cut in [one.len() + 3, one.len() + 20, full.len() - 1] {
            let scan = scan_log(&full[..cut]);
            assert_eq!(scan.outcome, ScanOutcome::TornTail { at: one.len() });
            assert_eq!(scan.good_len, one.len());
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_payload_detected_by_crc() {
        let changes = sample_changes();
        let mut buf = log_with(&[(1, changes.clone()), (2, changes)]);
        let one_len = log_with(&[(1, sample_changes())]).len();
        // flip a byte inside the second record's payload
        let idx = one_len + RECORD_HEADER_LEN + 5;
        buf[idx] ^= 0xFF;
        let scan = scan_log(&buf);
        assert_eq!(scan.outcome, ScanOutcome::Corrupt { at: one_len });
        assert_eq!(scan.good_len, one_len);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn bad_header_yields_nothing() {
        let scan = scan_log(b"NOTALOG!");
        assert_eq!(scan.outcome, ScanOutcome::BadHeader);
        assert!(scan.records.is_empty());
        let scan = scan_log(b"");
        assert_eq!(scan.outcome, ScanOutcome::BadHeader);
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan_log(LOG_MAGIC);
        assert_eq!(scan.outcome, ScanOutcome::Clean);
        assert!(scan.records.is_empty());
        assert_eq!(scan.good_len, LOG_MAGIC.len());
    }
}
