//! Snapshot files: a CRC-checked physical image of every table at a known
//! LSN, so recovery replays only the log *tail* instead of history from
//! the beginning of time.
//!
//! Snapshots are **fuzzy-safe by construction**: the `(tables, last_lsn)`
//! pair is captured atomically under the database write lock
//! ([`relstore::Database::freeze_tables`]), and log replay is physical and
//! idempotent, so a snapshot taken while the log keeps growing still
//! recovers exactly — records at or below `last_lsn` are skipped, records
//! above it re-apply cleanly.
//!
//! ```text
//! file  := b"WRSNAP\x01\0"  last_lsn:u64  ntables:u32  table*  crc:u32
//! table := create_sql  nindexes:u32 (name unique:u8 ncols:u32 col*)*
//!          next_auto:u64  nrows:u32 (row_id:u64 row)*
//! ```
//!
//! The trailing CRC covers everything after the magic. A torn or corrupt
//! snapshot loads as `None` and recovery falls back to full log replay —
//! snapshot writes go through a tmp file + rename, so the previous
//! snapshot survives a crash mid-write.

use crate::record::{crc32, decode_row, put_bytes, put_row, put_u32, put_u64};
use relstore::{ChangeRecord, Database, Row, RowId, Table};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Magic + format version of a snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"WRSNAP\x01\0";

/// The physical image of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnap {
    /// Re-runnable DDL reconstructing schema + constraints.
    pub create_sql: String,
    /// Secondary indexes: `(name, unique, column names)`.
    pub indexes: Vec<(String, bool, Vec<String>)>,
    /// Auto-increment high-water mark.
    pub next_auto: i64,
    /// Live rows with their exact slot ids.
    pub rows: Vec<(RowId, Row)>,
}

/// A whole-database image at `last_lsn`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Every committed transaction with `lsn <= last_lsn` is reflected.
    pub last_lsn: u64,
    /// Tables keyed by canonical (lower-case) name.
    pub tables: BTreeMap<String, TableSnap>,
}

impl SnapshotData {
    /// Build the image from tables frozen under the database write lock.
    pub fn from_frozen(tables: &BTreeMap<String, Table>, last_lsn: u64) -> SnapshotData {
        let mut out = BTreeMap::new();
        for (name, t) in tables {
            let col_name = |i: usize| t.schema.columns[i].name.clone();
            out.insert(
                name.clone(),
                TableSnap {
                    create_sql: t.schema.to_create_sql(),
                    indexes: t
                        .indexes()
                        .iter()
                        .map(|ix| {
                            (
                                ix.name.clone(),
                                ix.unique,
                                ix.columns.iter().map(|&c| col_name(c)).collect(),
                            )
                        })
                        .collect(),
                    next_auto: t.peek_auto(),
                    rows: t.iter().map(|(id, r)| (id, r.clone())).collect(),
                },
            );
        }
        SnapshotData {
            last_lsn,
            tables: out,
        }
    }

    /// Restore this image into a fresh database (schema, indexes, rows in
    /// their exact slots, auto-increment counters).
    pub fn restore_into(&self, db: &Database) -> relstore::Result<()> {
        for (name, snap) in &self.tables {
            db.execute_script(&snap.create_sql)?;
            for (ix_name, unique, cols) in &snap.indexes {
                let sql = format!(
                    "CREATE {}INDEX {} ON {} ({})",
                    if *unique { "UNIQUE " } else { "" },
                    ix_name,
                    name,
                    cols.join(", ")
                );
                db.execute_script(&sql)?;
            }
            for (row_id, row) in &snap.rows {
                db.apply_change(&ChangeRecord::Insert {
                    table: name.clone(),
                    row_id: *row_id,
                    row: row.clone(),
                })?;
            }
            db.set_auto_counter(name, snap.next_auto)?;
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(4096);
        put_u64(&mut body, self.last_lsn);
        put_u32(&mut body, self.tables.len() as u32);
        for (name, snap) in &self.tables {
            put_bytes(&mut body, name.as_bytes());
            put_bytes(&mut body, snap.create_sql.as_bytes());
            put_u32(&mut body, snap.indexes.len() as u32);
            for (name, unique, cols) in &snap.indexes {
                put_bytes(&mut body, name.as_bytes());
                body.push(*unique as u8);
                put_u32(&mut body, cols.len() as u32);
                for c in cols {
                    put_bytes(&mut body, c.as_bytes());
                }
            }
            put_u64(&mut body, snap.next_auto as u64);
            put_u32(&mut body, snap.rows.len() as u32);
            for (row_id, row) in &snap.rows {
                put_u64(&mut body, *row_id as u64);
                put_row(&mut body, row);
            }
        }
        let mut out = SNAP_MAGIC.to_vec();
        let crc = crc32(&body);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<SnapshotData> {
        if bytes.len() < SNAP_MAGIC.len() + 4 || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return None;
        }
        let body = &bytes[SNAP_MAGIC.len()..bytes.len() - 4];
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crc32(body) != crc {
            return None;
        }
        let mut pos = 0usize;
        let u32_at = |pos: &mut usize| -> Option<u32> {
            let v = u32::from_le_bytes(body.get(*pos..*pos + 4)?.try_into().unwrap());
            *pos += 4;
            Some(v)
        };
        let u64_at = |pos: &mut usize| -> Option<u64> {
            let v = u64::from_le_bytes(body.get(*pos..*pos + 8)?.try_into().unwrap());
            *pos += 8;
            Some(v)
        };
        let str_at = |pos: &mut usize| -> Option<String> {
            let n = u32_at(pos)? as usize;
            let s = body.get(*pos..*pos + n)?;
            *pos += n;
            String::from_utf8(s.to_vec()).ok()
        };
        let last_lsn = u64_at(&mut pos)?;
        let ntables = u32_at(&mut pos)? as usize;
        let mut tables = BTreeMap::new();
        for _ in 0..ntables {
            let table_name = str_at(&mut pos)?;
            let create_sql = str_at(&mut pos)?;
            let nix = u32_at(&mut pos)? as usize;
            let mut indexes = Vec::with_capacity(nix);
            for _ in 0..nix {
                let name = str_at(&mut pos)?;
                let unique = *body.get(pos)? != 0;
                pos += 1;
                let ncols = u32_at(&mut pos)? as usize;
                let mut cols = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    cols.push(str_at(&mut pos)?);
                }
                indexes.push((name, unique, cols));
            }
            let next_auto = u64_at(&mut pos)? as i64;
            let nrows = u32_at(&mut pos)? as usize;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let row_id = u64_at(&mut pos)? as usize;
                let row = decode_row(body, &mut pos)?;
                rows.push((row_id, row));
            }
            tables.insert(
                table_name,
                TableSnap {
                    create_sql,
                    indexes,
                    next_auto,
                    rows,
                },
            );
        }
        if pos != body.len() {
            return None;
        }
        Some(SnapshotData { last_lsn, tables })
    }
}

/// Atomically (tmp + rename) write a snapshot file.
pub fn write_snapshot(path: &Path, snap: &SnapshotData) -> io::Result<u64> {
    let bytes = snap.encode();
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// Load a snapshot, returning `None` when the file is absent, torn, or
/// fails its checksum (recovery then falls back to full log replay).
pub fn load_snapshot(path: &Path) -> io::Result<Option<SnapshotData>> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(SnapshotData::decode(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{corrupt_byte, TempDir};
    use relstore::Params;

    fn seeded_db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE book (oid INTEGER PRIMARY KEY AUTOINCREMENT, title TEXT NOT NULL, price REAL);
             CREATE TABLE author (oid INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL);
             CREATE INDEX ix_title ON book (title);",
        )
        .unwrap();
        db.execute(
            "INSERT INTO book (title, price) VALUES ('WebML', 30.0), ('Araneus', NULL)",
            &Params::new(),
        )
        .unwrap();
        db.execute("INSERT INTO author (name) VALUES ('Ceri')", &Params::new())
            .unwrap();
        // leave a hole so slot ids are not dense
        db.execute("DELETE FROM book WHERE oid = 1", &Params::new())
            .unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_schema_rows_and_counters() {
        let dir = TempDir::new("snap-rt").unwrap();
        let db = seeded_db();
        let (tables, _) = db.freeze_tables(|| ());
        let snap = SnapshotData::from_frozen(&tables, 17);
        let path = dir.path().join("wal.snap");
        write_snapshot(&path, &snap).unwrap();
        let loaded = load_snapshot(&path).unwrap().expect("snapshot loads");
        assert_eq!(loaded, snap);
        let fresh = Database::new();
        loaded.restore_into(&fresh).unwrap();
        assert_eq!(fresh.dump(), db.dump());
        // auto-increment continues where the original left off
        fresh
            .execute(
                "INSERT INTO book (title) VALUES ('Strudel')",
                &Params::new(),
            )
            .unwrap();
        let rs = fresh
            .query(
                "SELECT oid FROM book WHERE title = 'Strudel'",
                &Params::new(),
            )
            .unwrap();
        assert_eq!(rs.first("oid"), Some(&relstore::Value::Integer(3)));
        // the secondary index survived
        let (tables, _) = fresh.freeze_tables(|| ());
        assert_eq!(tables["book"].indexes().len(), 1);
    }

    #[test]
    fn corrupt_snapshot_loads_as_none() {
        let dir = TempDir::new("snap-bad").unwrap();
        let db = seeded_db();
        let (tables, _) = db.freeze_tables(|| ());
        let path = dir.path().join("wal.snap");
        write_snapshot(&path, &SnapshotData::from_frozen(&tables, 5)).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        corrupt_byte(&path, len / 2).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), None);
        // missing file is also None, not an error
        assert_eq!(load_snapshot(&dir.path().join("nope")).unwrap(), None);
    }
}
