//! The recovery invariant, proven over the crash-point matrix:
//!
//! > After a crash at *any* injected point — before a flush, mid-record
//! > (torn tail), after a flush, or via a corrupted checksum — recovery
//! > yields a database state equal to the state after some **committed
//! > prefix** of the transaction history. No partial transaction ever
//! > surfaces.
//!
//! The harness drives a deterministic workload (inserts, insert+update
//! transactions, insert+delete transactions — every transaction emits
//! exactly one log record), flushes every `f` transactions, and plants a
//! [`CrashPlan`] at a chosen flush ordinal. Because the crash point is
//! exact, the *expected* prefix length is computable in closed form and
//! the property is checked as an equality, not merely membership.

use proptest::prelude::*;
use relstore::{CommitSink, Database, Params};
use std::sync::Arc;
use std::time::Duration;
use wal::record::RECORD_HEADER_LEN;
use wal::{CrashPlan, CrashPoint, TempDir, Wal, WalConfig};

type Dump = std::collections::BTreeMap<String, (Vec<(usize, Vec<relstore::Value>)>, i64)>;

const DDL: &str = "CREATE TABLE t (oid INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT NOT NULL)";

fn manual_config(dir: &TempDir, plan: CrashPlan) -> WalConfig {
    let mut cfg = WalConfig::new(dir.path());
    cfg.group_commit_window = Duration::from_secs(3600); // manual flushes only
    cfg.flush_watermark_bytes = usize::MAX;
    cfg.crash_plan = plan;
    cfg
}

/// One deterministic committed transaction (always emits exactly one log
/// record). Returns nothing; the driver tracks live oids itself.
fn run_tx(db: &Database, i: usize, next_oid: &mut i64, live: &mut Vec<i64>) {
    let kind = i % 4;
    let val = format!("v{i}");
    match kind {
        // insert + update of the fresh row, in one transaction
        2 => {
            db.transaction(|tx| {
                tx.execute(
                    "INSERT INTO t (v) VALUES (:v)",
                    &Params::new().bind("v", val.clone()),
                )?;
                tx.execute(
                    "UPDATE t SET v = :v WHERE oid = :o",
                    &Params::new()
                        .bind("v", format!("u{i}"))
                        .bind("o", *next_oid),
                )?;
                Ok(())
            })
            .unwrap();
            live.push(*next_oid);
            *next_oid += 1;
        }
        // insert + delete of an older row, in one transaction
        3 if !live.is_empty() => {
            let victim = live.remove(i % live.len());
            db.transaction(|tx| {
                tx.execute(
                    "INSERT INTO t (v) VALUES (:v)",
                    &Params::new().bind("v", val.clone()),
                )?;
                tx.execute(
                    "DELETE FROM t WHERE oid = :o",
                    &Params::new().bind("o", victim),
                )?;
                Ok(())
            })
            .unwrap();
            live.push(*next_oid);
            *next_oid += 1;
        }
        // plain autocommit insert
        _ => {
            db.execute(
                "INSERT INTO t (v) VALUES (:v)",
                &Params::new().bind("v", val),
            )
            .unwrap();
            live.push(*next_oid);
            *next_oid += 1;
        }
    }
}

/// Drive `n` transactions with a flush every `f`, crashing per `plan`.
/// Returns the dump after every committed prefix (index = #transactions)
/// — recorded *before* the crash matters, since the in-memory engine
/// keeps working; durability is what the crash destroys.
fn drive(dir: &TempDir, n: usize, f: usize, plan: CrashPlan) -> Vec<Dump> {
    let wal = Wal::open(manual_config(dir, plan), Arc::new(obs::WalCounters::new())).unwrap();
    let db = Database::new();
    db.set_commit_sink(Arc::clone(&wal) as Arc<dyn CommitSink>, false);
    db.execute_script(DDL).unwrap();
    wal.flush_and_notify(); // flush ordinal 1: the DDL record
    let mut prefixes = vec![db.dump()];
    let (mut next_oid, mut live) = (1i64, Vec::new());
    for i in 1..=n {
        run_tx(&db, i, &mut next_oid, &mut live);
        prefixes.push(db.dump());
        if i % f == 0 {
            wal.flush_and_notify();
        }
    }
    if !n.is_multiple_of(f) {
        wal.flush_and_notify();
    }
    wal.stop();
    prefixes
}

/// Closed-form: how many transactions must the recovered state contain?
fn expected_prefix(n: usize, f: usize, point: CrashPoint, data_flush: u64) -> usize {
    let flushes = n.div_ceil(f); // data flushes actually performed
    let c = data_flush as usize;
    if c > flushes {
        return n; // the crash ordinal is never reached
    }
    let start = (c - 1) * f; // txs durable before the crashing flush
    let end = (c * f).min(n); // txs in the crashing batch
    match point {
        CrashPoint::BeforeFlush => start,
        CrashPoint::MidRecord => end - 1,
        CrashPoint::AfterFlush => end,
    }
}

fn recover(dir: &TempDir) -> (Dump, wal::RecoveryInfo) {
    let wal = Wal::open(
        manual_config(dir, CrashPlan::none()),
        Arc::new(obs::WalCounters::new()),
    )
    .unwrap();
    let db = Database::new();
    let info = wal.recover_into(&db).unwrap();
    wal.stop();
    (db.dump(), info)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: for every injected crash point the
    /// recovered state equals the exact committed prefix the crash
    /// semantics dictate.
    #[test]
    fn crash_at_any_point_recovers_a_committed_prefix(
        n in 1usize..18,
        f in 1usize..4,
        point_sel in 0u8..3,
        data_flush in 1u64..7,
    ) {
        let point = match point_sel {
            0 => CrashPoint::BeforeFlush,
            1 => CrashPoint::MidRecord,
            _ => CrashPoint::AfterFlush,
        };
        // ordinal 1 is the DDL flush; data flush c is ordinal c + 1
        let dir = TempDir::new("prop-crash").unwrap();
        let prefixes = drive(&dir, n, f, CrashPlan::at(point, data_flush + 1));
        let (recovered, _info) = recover(&dir);
        let want = expected_prefix(n, f, point, data_flush);
        prop_assert!(
            recovered == prefixes[want],
            "n={n} f={f} point={point:?} data_flush={data_flush}: \
             recovered state is not the expected {want}-transaction prefix"
        );
        // and, a fortiori, it is *some* committed prefix
        prop_assert!(prefixes.contains(&recovered));
    }

    /// Corrupting any byte of any record's payload truncates recovery to
    /// the transactions before that record — still a committed prefix.
    #[test]
    fn corrupted_checksum_recovers_the_prefix_before_the_damage(
        n in 2usize..12,
        victim_sel in 0usize..12,
        byte_sel in 0usize..64,
    ) {
        let dir = TempDir::new("prop-corrupt").unwrap();
        let prefixes = drive(&dir, n, 1, CrashPlan::none());
        // find record frame offsets in the on-disk log
        let log_path = dir.path().join("wal.log");
        let bytes = std::fs::read(&log_path).unwrap();
        let mut offsets = Vec::new(); // (start, payload_len) per record
        let mut pos = wal::record::LOG_MAGIC.len();
        while pos + RECORD_HEADER_LEN <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            offsets.push((pos, len));
            pos += RECORD_HEADER_LEN + len;
        }
        // record 0 is the DDL; corrupt one of the data records
        prop_assert!(offsets.len() == n + 1);
        let victim = 1 + victim_sel % n; // 1..=n
        let (start, len) = offsets[victim];
        wal::fault::corrupt_byte(&log_path, (start + RECORD_HEADER_LEN + byte_sel % len) as u64)
            .unwrap();
        let (recovered, info) = recover(&dir);
        // transactions before the corrupt record survive; the rest are cut
        prop_assert!(
            recovered == prefixes[victim - 1],
            "n={n} victim={victim}: recovery did not stop at the corrupt record"
        );
        let saw_corrupt = matches!(info.log_outcome, wal::ScanOutcome::Corrupt { .. });
        prop_assert!(saw_corrupt);
    }

    /// Truncating the log anywhere inside the final record (a torn tail)
    /// recovers every whole record before it.
    #[test]
    fn torn_tail_truncation_recovers_whole_records(
        n in 2usize..12,
        cut_sel in 1usize..64,
    ) {
        let dir = TempDir::new("prop-torn").unwrap();
        let prefixes = drive(&dir, n, 1, CrashPlan::none());
        let log_path = dir.path().join("wal.log");
        let total = std::fs::metadata(&log_path).unwrap().len();
        // find the last record's start
        let bytes = std::fs::read(&log_path).unwrap();
        let mut pos = wal::record::LOG_MAGIC.len();
        let mut last_start = pos;
        while pos + RECORD_HEADER_LEN <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            last_start = pos;
            pos += RECORD_HEADER_LEN + len;
        }
        let tail_len = total as usize - last_start;
        let cut = last_start + 1 + cut_sel % (tail_len - 1); // strictly inside
        wal::fault::truncate_file(&log_path, cut as u64).unwrap();
        let (recovered, info) = recover(&dir);
        prop_assert!(
            recovered == prefixes[n - 1],
            "n={n} cut={cut}: torn tail did not recover the n-1 prefix"
        );
        let saw_torn = matches!(info.log_outcome, wal::ScanOutcome::TornTail { .. });
        prop_assert!(saw_torn);
    }
}

/// Deterministic smoke over the whole matrix (exercised by `verify.sh`):
/// every crash point × several flush cadences, exact-prefix equality.
#[test]
fn crash_point_matrix_smoke() {
    for point in [
        CrashPoint::BeforeFlush,
        CrashPoint::MidRecord,
        CrashPoint::AfterFlush,
    ] {
        for f in [1usize, 2, 3] {
            for data_flush in [1u64, 2, 3] {
                let n = 9;
                let dir = TempDir::new("matrix").unwrap();
                let prefixes = drive(&dir, n, f, CrashPlan::at(point, data_flush + 1));
                let (recovered, _) = recover(&dir);
                let want = expected_prefix(n, f, point, data_flush);
                assert!(
                    recovered == prefixes[want],
                    "matrix point={point:?} f={f} data_flush={data_flush} want={want}"
                );
            }
        }
    }
}

/// A snapshot mid-history must not change what recovery yields.
#[test]
fn snapshot_plus_tail_equals_pure_log_recovery() {
    let dir = TempDir::new("snap-equiv").unwrap();
    let wal = Wal::open(
        manual_config(&dir, CrashPlan::none()),
        Arc::new(obs::WalCounters::new()),
    )
    .unwrap();
    let db = Database::new();
    db.set_commit_sink(Arc::clone(&wal) as Arc<dyn CommitSink>, false);
    db.execute_script(DDL).unwrap();
    let (mut next_oid, mut live) = (1i64, Vec::new());
    for i in 1..=6 {
        run_tx(&db, i, &mut next_oid, &mut live);
    }
    wal.snapshot(&db).unwrap();
    for i in 7..=11 {
        run_tx(&db, i, &mut next_oid, &mut live);
    }
    wal.flush_and_notify();
    let final_state = db.dump();
    wal.stop();
    let (recovered, info) = recover(&dir);
    assert!(recovered == final_state);
    assert!(info.snapshot_lsn > 0);
    assert!(info.replayed_records >= 5);
}
