//! Typed handles into a [`crate::model::HypertextModel`] arena.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub usize);

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// Handle to a site view.
    SiteViewId
);
id_type!(
    /// Handle to an area within a site view.
    AreaId
);
id_type!(
    /// Handle to a page.
    PageId
);
id_type!(
    /// Handle to a content unit.
    UnitId
);
id_type!(
    /// Handle to an operation.
    OperationId
);
id_type!(
    /// Handle to a link.
    LinkId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        assert_eq!(PageId(3).to_string(), "PageId3");
        assert_eq!(UnitId(0).to_string(), "UnitId0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(LinkId(1));
        assert!(s.contains(&LinkId(1)));
        assert!(SiteViewId(1) < SiteViewId(2));
    }
}
