//! # webml — the Web Modelling Language metamodel
//!
//! WebML is "a visual language for expressing the hypertextual front-end of
//! a data-intensive Web application" (CIDR 2003, §1). This crate is the
//! abstract syntax of that language:
//!
//! * [`structure`] — site views targeted at audiences, areas, pages with
//!   layout categories;
//! * [`units`] — the eleven basic unit kinds of §8 (six content units +
//!   five operations), hierarchical indexes, plug-in units, selector
//!   conditions, and §6 cache annotations;
//! * [`links`] — contextual/transport/automatic/OK/KO links with typed
//!   parameter sources;
//! * [`model`] — the [`HypertextModel`] arena with a fluent building API;
//! * [`mod@validate`] — static checks against the companion [`er::ErModel`]
//!   (dangling references, cross-page transport links, dataflow cycles,
//!   unreachable pages, ...).
//!
//! Models built here are consumed by the `codegen` crate (descriptors,
//! controller configuration, template skeletons) and interpreted by the
//! `mvc` runtime.

pub mod ids;
pub mod links;
pub mod model;
pub mod structure;
pub mod units;
pub mod validate;

pub use ids::{AreaId, LinkId, OperationId, PageId, SiteViewId, UnitId};
pub use links::{Link, LinkEnd, LinkKind, LinkParam, ParamSource};
pub use model::{HypertextModel, ModelStats};
pub use structure::{Area, Audience, LayoutCategory, Page, SiteView};
pub use units::{
    CacheSpec, Condition, Field, HierarchyLevel, Operation, OperationKind, SortSpec, Unit, UnitKind,
};
pub use validate::{is_valid, validate, Issue, Severity};
