//! Links: the connective tissue of a WebML hypertext.
//!
//! Links "connect pages, content units, and operations to provide users
//! with suitable interactions" (§1). A link carries **parameters** — most
//! importantly the implicit oid of the selected instance ("the link
//! pointing to the unit ... implicitly transports the identifier of the
//! volume", Fig. 1 commentary).

use crate::ids::{OperationId, PageId, UnitId};

/// What a link starts from or points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkEnd {
    Page(PageId),
    Unit(UnitId),
    Operation(OperationId),
}

impl LinkEnd {
    pub fn as_unit(&self) -> Option<UnitId> {
        match self {
            LinkEnd::Unit(u) => Some(*u),
            _ => None,
        }
    }

    pub fn as_page(&self) -> Option<PageId> {
        match self {
            LinkEnd::Page(p) => Some(*p),
            _ => None,
        }
    }

    pub fn as_operation(&self) -> Option<OperationId> {
        match self {
            LinkEnd::Operation(o) => Some(*o),
            _ => None,
        }
    }
}

/// The behavioural kind of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// A normal contextual link: rendered as an anchor/button; navigating
    /// it transports the parameters.
    Contextual,
    /// A non-contextual link between pages (no parameters).
    NonContextual,
    /// A transport link (dashed arrow in diagrams): parameters flow
    /// without any user interaction; drives intra-page unit computation
    /// order.
    Transport,
    /// An automatic link: navigated by the system on page entry (e.g. a
    /// default selection for an index).
    Automatic,
    /// Where to go when an operation succeeds.
    Ok,
    /// Where to go when an operation fails ("to which page redirect the
    /// user in case of operation failure", §2).
    Ko,
}

impl LinkKind {
    pub fn name(self) -> &'static str {
        match self {
            LinkKind::Contextual => "contextual",
            LinkKind::NonContextual => "noncontextual",
            LinkKind::Transport => "transport",
            LinkKind::Automatic => "automatic",
            LinkKind::Ok => "ok",
            LinkKind::Ko => "ko",
        }
    }

    /// Does navigation require a user gesture?
    pub fn is_user_navigated(self) -> bool {
        matches!(self, LinkKind::Contextual | LinkKind::NonContextual)
    }
}

/// Where a link parameter's value comes from on the source side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamSource {
    /// The oid of the (selected) instance of the source unit.
    SelectedOid,
    /// An attribute of the (selected) instance.
    Attribute(String),
    /// A field of the source entry unit.
    Field(String),
    /// A constant.
    Constant(String),
    /// A session variable (e.g. the logged-in user's oid).
    Session(String),
}

/// One parameter carried by a link: `name` is how the target knows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkParam {
    pub name: String,
    pub source: ParamSource,
}

impl LinkParam {
    pub fn oid(name: impl Into<String>) -> LinkParam {
        LinkParam {
            name: name.into(),
            source: ParamSource::SelectedOid,
        }
    }

    pub fn attribute(name: impl Into<String>, attr: impl Into<String>) -> LinkParam {
        LinkParam {
            name: name.into(),
            source: ParamSource::Attribute(attr.into()),
        }
    }

    pub fn field(name: impl Into<String>, field: impl Into<String>) -> LinkParam {
        LinkParam {
            name: name.into(),
            source: ParamSource::Field(field.into()),
        }
    }
}

/// A link between two hypertext elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    pub kind: LinkKind,
    pub source: LinkEnd,
    pub target: LinkEnd,
    pub parameters: Vec<LinkParam>,
    /// Anchor text for user-navigated links.
    pub label: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_end_accessors() {
        let e = LinkEnd::Unit(UnitId(2));
        assert_eq!(e.as_unit(), Some(UnitId(2)));
        assert_eq!(e.as_page(), None);
        assert_eq!(LinkEnd::Page(PageId(1)).as_page(), Some(PageId(1)));
        assert_eq!(
            LinkEnd::Operation(OperationId(0)).as_operation(),
            Some(OperationId(0))
        );
    }

    #[test]
    fn user_navigation_classification() {
        assert!(LinkKind::Contextual.is_user_navigated());
        assert!(!LinkKind::Transport.is_user_navigated());
        assert!(!LinkKind::Ok.is_user_navigated());
        assert!(!LinkKind::Automatic.is_user_navigated());
    }

    #[test]
    fn param_constructors() {
        let p = LinkParam::oid("volume");
        assert_eq!(p.source, ParamSource::SelectedOid);
        let p = LinkParam::attribute("year", "year");
        assert_eq!(p.source, ParamSource::Attribute("year".into()));
        let p = LinkParam::field("kw", "keyword");
        assert_eq!(p.source, ParamSource::Field("keyword".into()));
    }
}
