//! The hypertext model arena and its building API.

use crate::ids::*;
use crate::links::{Link, LinkEnd, LinkKind, LinkParam};
use crate::structure::{Area, Audience, LayoutCategory, Page, SiteView};
use crate::units::{CacheSpec, Condition, Operation, OperationKind, SortSpec, Unit, UnitKind};
use er::EntityId;

/// A complete WebML hypertext specification: site views, areas, pages,
/// content units, operations, and links, referencing entities of an
/// [`er::ErModel`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HypertextModel {
    site_views: Vec<SiteView>,
    areas: Vec<Area>,
    pages: Vec<Page>,
    units: Vec<Unit>,
    operations: Vec<Operation>,
    links: Vec<Link>,
}

/// Headline size statistics — the numbers §8 reports for Acer-Euro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStats {
    pub site_views: usize,
    pub areas: usize,
    pub pages: usize,
    pub units: usize,
    pub operations: usize,
    pub links: usize,
}

impl HypertextModel {
    pub fn new() -> HypertextModel {
        HypertextModel::default()
    }

    // ---- construction ----------------------------------------------------

    pub fn add_site_view(&mut self, name: impl Into<String>, audience: Audience) -> SiteViewId {
        self.site_views.push(SiteView {
            name: name.into(),
            audience,
            protected: false,
            areas: Vec::new(),
            pages: Vec::new(),
            home: None,
        });
        SiteViewId(self.site_views.len() - 1)
    }

    /// Mark a site view as requiring authentication.
    pub fn protect_site_view(&mut self, sv: SiteViewId) {
        self.site_views[sv.0].protected = true;
    }

    pub fn add_area(
        &mut self,
        sv: SiteViewId,
        parent: Option<AreaId>,
        name: impl Into<String>,
    ) -> AreaId {
        let id = AreaId(self.areas.len());
        self.areas.push(Area {
            name: name.into(),
            site_view: sv,
            parent,
            sub_areas: Vec::new(),
            pages: Vec::new(),
        });
        match parent {
            Some(p) => self.areas[p.0].sub_areas.push(id),
            None => self.site_views[sv.0].areas.push(id),
        }
        id
    }

    pub fn add_page(
        &mut self,
        sv: SiteViewId,
        area: Option<AreaId>,
        name: impl Into<String>,
    ) -> PageId {
        let id = PageId(self.pages.len());
        self.pages.push(Page {
            name: name.into(),
            site_view: sv,
            area,
            units: Vec::new(),
            landmark: false,
            layout: LayoutCategory::default(),
        });
        match area {
            Some(a) => self.areas[a.0].pages.push(id),
            None => self.site_views[sv.0].pages.push(id),
        }
        id
    }

    /// Set the home page of a site view.
    pub fn set_home(&mut self, sv: SiteViewId, page: PageId) {
        self.site_views[sv.0].home = Some(page);
    }

    pub fn set_landmark(&mut self, page: PageId) {
        self.pages[page.0].landmark = true;
    }

    pub fn set_layout(&mut self, page: PageId, layout: LayoutCategory) {
        self.pages[page.0].layout = layout;
    }

    /// Add a content unit to a page. Prefer the kind-specific helpers.
    pub fn add_unit(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        kind: UnitKind,
        entity: Option<EntityId>,
    ) -> UnitId {
        let id = UnitId(self.units.len());
        self.units.push(Unit {
            name: name.into(),
            page,
            kind,
            entity,
            selector: Vec::new(),
            display_attributes: Vec::new(),
            sort: Vec::new(),
            cache: None,
        });
        self.pages[page.0].units.push(id);
        id
    }

    pub fn add_data_unit(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        entity: EntityId,
    ) -> UnitId {
        self.add_unit(page, name, UnitKind::Data, Some(entity))
    }

    pub fn add_index_unit(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        entity: EntityId,
    ) -> UnitId {
        self.add_unit(page, name, UnitKind::Index, Some(entity))
    }

    pub fn add_multidata_unit(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        entity: EntityId,
    ) -> UnitId {
        self.add_unit(page, name, UnitKind::Multidata, Some(entity))
    }

    pub fn add_multichoice_unit(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        entity: EntityId,
    ) -> UnitId {
        self.add_unit(page, name, UnitKind::Multichoice, Some(entity))
    }

    pub fn add_scroller_unit(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        entity: EntityId,
        block_size: usize,
    ) -> UnitId {
        self.add_unit(page, name, UnitKind::Scroller { block_size }, Some(entity))
    }

    pub fn add_entry_unit(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        fields: Vec<crate::units::Field>,
    ) -> UnitId {
        self.add_unit(page, name, UnitKind::Entry { fields }, None)
    }

    pub fn add_hierarchical_index(
        &mut self,
        page: PageId,
        name: impl Into<String>,
        levels: Vec<crate::units::HierarchyLevel>,
    ) -> UnitId {
        let entity = levels.first().map(|l| l.entity);
        self.add_unit(page, name, UnitKind::HierarchicalIndex { levels }, entity)
    }

    /// Attach a selector condition to a unit.
    pub fn add_condition(&mut self, unit: UnitId, c: Condition) {
        self.units[unit.0].selector.push(c);
    }

    /// Restrict the displayed attributes of a unit.
    pub fn set_display_attributes(&mut self, unit: UnitId, attrs: &[&str]) {
        self.units[unit.0].display_attributes = attrs.iter().map(|s| s.to_string()).collect();
    }

    pub fn add_sort(&mut self, unit: UnitId, attribute: impl Into<String>, ascending: bool) {
        self.units[unit.0].sort.push(SortSpec {
            attribute: attribute.into(),
            ascending,
        });
    }

    /// Tag a unit as cached (§6).
    pub fn set_cache(&mut self, unit: UnitId, spec: CacheSpec) {
        self.units[unit.0].cache = Some(spec);
    }

    pub fn add_operation(
        &mut self,
        name: impl Into<String>,
        kind: OperationKind,
        inputs: Vec<String>,
    ) -> OperationId {
        self.operations.push(Operation {
            name: name.into(),
            kind,
            inputs,
        });
        OperationId(self.operations.len() - 1)
    }

    pub fn add_link(&mut self, link: Link) -> LinkId {
        self.links.push(link);
        LinkId(self.links.len() - 1)
    }

    /// A contextual link (anchor) carrying parameters.
    pub fn link_contextual(
        &mut self,
        source: LinkEnd,
        target: LinkEnd,
        label: impl Into<String>,
        parameters: Vec<LinkParam>,
    ) -> LinkId {
        self.add_link(Link {
            kind: LinkKind::Contextual,
            source,
            target,
            parameters,
            label: Some(label.into()),
        })
    }

    /// A transport link (dashed): parameter flow without user interaction.
    pub fn link_transport(
        &mut self,
        source: UnitId,
        target: UnitId,
        parameters: Vec<LinkParam>,
    ) -> LinkId {
        self.add_link(Link {
            kind: LinkKind::Transport,
            source: LinkEnd::Unit(source),
            target: LinkEnd::Unit(target),
            parameters,
            label: None,
        })
    }

    /// A non-contextual page-to-page link (menu entry).
    pub fn link_pages(
        &mut self,
        source: PageId,
        target: PageId,
        label: impl Into<String>,
    ) -> LinkId {
        self.add_link(Link {
            kind: LinkKind::NonContextual,
            source: LinkEnd::Page(source),
            target: LinkEnd::Page(target),
            parameters: Vec::new(),
            label: Some(label.into()),
        })
    }

    /// OK/KO outcome links of an operation.
    pub fn link_ok(&mut self, op: OperationId, target: LinkEnd) -> LinkId {
        self.add_link(Link {
            kind: LinkKind::Ok,
            source: LinkEnd::Operation(op),
            target,
            parameters: Vec::new(),
            label: None,
        })
    }

    pub fn link_ko(&mut self, op: OperationId, target: LinkEnd) -> LinkId {
        self.add_link(Link {
            kind: LinkKind::Ko,
            source: LinkEnd::Operation(op),
            target,
            parameters: Vec::new(),
            label: None,
        })
    }

    // ---- accessors ---------------------------------------------------------

    pub fn site_view(&self, id: SiteViewId) -> &SiteView {
        &self.site_views[id.0]
    }

    pub fn area(&self, id: AreaId) -> &Area {
        &self.areas[id.0]
    }

    pub fn page(&self, id: PageId) -> &Page {
        &self.pages[id.0]
    }

    pub fn unit(&self, id: UnitId) -> &Unit {
        &self.units[id.0]
    }

    pub fn operation(&self, id: OperationId) -> &Operation {
        &self.operations[id.0]
    }

    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    pub fn site_views(&self) -> impl Iterator<Item = (SiteViewId, &SiteView)> {
        self.site_views
            .iter()
            .enumerate()
            .map(|(i, s)| (SiteViewId(i), s))
    }

    pub fn areas(&self) -> impl Iterator<Item = (AreaId, &Area)> {
        self.areas.iter().enumerate().map(|(i, a)| (AreaId(i), a))
    }

    pub fn pages(&self) -> impl Iterator<Item = (PageId, &Page)> {
        self.pages.iter().enumerate().map(|(i, p)| (PageId(i), p))
    }

    pub fn units(&self) -> impl Iterator<Item = (UnitId, &Unit)> {
        self.units.iter().enumerate().map(|(i, u)| (UnitId(i), u))
    }

    pub fn operations(&self) -> impl Iterator<Item = (OperationId, &Operation)> {
        self.operations
            .iter()
            .enumerate()
            .map(|(i, o)| (OperationId(i), o))
    }

    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Units of a page, in insertion order.
    pub fn units_of(&self, page: PageId) -> impl Iterator<Item = (UnitId, &Unit)> {
        self.pages[page.0]
            .units
            .iter()
            .map(move |&u| (u, &self.units[u.0]))
    }

    /// All links leaving `end`.
    pub fn links_from(&self, end: LinkEnd) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.source == end)
            .map(|(i, l)| (LinkId(i), l))
    }

    /// All links arriving at `end`.
    pub fn links_to(&self, end: LinkEnd) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.target == end)
            .map(|(i, l)| (LinkId(i), l))
    }

    /// The page a link end belongs to, if any (operations have none).
    pub fn page_of_end(&self, end: LinkEnd) -> Option<PageId> {
        match end {
            LinkEnd::Page(p) => Some(p),
            LinkEnd::Unit(u) => Some(self.units[u.0].page),
            LinkEnd::Operation(_) => None,
        }
    }

    pub fn page_by_name(&self, sv: SiteViewId, name: &str) -> Option<(PageId, &Page)> {
        self.pages
            .iter()
            .enumerate()
            .find(|(_, p)| p.site_view == sv && p.name.eq_ignore_ascii_case(name))
            .map(|(i, p)| (PageId(i), p))
    }

    pub fn site_view_by_name(&self, name: &str) -> Option<(SiteViewId, &SiteView)> {
        self.site_views
            .iter()
            .enumerate()
            .find(|(_, s)| s.name.eq_ignore_ascii_case(name))
            .map(|(i, s)| (SiteViewId(i), s))
    }

    /// Pages of a site view, including those nested in areas.
    pub fn pages_of_site_view(&self, sv: SiteViewId) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.site_view == sv)
            .map(|(i, _)| PageId(i))
            .collect()
    }

    /// Aggregate size statistics (the §8 numbers).
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            site_views: self.site_views.len(),
            areas: self.areas.len(),
            pages: self.pages.len(),
            units: self.units.len(),
            operations: self.operations.len(),
            links: self.links.len(),
        }
    }

    /// Rewire an existing link to a new target, keeping everything else.
    /// This is the §7 scenario: "the developer re-links the pages in the
    /// WebML diagram and the code generator re-builds the new configuration
    /// file".
    pub fn retarget_link(&mut self, link: LinkId, new_target: LinkEnd) {
        self.links[link.0].target = new_target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er::{AttrType, Attribute, Cardinality, ErModel};

    fn acm_model() -> (ErModel, HypertextModel, PageId, PageId) {
        let mut er = ErModel::new();
        let volume = er
            .add_entity(
                "Volume",
                vec![Attribute::new("title", AttrType::String).required()],
            )
            .unwrap();
        let issue = er
            .add_entity("Issue", vec![Attribute::new("number", AttrType::Integer)])
            .unwrap();
        let paper = er
            .add_entity(
                "Paper",
                vec![Attribute::new("title", AttrType::String).required()],
            )
            .unwrap();
        er.add_relationship(
            "VolumeIssue",
            volume,
            issue,
            "VolumeToIssue",
            "IssueToVolume",
            Cardinality::ONE_ONE,
            Cardinality::ZERO_MANY,
        )
        .unwrap();
        er.add_relationship(
            "IssuePaper",
            issue,
            paper,
            "IssueToPaper",
            "PaperToIssue",
            Cardinality::ONE_ONE,
            Cardinality::ZERO_MANY,
        )
        .unwrap();

        let mut ht = HypertextModel::new();
        let sv = ht.add_site_view("ACM DL", Audience::default());
        let volume_page = ht.add_page(sv, None, "Volume Page");
        let paper_page = ht.add_page(sv, None, "Paper details");
        ht.set_home(sv, volume_page);

        let volume_data = ht.add_data_unit(volume_page, "Volume data", volume);
        ht.add_condition(
            volume_data,
            Condition::KeyEq {
                param: "volume".into(),
            },
        );
        let idx = ht.add_hierarchical_index(
            volume_page,
            "Issues&Papers",
            vec![
                crate::units::HierarchyLevel {
                    entity: issue,
                    role: "VolumeToIssue".into(),
                    display_attributes: vec!["number".into()],
                    sort: vec![],
                },
                crate::units::HierarchyLevel {
                    entity: paper,
                    role: "IssueToPaper".into(),
                    display_attributes: vec!["title".into()],
                    sort: vec![],
                },
            ],
        );
        ht.link_transport(volume_data, idx, vec![LinkParam::oid("volume")]);
        let paper_data = ht.add_data_unit(paper_page, "Paper data", paper);
        ht.add_condition(
            paper_data,
            Condition::KeyEq {
                param: "paper".into(),
            },
        );
        ht.link_contextual(
            LinkEnd::Unit(idx),
            LinkEnd::Unit(paper_data),
            "To Paper details page",
            vec![LinkParam::oid("paper")],
        );
        (er, ht, volume_page, paper_page)
    }

    #[test]
    fn figure_1_model_builds() {
        let (_, ht, volume_page, _) = acm_model();
        let s = ht.stats();
        assert_eq!(s.site_views, 1);
        assert_eq!(s.pages, 2);
        assert_eq!(s.units, 3);
        assert_eq!(s.links, 2);
        assert_eq!(ht.units_of(volume_page).count(), 2);
    }

    #[test]
    fn link_queries() {
        let (_, ht, volume_page, _) = acm_model();
        let (idx_id, _) = ht.units().find(|(_, u)| u.name == "Issues&Papers").unwrap();
        let incoming: Vec<_> = ht.links_to(LinkEnd::Unit(idx_id)).collect();
        assert_eq!(incoming.len(), 1);
        assert_eq!(incoming[0].1.kind, LinkKind::Transport);
        let outgoing: Vec<_> = ht.links_from(LinkEnd::Unit(idx_id)).collect();
        assert_eq!(outgoing.len(), 1);
        assert_eq!(ht.page_of_end(LinkEnd::Unit(idx_id)), Some(volume_page));
    }

    #[test]
    fn page_lookup_by_name() {
        let (_, ht, volume_page, _) = acm_model();
        let (sv, _) = ht.site_view_by_name("acm dl").unwrap();
        let (pid, _) = ht.page_by_name(sv, "volume page").unwrap();
        assert_eq!(pid, volume_page);
        assert!(ht.page_by_name(sv, "no such page").is_none());
    }

    #[test]
    fn areas_nest() {
        let mut ht = HypertextModel::new();
        let sv = ht.add_site_view("sv", Audience::default());
        let a = ht.add_area(sv, None, "Products");
        let b = ht.add_area(sv, Some(a), "Notebooks");
        let p = ht.add_page(sv, Some(b), "List");
        assert_eq!(ht.area(a).sub_areas, vec![b]);
        assert_eq!(ht.area(b).pages, vec![p]);
        assert_eq!(ht.site_view(sv).areas, vec![a]);
        assert_eq!(ht.page(p).area, Some(b));
    }

    #[test]
    fn retarget_link_rewires() {
        let (_, mut ht, volume_page, paper_page) = acm_model();
        let (lid, _) = ht
            .links()
            .find(|(_, l)| l.kind == LinkKind::Contextual)
            .unwrap();
        ht.retarget_link(lid, LinkEnd::Page(volume_page));
        assert_eq!(ht.link(lid).target, LinkEnd::Page(volume_page));
        assert_ne!(ht.link(lid).target, LinkEnd::Page(paper_page));
    }

    #[test]
    fn operations_and_outcome_links() {
        let (er, mut ht, volume_page, _) = acm_model();
        let (volume, _) = er.entity_by_name("Volume").unwrap();
        let op = ht.add_operation(
            "CreateVolume",
            OperationKind::Create { entity: volume },
            vec!["title".into()],
        );
        ht.link_ok(op, LinkEnd::Page(volume_page));
        ht.link_ko(op, LinkEnd::Page(volume_page));
        let ok: Vec<_> = ht
            .links_from(LinkEnd::Operation(op))
            .filter(|(_, l)| l.kind == LinkKind::Ok)
            .collect();
        assert_eq!(ok.len(), 1);
        assert_eq!(ht.operation(op).kind.written_entity(), Some(volume));
    }
}
