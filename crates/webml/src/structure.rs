//! Site views, areas, and pages — the structural hierarchy of a hypertext.
//!
//! §1: WebML models "the structuring of the application into different
//! hypertexts (called site views) targeted to different user groups or
//! access devices" and "the hierarchical organization of a site view into
//! areas".

use crate::ids::{AreaId, PageId, SiteViewId, UnitId};

/// The audience a site view targets (user group and/or device class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Audience {
    /// User group, e.g. "customers", "product managers".
    pub group: String,
    /// Device class, e.g. "desktop", "pda", "wap". Presentation rule sets
    /// are selected per device (§5).
    pub device: String,
}

impl Default for Audience {
    fn default() -> Audience {
        Audience {
            group: "public".into(),
            device: "desktop".into(),
        }
    }
}

/// A site view: one coherent hypertext for one audience.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteView {
    pub name: String,
    pub audience: Audience,
    /// Requires login (B2B/intranet site views in the Acer-Euro case).
    pub protected: bool,
    /// Top-level areas.
    pub areas: Vec<AreaId>,
    /// Pages directly under the site view (outside any area).
    pub pages: Vec<PageId>,
    /// The default page served at the site-view root.
    pub home: Option<PageId>,
}

/// An area: a named group of pages (and sub-areas) within a site view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Area {
    pub name: String,
    pub site_view: SiteViewId,
    pub parent: Option<AreaId>,
    pub sub_areas: Vec<AreaId>,
    pub pages: Vec<PageId>,
}

/// A page: the unit of interaction, composed of content units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    pub name: String,
    pub site_view: SiteViewId,
    /// Containing area (None = directly under the site view).
    pub area: Option<AreaId>,
    pub units: Vec<UnitId>,
    /// Landmark pages are reachable from every page of their site view
    /// (rendered in the global navigation bar).
    pub landmark: bool,
    /// Layout category used to choose the page-level XSL rule (§5
    /// "page layouts could be classified into general categories").
    pub layout: LayoutCategory,
}

/// §5: "multi-frame pages, two-columns pages, three-columns pages, and so
/// on" — the categories page rules match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutCategory {
    #[default]
    SingleColumn,
    TwoColumns,
    ThreeColumns,
    MultiFrame,
}

impl LayoutCategory {
    pub fn name(self) -> &'static str {
        match self {
            LayoutCategory::SingleColumn => "single-column",
            LayoutCategory::TwoColumns => "two-columns",
            LayoutCategory::ThreeColumns => "three-columns",
            LayoutCategory::MultiFrame => "multi-frame",
        }
    }

    pub fn all() -> [LayoutCategory; 4] {
        [
            LayoutCategory::SingleColumn,
            LayoutCategory::TwoColumns,
            LayoutCategory::ThreeColumns,
            LayoutCategory::MultiFrame,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_audience_is_public_desktop() {
        let a = Audience::default();
        assert_eq!(a.group, "public");
        assert_eq!(a.device, "desktop");
    }

    #[test]
    fn layout_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            LayoutCategory::all().iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
