//! Content units and operations — the vocabulary of WebML hypertexts.
//!
//! §8 of the paper names the eleven basic unit kinds: *data, index,
//! multidata, multi-choice, scroller, entry, create, delete, modify,
//! connect, disconnect*. The first six are **content units** that live in
//! pages and publish content; the last five are **operations** that execute
//! side effects and then redirect. §7 adds **plug-in units** — user-defined
//! components registered with the design and runtime environment.

use crate::ids::PageId;
use er::{AttrType, EntityId};
use std::time::Duration;

/// Selector condition restricting the instances a unit works on.
///
/// Conditions are conjunctive; parameter names refer to the unit's input
/// parameters (transported along incoming links or taken from the request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `oid = :param` — select by key (the implicit condition of a data
    /// unit reached by a contextual link).
    KeyEq { param: String },
    /// `attribute = :param`.
    AttributeEq { attribute: String, param: String },
    /// `attribute LIKE :param` — keyword search from entry units.
    AttributeLike { attribute: String, param: String },
    /// Instances reached from `:param` (an oid of the role's other side)
    /// by navigating `role` — e.g. `Issue[VolumeToIssue]`.
    Role { role: String, param: String },
}

impl Condition {
    /// The input parameter this condition consumes.
    pub fn param(&self) -> &str {
        match self {
            Condition::KeyEq { param }
            | Condition::AttributeEq { param, .. }
            | Condition::AttributeLike { param, .. }
            | Condition::Role { param, .. } => param,
        }
    }
}

/// Sort specification of a unit (attribute, ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortSpec {
    pub attribute: String,
    pub ascending: bool,
}

/// One input field of an entry unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub field_type: AttrType,
    pub required: bool,
    /// Client-side validation pattern (a LIKE-style pattern the generated
    /// form validates before submit).
    pub pattern: Option<String>,
}

impl Field {
    pub fn new(name: impl Into<String>, field_type: AttrType) -> Field {
        Field {
            name: name.into(),
            field_type,
            required: false,
            pattern: None,
        }
    }

    pub fn required(mut self) -> Field {
        self.required = true;
        self
    }

    pub fn pattern(mut self, p: impl Into<String>) -> Field {
        self.pattern = Some(p.into());
        self
    }
}

/// One level of a hierarchical index (Fig. 1: `Issue[VolumeToIssue]` NEST
/// `Paper[PaperToIssue]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyLevel {
    pub entity: EntityId,
    /// Role navigated from the previous level (or from the unit input for
    /// the first level).
    pub role: String,
    pub display_attributes: Vec<String>,
    pub sort: Vec<SortSpec>,
}

/// The kind-specific payload of a content unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitKind {
    /// Publishes the attributes of a single entity instance.
    Data,
    /// Publishes a selectable list of instances (anchor per row).
    Index,
    /// Publishes all attributes of a set of instances (no selection).
    Multidata,
    /// An index with checkboxes: the user may select many rows.
    Multichoice,
    /// Block-wise scrolling over a sequence of instances.
    Scroller { block_size: usize },
    /// A data-entry form.
    Entry { fields: Vec<Field> },
    /// Nested index over a chain of relationships.
    HierarchicalIndex { levels: Vec<HierarchyLevel> },
    /// A user-defined plug-in content unit (§7): rendered and computed by
    /// components registered under `type_name`.
    PlugIn { type_name: String },
}

impl UnitKind {
    /// The WebML name of this unit kind, as used in descriptors and XSL
    /// unit rules.
    pub fn type_name(&self) -> &str {
        match self {
            UnitKind::Data => "data",
            UnitKind::Index => "index",
            UnitKind::Multidata => "multidata",
            UnitKind::Multichoice => "multichoice",
            UnitKind::Scroller { .. } => "scroller",
            UnitKind::Entry { .. } => "entry",
            UnitKind::HierarchicalIndex { .. } => "hierarchy",
            UnitKind::PlugIn { type_name } => type_name,
        }
    }

    /// Does this unit read from the database? (Entry units don't.)
    pub fn queries_data(&self) -> bool {
        !matches!(self, UnitKind::Entry { .. })
    }
}

/// Cache annotation of a content unit (§6): the unit's beans may be cached
/// in the business tier and are invalidated either by TTL expiry or by the
/// model-driven entity dependency tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSpec {
    /// Expire entries after this duration (None = no time-based expiry).
    pub ttl: Option<Duration>,
    /// Invalidate when an operation touches an entity the unit depends on.
    pub invalidate_on_write: bool,
}

impl CacheSpec {
    /// The policy §6 describes as the default: model-driven invalidation
    /// with no TTL.
    pub fn model_driven() -> CacheSpec {
        CacheSpec {
            ttl: None,
            invalidate_on_write: true,
        }
    }

    pub fn ttl(d: Duration) -> CacheSpec {
        CacheSpec {
            ttl: Some(d),
            invalidate_on_write: false,
        }
    }
}

/// A content unit placed in a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    pub name: String,
    pub page: PageId,
    pub kind: UnitKind,
    /// The entity the unit is constructed on (None for entry/plug-in units
    /// that do not read the database).
    pub entity: Option<EntityId>,
    /// Conjunctive selector conditions.
    pub selector: Vec<Condition>,
    /// Attributes displayed (empty = all).
    pub display_attributes: Vec<String>,
    pub sort: Vec<SortSpec>,
    /// §6 cache annotation.
    pub cache: Option<CacheSpec>,
}

/// Built-in operation kinds plus user-defined ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperationKind {
    /// Insert a new instance of the entity from form parameters.
    Create { entity: EntityId },
    /// Delete the instance named by the input oid.
    Delete { entity: EntityId },
    /// Update attributes of the instance named by the input oid.
    Modify { entity: EntityId },
    /// Add a pair to a relationship.
    Connect { role: String },
    /// Remove a pair from a relationship.
    Disconnect { role: String },
    /// Authenticate the user (session-level, §1 "session-level information
    /// and personalisation aspects").
    Login,
    /// Terminate the session.
    Logout,
    /// Send an e-mail (the paper's example of an action class).
    SendMail,
    /// User-defined operation (plug-in, §7).
    Custom { type_name: String },
}

impl OperationKind {
    pub fn type_name(&self) -> &str {
        match self {
            OperationKind::Create { .. } => "create",
            OperationKind::Delete { .. } => "delete",
            OperationKind::Modify { .. } => "modify",
            OperationKind::Connect { .. } => "connect",
            OperationKind::Disconnect { .. } => "disconnect",
            OperationKind::Login => "login",
            OperationKind::Logout => "logout",
            OperationKind::SendMail => "sendmail",
            OperationKind::Custom { type_name } => type_name,
        }
    }

    /// The entity this operation writes, if statically known (used for
    /// model-driven cache invalidation, §6).
    pub fn written_entity(&self) -> Option<EntityId> {
        match self {
            OperationKind::Create { entity }
            | OperationKind::Delete { entity }
            | OperationKind::Modify { entity } => Some(*entity),
            _ => None,
        }
    }
}

/// An operation: a service callable from pages which executes processing
/// and then redirects along its OK or KO link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    pub name: String,
    pub kind: OperationKind,
    /// Names of the input parameters the operation consumes (attribute
    /// names for create/modify, `oid` for delete, role endpoints for
    /// connect/disconnect, credentials for login).
    pub inputs: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_kind_names_match_paper() {
        // §8: "11 unit services (for the basic WebML units: data, index,
        // multidata, multi-choice, scroller, entry, create, delete, modify,
        // connect, disconnect)"
        assert_eq!(UnitKind::Data.type_name(), "data");
        assert_eq!(UnitKind::Multichoice.type_name(), "multichoice");
        assert_eq!(
            UnitKind::Scroller { block_size: 10 }.type_name(),
            "scroller"
        );
        assert_eq!(
            OperationKind::Disconnect { role: "r".into() }.type_name(),
            "disconnect"
        );
    }

    #[test]
    fn entry_units_do_not_query() {
        assert!(!UnitKind::Entry { fields: vec![] }.queries_data());
        assert!(UnitKind::Index.queries_data());
    }

    #[test]
    fn written_entity_only_for_content_operations() {
        assert_eq!(
            OperationKind::Create {
                entity: EntityId(3)
            }
            .written_entity(),
            Some(EntityId(3))
        );
        assert_eq!(OperationKind::Login.written_entity(), None);
        assert_eq!(
            OperationKind::Connect { role: "x".into() }.written_entity(),
            None
        );
    }

    #[test]
    fn condition_param_accessor() {
        let c = Condition::Role {
            role: "VolumeToIssue".into(),
            param: "volume".into(),
        };
        assert_eq!(c.param(), "volume");
    }

    #[test]
    fn field_builder() {
        let f = Field::new("keyword", AttrType::String)
            .required()
            .pattern("%_%");
        assert!(f.required);
        assert_eq!(f.pattern.as_deref(), Some("%_%"));
    }
}
