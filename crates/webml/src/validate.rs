//! Static validation of a hypertext model against its ER model.
//!
//! The model-driven promise of the paper rests on specifications being
//! checkable *before* generation: a WebML diagram that names a missing
//! attribute or wires a transport link across pages must be rejected at
//! design time, not produce a broken template.

use crate::ids::{PageId, UnitId};
use crate::links::{LinkEnd, LinkKind, ParamSource};
use crate::model::HypertextModel;
use crate::units::{Condition, UnitKind};
use er::ErModel;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Generation must refuse to proceed.
    Error,
    /// Suspicious but generable (e.g. unreachable page).
    Warning,
}

/// One validation finding.
///
/// Every finding carries a *stable* diagnostic code (`WVxxx`) so reports,
/// deploy gates and downstream tooling can key on the class of problem
/// instead of matching message strings. The code catalogue:
///
/// | code  | severity | finding |
/// |-------|----------|---------|
/// | WV001 | error    | duplicate site view name |
/// | WV002 | error    | duplicate page name in a site view |
/// | WV003 | error    | duplicate unit name in a page |
/// | WV010 | error    | site view has no home page |
/// | WV011 | error    | home page belongs to another site view |
/// | WV020 | warning  | entry unit has no fields |
/// | WV021 | error    | duplicate entry field |
/// | WV022 | error    | plug-in unit without type name |
/// | WV023 | error    | hierarchical index with no levels |
/// | WV024 | error    | hierarchy role chain broken / unknown role |
/// | WV025 | error    | reference to unknown attribute |
/// | WV026 | error    | content unit without / with unknown entity |
/// | WV027 | error    | selector role unknown or does not reach entity |
/// | WV030 | error    | transport/automatic link shape (non-unit ends, crosses pages) |
/// | WV031 | error    | OK/KO link shape |
/// | WV032 | error    | navigational link starts from an operation |
/// | WV033 | error    | duplicate link parameter |
/// | WV034 | error    | link parameter source unresolvable |
/// | WV040 | error    | operation has no OK link |
/// | WV041 | error    | operation references unknown role/entity |
/// | WV050 | error    | transport links form a cycle |
/// | WV060 | warning  | page unreachable from home/landmarks |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Issue {
    pub severity: Severity,
    /// Stable diagnostic code (`WVxxx`); see the type-level table.
    pub code: &'static str,
    pub location: String,
    pub message: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{sev}[{}]: {}: {}",
            self.code, self.location, self.message
        )
    }
}

/// Validate `ht` against `er`; returns all findings (possibly empty).
pub fn validate(er: &ErModel, ht: &HypertextModel) -> Vec<Issue> {
    let mut issues = Vec::new();
    check_names(ht, &mut issues);
    check_homes(ht, &mut issues);
    check_units(er, ht, &mut issues);
    check_links(er, ht, &mut issues);
    check_operations(er, ht, &mut issues);
    check_transport_cycles(ht, &mut issues);
    check_reachability(ht, &mut issues);
    issues
}

/// `true` when no Error-severity issue exists.
pub fn is_valid(er: &ErModel, ht: &HypertextModel) -> bool {
    validate(er, ht)
        .iter()
        .all(|i| i.severity != Severity::Error)
}

fn err(
    issues: &mut Vec<Issue>,
    code: &'static str,
    location: impl Into<String>,
    message: impl Into<String>,
) {
    issues.push(Issue {
        severity: Severity::Error,
        code,
        location: location.into(),
        message: message.into(),
    });
}

fn warn(
    issues: &mut Vec<Issue>,
    code: &'static str,
    location: impl Into<String>,
    message: impl Into<String>,
) {
    issues.push(Issue {
        severity: Severity::Warning,
        code,
        location: location.into(),
        message: message.into(),
    });
}

fn check_names(ht: &HypertextModel, issues: &mut Vec<Issue>) {
    let mut sv_names = HashSet::new();
    for (_, sv) in ht.site_views() {
        if !sv_names.insert(sv.name.to_ascii_lowercase()) {
            err(issues, "WV001", &sv.name, "duplicate site view name");
        }
        let mut page_names = HashSet::new();
        for (_, p) in ht.pages() {
            if ht.site_view(p.site_view).name == sv.name
                && !page_names.insert(p.name.to_ascii_lowercase())
            {
                err(
                    issues,
                    "WV002",
                    format!("{}/{}", sv.name, p.name),
                    "duplicate page name in site view",
                );
            }
        }
    }
    for (pid, p) in ht.pages() {
        let mut unit_names = HashSet::new();
        for (_, u) in ht.units_of(pid) {
            if !unit_names.insert(u.name.to_ascii_lowercase()) {
                err(
                    issues,
                    "WV003",
                    format!("{}/{}", p.name, u.name),
                    "duplicate unit name in page",
                );
            }
        }
    }
}

fn check_homes(ht: &HypertextModel, issues: &mut Vec<Issue>) {
    for (svid, sv) in ht.site_views() {
        match sv.home {
            None => err(issues, "WV010", &sv.name, "site view has no home page"),
            Some(h) => {
                if ht.page(h).site_view != svid {
                    err(
                        issues,
                        "WV011",
                        &sv.name,
                        "home page belongs to another site view",
                    );
                }
            }
        }
    }
}

fn check_units(er: &ErModel, ht: &HypertextModel, issues: &mut Vec<Issue>) {
    for (_, u) in ht.units() {
        let loc = format!("{}/{}", ht.page(u.page).name, u.name);
        // entity requirements per kind
        match &u.kind {
            UnitKind::Entry { fields } => {
                if fields.is_empty() {
                    warn(issues, "WV020", &loc, "entry unit has no fields");
                }
                let mut names = HashSet::new();
                for f in fields {
                    if !names.insert(f.name.to_ascii_lowercase()) {
                        err(issues, "WV021", &loc, format!("duplicate field {}", f.name));
                    }
                }
            }
            UnitKind::PlugIn { type_name } => {
                if type_name.is_empty() {
                    err(issues, "WV022", &loc, "plug-in unit without type name");
                }
            }
            UnitKind::HierarchicalIndex { levels } => {
                if levels.is_empty() {
                    err(issues, "WV023", &loc, "hierarchical index with no levels");
                }
                for (k, level) in levels.iter().enumerate() {
                    match er.role(&level.role) {
                        None => err(
                            issues,
                            "WV024",
                            &loc,
                            format!("level {k} references unknown role {}", level.role),
                        ),
                        Some((_, rel, forward)) => {
                            let reached = if forward { rel.target } else { rel.source };
                            let from = if forward { rel.source } else { rel.target };
                            if reached != level.entity {
                                err(
                                    issues,
                                    "WV024",
                                    &loc,
                                    format!(
                                        "level {k}: role {} does not reach entity {}",
                                        level.role,
                                        er.entity(level.entity)
                                            .map(|e| e.name.as_str())
                                            .unwrap_or("?")
                                    ),
                                );
                            }
                            if k > 0 && from != levels[k - 1].entity {
                                err(
                                    issues,
                                    "WV024",
                                    &loc,
                                    format!(
                                        "level {k}: role {} does not start from level {} entity",
                                        level.role,
                                        k - 1
                                    ),
                                );
                            }
                        }
                    }
                    if let Some(e) = er.entity(level.entity) {
                        for a in &level.display_attributes {
                            if e.attribute(a).is_none() {
                                err(
                                    issues,
                                    "WV025",
                                    &loc,
                                    format!("level {k} displays unknown attribute {a}"),
                                );
                            }
                        }
                    } else {
                        err(issues, "WV026", &loc, format!("level {k}: unknown entity"));
                    }
                }
                continue; // attribute checks below don't apply
            }
            _ => {
                if u.kind.queries_data() && u.entity.is_none() {
                    err(issues, "WV026", &loc, "content unit without entity");
                }
            }
        }
        // attribute references
        if let Some(eid) = u.entity {
            let Some(e) = er.entity(eid) else {
                err(issues, "WV026", &loc, "unknown entity");
                continue;
            };
            for a in &u.display_attributes {
                if e.attribute(a).is_none() {
                    err(
                        issues,
                        "WV025",
                        &loc,
                        format!("displays unknown attribute {a}"),
                    );
                }
            }
            for s in &u.sort {
                if e.attribute(&s.attribute).is_none() {
                    err(
                        issues,
                        "WV025",
                        &loc,
                        format!("sorts by unknown attribute {}", s.attribute),
                    );
                }
            }
            for c in &u.selector {
                match c {
                    Condition::AttributeEq { attribute, .. }
                    | Condition::AttributeLike { attribute, .. } => {
                        if e.attribute(attribute).is_none() {
                            err(
                                issues,
                                "WV025",
                                &loc,
                                format!("selector uses unknown attribute {attribute}"),
                            );
                        }
                    }
                    Condition::Role { role, .. } => match er.role(role) {
                        None => err(
                            issues,
                            "WV027",
                            &loc,
                            format!("selector uses unknown role {role}"),
                        ),
                        Some((_, rel, forward)) => {
                            let reached = if forward { rel.target } else { rel.source };
                            if reached != eid {
                                err(
                                    issues,
                                    "WV027",
                                    &loc,
                                    format!("role {role} does not reach the unit's entity"),
                                );
                            }
                        }
                    },
                    Condition::KeyEq { .. } => {}
                }
            }
        }
    }
}

fn check_links(er: &ErModel, ht: &HypertextModel, issues: &mut Vec<Issue>) {
    for (lid, l) in ht.links() {
        let loc = format!("{lid}");
        match l.kind {
            LinkKind::Transport | LinkKind::Automatic => {
                let (Some(s), Some(t)) = (l.source.as_unit(), l.target.as_unit()) else {
                    err(
                        issues,
                        "WV030",
                        &loc,
                        "transport/automatic links connect units",
                    );
                    continue;
                };
                if ht.unit(s).page != ht.unit(t).page {
                    err(issues, "WV030", &loc, "transport link crosses pages");
                }
            }
            LinkKind::Ok | LinkKind::Ko => {
                if l.source.as_operation().is_none() {
                    err(issues, "WV031", &loc, "OK/KO links start from operations");
                }
                if matches!(l.target, LinkEnd::Unit(_)) {
                    // allowed: contextual into a unit of the target page
                } else if l.target.as_operation().is_none() && l.target.as_page().is_none() {
                    err(
                        issues,
                        "WV031",
                        &loc,
                        "OK/KO link must target a page, unit or operation",
                    );
                }
            }
            LinkKind::Contextual | LinkKind::NonContextual => {
                if l.source.as_operation().is_some() {
                    err(
                        issues,
                        "WV032",
                        &loc,
                        "navigational links cannot start from operations",
                    );
                }
            }
        }
        // parameter sources must be producible by the source
        let mut names = HashSet::new();
        for p in &l.parameters {
            if !names.insert(p.name.to_ascii_lowercase()) {
                err(
                    issues,
                    "WV033",
                    &loc,
                    format!("duplicate link parameter {}", p.name),
                );
            }
            match (&p.source, l.source) {
                (ParamSource::SelectedOid, LinkEnd::Unit(u)) => {
                    if ht.unit(u).entity.is_none() {
                        err(
                            issues,
                            "WV034",
                            &loc,
                            "SelectedOid from a unit without entity",
                        );
                    }
                }
                (ParamSource::SelectedOid, _) => {
                    err(issues, "WV034", &loc, "SelectedOid requires a unit source");
                }
                (ParamSource::Attribute(a), LinkEnd::Unit(u)) => {
                    match ht.unit(u).entity.and_then(|e| er.entity(e)) {
                        Some(e) if e.attribute(a).is_some() => {}
                        _ => err(
                            issues,
                            "WV034",
                            &loc,
                            format!("attribute parameter {a} unresolvable"),
                        ),
                    }
                }
                (ParamSource::Attribute(_), _) => {
                    err(
                        issues,
                        "WV034",
                        &loc,
                        "attribute parameter requires a unit source",
                    );
                }
                (ParamSource::Field(f), LinkEnd::Unit(u)) => {
                    let ok = matches!(&ht.unit(u).kind, UnitKind::Entry { fields }
                        if fields.iter().any(|fl| fl.name.eq_ignore_ascii_case(f)));
                    if !ok {
                        err(
                            issues,
                            "WV034",
                            &loc,
                            format!("field parameter {f} is not a field of the source entry unit"),
                        );
                    }
                }
                (ParamSource::Field(_), _) => {
                    err(
                        issues,
                        "WV034",
                        &loc,
                        "field parameter requires an entry-unit source",
                    );
                }
                (ParamSource::Constant(_) | ParamSource::Session(_), _) => {}
            }
        }
    }
}

fn check_operations(er: &ErModel, ht: &HypertextModel, issues: &mut Vec<Issue>) {
    for (oid, o) in ht.operations() {
        let loc = o.name.clone();
        // every operation needs an OK link
        let has_ok = ht
            .links_from(LinkEnd::Operation(oid))
            .any(|(_, l)| l.kind == LinkKind::Ok);
        if !has_ok {
            err(issues, "WV040", &loc, "operation has no OK link");
        }
        match &o.kind {
            crate::units::OperationKind::Connect { role }
            | crate::units::OperationKind::Disconnect { role }
                if er.role(role).is_none() =>
            {
                err(issues, "WV041", &loc, format!("unknown role {role}"));
            }
            crate::units::OperationKind::Create { entity }
            | crate::units::OperationKind::Delete { entity }
            | crate::units::OperationKind::Modify { entity }
                if er.entity(*entity).is_none() =>
            {
                err(issues, "WV041", &loc, "unknown entity");
            }
            _ => {}
        }
    }
}

/// Transport/automatic links define the intra-page dataflow; a cycle makes
/// the page uncomputable.
fn check_transport_cycles(ht: &HypertextModel, issues: &mut Vec<Issue>) {
    for (pid, page) in ht.pages() {
        let units: Vec<UnitId> = page.units.clone();
        let index: HashMap<UnitId, usize> =
            units.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
        let mut indeg = vec![0usize; units.len()];
        for (_, l) in ht.links() {
            if !matches!(l.kind, LinkKind::Transport | LinkKind::Automatic) {
                continue;
            }
            let (Some(s), Some(t)) = (l.source.as_unit(), l.target.as_unit()) else {
                continue;
            };
            if let (Some(&si), Some(&ti)) = (index.get(&s), index.get(&t)) {
                adj[si].push(ti);
                indeg[ti] += 1;
            }
        }
        // Kahn's algorithm
        let mut q: VecDeque<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut seen = 0;
        while let Some(n) = q.pop_front() {
            seen += 1;
            for &m in &adj[n] {
                indeg[m] -= 1;
                if indeg[m] == 0 {
                    q.push_back(m);
                }
            }
        }
        if seen != units.len() {
            err(
                issues,
                "WV050",
                &ht.page(pid).name,
                "transport links form a cycle; page computation order is undefined",
            );
        }
    }
}

/// Pages unreachable from the home page of their site view get a warning.
/// Landmark pages are reachable by definition.
fn check_reachability(ht: &HypertextModel, issues: &mut Vec<Issue>) {
    for (svid, sv) in ht.site_views() {
        let Some(home) = sv.home else { continue };
        let mut reached: HashSet<PageId> = HashSet::new();
        let mut queue = VecDeque::new();
        reached.insert(home);
        queue.push_back(home);
        // landmarks seed reachability
        for pid in ht.pages_of_site_view(svid) {
            if ht.page(pid).landmark && reached.insert(pid) {
                queue.push_back(pid);
            }
        }
        while let Some(p) = queue.pop_front() {
            // links out of the page or out of its units; operation chains
            // count through their OK/KO targets
            let mut ends: Vec<LinkEnd> = vec![LinkEnd::Page(p)];
            for (uid, _) in ht.units_of(p) {
                ends.push(LinkEnd::Unit(uid));
            }
            let mut frontier: Vec<LinkEnd> = Vec::new();
            for end in ends {
                for (_, l) in ht.links_from(end) {
                    frontier.push(l.target);
                }
            }
            while let Some(t) = frontier.pop() {
                match t {
                    LinkEnd::Operation(o) => {
                        for (_, l) in ht.links_from(LinkEnd::Operation(o)) {
                            frontier.push(l.target);
                        }
                    }
                    other => {
                        if let Some(tp) = ht.page_of_end(other) {
                            if ht.page(tp).site_view == svid && reached.insert(tp) {
                                queue.push_back(tp);
                            }
                        }
                    }
                }
            }
        }
        for pid in ht.pages_of_site_view(svid) {
            if !reached.contains(&pid) {
                warn(
                    issues,
                    "WV060",
                    format!("{}/{}", sv.name, ht.page(pid).name),
                    "page is not reachable from the home page",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkParam;
    use crate::structure::Audience;
    use crate::units::{Condition, Field, OperationKind};
    use er::{AttrType, Attribute, Cardinality};

    fn base() -> (ErModel, HypertextModel, er::EntityId, PageId) {
        let mut er = ErModel::new();
        let product = er
            .add_entity(
                "Product",
                vec![
                    Attribute::new("name", AttrType::String).required(),
                    Attribute::new("price", AttrType::Float),
                ],
            )
            .unwrap();
        let mut ht = HypertextModel::new();
        let sv = ht.add_site_view("Main", Audience::default());
        let home = ht.add_page(sv, None, "Home");
        ht.set_home(sv, home);
        ht.add_index_unit(home, "Products", product);
        (er, ht, product, home)
    }

    #[test]
    fn valid_model_has_no_errors() {
        let (er, ht, ..) = base();
        let issues = validate(&er, &ht);
        assert!(
            issues.iter().all(|i| i.severity != Severity::Error),
            "{issues:?}"
        );
        assert!(is_valid(&er, &ht));
    }

    #[test]
    fn missing_home_is_error() {
        let (er, mut ht, ..) = base();
        let sv2 = ht.add_site_view("Second", Audience::default());
        ht.add_page(sv2, None, "Lonely");
        let issues = validate(&er, &ht);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Error && i.message.contains("no home")));
    }

    #[test]
    fn unknown_display_attribute_is_error() {
        let (er, mut ht, product, home) = base();
        let u = ht.add_data_unit(home, "Detail", product);
        ht.set_display_attributes(u, &["name", "nonexistent"]);
        assert!(!is_valid(&er, &ht));
    }

    #[test]
    fn unknown_selector_attribute_is_error() {
        let (er, mut ht, product, home) = base();
        let u = ht.add_data_unit(home, "Detail", product);
        ht.add_condition(
            u,
            Condition::AttributeEq {
                attribute: "ghost".into(),
                param: "x".into(),
            },
        );
        assert!(!is_valid(&er, &ht));
    }

    #[test]
    fn cross_page_transport_is_error() {
        let (er, mut ht, product, home) = base();
        let sv = ht.page(home).site_view;
        let other = ht.add_page(sv, None, "Other");
        let a = ht.add_data_unit(home, "A", product);
        let b = ht.add_data_unit(other, "B", product);
        ht.link_transport(a, b, vec![LinkParam::oid("p")]);
        let issues = validate(&er, &ht);
        assert!(issues.iter().any(|i| i.message.contains("crosses pages")));
    }

    #[test]
    fn transport_cycle_is_error() {
        let (er, mut ht, product, home) = base();
        let a = ht.add_data_unit(home, "A", product);
        let b = ht.add_data_unit(home, "B", product);
        ht.link_transport(a, b, vec![]);
        ht.link_transport(b, a, vec![]);
        let issues = validate(&er, &ht);
        assert!(issues.iter().any(|i| i.message.contains("cycle")));
    }

    #[test]
    fn operation_without_ok_link_is_error() {
        let (er, mut ht, product, _) = base();
        ht.add_operation(
            "CreateProduct",
            OperationKind::Create { entity: product },
            vec!["name".into()],
        );
        let issues = validate(&er, &ht);
        assert!(issues.iter().any(|i| i.message.contains("no OK link")));
    }

    #[test]
    fn field_param_must_exist_on_entry_unit() {
        let (er, mut ht, product, home) = base();
        let entry = ht.add_entry_unit(
            home,
            "Search",
            vec![Field::new("keyword", AttrType::String)],
        );
        let target = ht.add_index_unit(home, "Results", product);
        ht.link_contextual(
            LinkEnd::Unit(entry),
            LinkEnd::Unit(target),
            "go",
            vec![LinkParam::field("kw", "keyword")],
        );
        assert!(is_valid(&er, &ht));
        ht.link_contextual(
            LinkEnd::Unit(entry),
            LinkEnd::Unit(target),
            "bad",
            vec![LinkParam::field("kw", "missing_field")],
        );
        assert!(!is_valid(&er, &ht));
    }

    #[test]
    fn unreachable_page_is_warning_not_error() {
        let (er, mut ht, _, home) = base();
        let sv = ht.page(home).site_view;
        ht.add_page(sv, None, "Orphan");
        let issues = validate(&er, &ht);
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.message.contains("not reachable")));
        assert!(is_valid(&er, &ht));
    }

    #[test]
    fn landmark_pages_seed_reachability() {
        let (er, mut ht, _, home) = base();
        let sv = ht.page(home).site_view;
        let p = ht.add_page(sv, None, "Nav");
        ht.set_landmark(p);
        let issues = validate(&er, &ht);
        assert!(!issues.iter().any(|i| i.message.contains("not reachable")));
    }

    #[test]
    fn hierarchy_role_chain_checked() {
        let mut er = ErModel::new();
        let a = er.add_entity("A", vec![]).unwrap();
        let b = er.add_entity("B", vec![]).unwrap();
        let c = er.add_entity("C", vec![]).unwrap();
        er.add_relationship(
            "AB",
            a,
            b,
            "AToB",
            "BToA",
            Cardinality::ONE_ONE,
            Cardinality::ZERO_MANY,
        )
        .unwrap();
        er.add_relationship(
            "BC",
            b,
            c,
            "BToC",
            "CToB",
            Cardinality::ONE_ONE,
            Cardinality::ZERO_MANY,
        )
        .unwrap();
        let mut ht = HypertextModel::new();
        let sv = ht.add_site_view("sv", Audience::default());
        let p = ht.add_page(sv, None, "P");
        ht.set_home(sv, p);
        // correct chain: B via AToB, then C via BToC
        ht.add_hierarchical_index(
            p,
            "ok",
            vec![
                crate::units::HierarchyLevel {
                    entity: b,
                    role: "AToB".into(),
                    display_attributes: vec![],
                    sort: vec![],
                },
                crate::units::HierarchyLevel {
                    entity: c,
                    role: "BToC".into(),
                    display_attributes: vec![],
                    sort: vec![],
                },
            ],
        );
        assert!(is_valid(&er, &ht));
        // broken chain: level 1 starts from A, not B
        ht.add_hierarchical_index(
            p,
            "broken",
            vec![
                crate::units::HierarchyLevel {
                    entity: b,
                    role: "AToB".into(),
                    display_attributes: vec![],
                    sort: vec![],
                },
                crate::units::HierarchyLevel {
                    entity: b,
                    role: "AToB".into(),
                    display_attributes: vec![],
                    sort: vec![],
                },
            ],
        );
        assert!(!is_valid(&er, &ht));
    }

    #[test]
    fn diagnostic_codes_are_stable() {
        // WV010: missing home
        let (er, mut ht, product, home) = base();
        let sv2 = ht.add_site_view("Second", Audience::default());
        ht.add_page(sv2, None, "Lonely");
        let issues = validate(&er, &ht);
        assert!(issues.iter().any(|i| i.code == "WV010"));
        // every issue carries a WV-prefixed code and Display shows it
        for i in &issues {
            assert!(i.code.starts_with("WV"), "bad code {}", i.code);
            assert!(i.to_string().contains(&format!("[{}]", i.code)));
        }
        // WV060: unreachable page is a warning
        let sv = ht.page(home).site_view;
        ht.add_page(sv, None, "Orphan");
        let issues = validate(&er, &ht);
        let orphan = issues
            .iter()
            .find(|i| i.message.contains("not reachable"))
            .unwrap();
        assert_eq!(orphan.code, "WV060");
        assert_eq!(orphan.severity, Severity::Warning);
        // WV025: unknown attribute
        let u = ht.add_data_unit(home, "Detail", product);
        ht.set_display_attributes(u, &["ghost"]);
        let issues = validate(&er, &ht);
        assert!(issues.iter().any(|i| i.code == "WV025"));
    }

    #[test]
    fn duplicate_unit_names_rejected() {
        let (er, mut ht, product, home) = base();
        ht.add_data_unit(home, "Same", product);
        ht.add_data_unit(home, "same", product);
        assert!(!is_valid(&er, &ht));
    }
}
