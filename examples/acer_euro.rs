//! The Acer-Euro case study (§8) at full scale: synthesize a model with 22
//! site views / 556 pages / 3068 units, generate every artifact, and print
//! the paper's headline comparison — then deploy a scaled-down variant and
//! serve a few thousand requests.
//!
//! ```sh
//! cargo run --release --example acer_euro
//! ```

use webml_ratio::codegen::{self, ArchitectureComparison};
use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::webratio::{seed_data, synthesize, SynthSpec};

fn main() {
    // ---- full scale: artifact generation ---------------------------------
    let spec = SynthSpec::acer_euro();
    println!(
        "synthesizing {}: {} site views, {} pages, {} units",
        spec.name, spec.site_views, spec.pages, spec.units
    );
    let t0 = std::time::Instant::now();
    let app = synthesize(&spec);
    let stats = app.hypertext.stats();
    println!(
        "model: {} site views, {} areas, {} pages, {} units, {} operations, {} links ({:?})",
        stats.site_views,
        stats.areas,
        stats.pages,
        stats.units,
        stats.operations,
        stats.links,
        t0.elapsed()
    );

    let t1 = std::time::Instant::now();
    let generated = app.generate().expect("generation");
    let queries: usize = generated
        .descriptors
        .units
        .iter()
        .map(|u| u.queries.len())
        .sum::<usize>()
        + generated
            .descriptors
            .operations
            .iter()
            .filter(|o| o.sql.is_some())
            .count();
    println!(
        "generated in {:?}: {} unit descriptors, {} page descriptors, {} SQL queries, {} action mappings, {} template skeletons",
        t1.elapsed(),
        generated.descriptors.units.len(),
        generated.descriptors.pages.len(),
        queries,
        generated.descriptors.controller.mappings.len(),
        generated.skeletons.len(),
    );

    // §8's headline numbers
    let cmp = ArchitectureComparison::compute(&generated.descriptors);
    println!("\n{}", cmp.to_table());
    println!(
        "classes eliminated by genericity: {} (paper: 556 + 3068 → 1 + 11)",
        cmp.classes_eliminated()
    );
    let conventional = codegen::conventional_mvc_artifacts(&generated.descriptors);
    let generic = codegen::generic_artifacts(&generated.descriptors);
    println!(
        "dedicated-class codebase: {} files, {} KiB | generic + descriptors: {} files, {} KiB",
        conventional.len(),
        conventional.iter().map(|(_, s)| s.len()).sum::<usize>() / 1024,
        generic.len(),
        generic.iter().map(|(_, s)| s.len()).sum::<usize>() / 1024,
    );

    // ---- scaled deployment: serve traffic --------------------------------
    let small = SynthSpec::scaled(48, 5);
    let app = synthesize(&small);
    let d = app.deploy(RuntimeOptions::default()).expect("deploy");
    seed_data(&app, &d.db, 20, 11);
    let t2 = std::time::Instant::now();
    let mut ok = 0;
    for round in 0..10 {
        for p in &d.generated.descriptors.pages {
            let resp = d.handle(&WebRequest::get(&p.url).with_param("round", round.to_string()));
            assert_eq!(resp.status, 200, "{}: {}", p.url, resp.body);
            ok += 1;
        }
    }
    let elapsed = t2.elapsed();
    println!(
        "\nscaled deployment ({} pages): served {ok} page requests in {elapsed:?} ({:.0} req/s), bean-cache hit ratio {:.2}",
        small.pages,
        ok as f64 / elapsed.as_secs_f64(),
        d.controller
            .bean_cache()
            .map(|c| c.stats().hit_ratio())
            .unwrap_or(0.0),
    );
}
