//! The paper's running example (Figs. 1 and 2): the ACM Digital Library
//! TODS volume page — a data unit transporting the selected volume's oid
//! into a hierarchical Issues&Papers index, plus a keyword-search entry
//! unit — served over real HTTP.
//!
//! ```sh
//! cargo run --example acm_library          # serves until Ctrl-C
//! ACM_ONESHOT=1 cargo run --example acm_library   # self-test and exit
//! ```

use webml_ratio::httpd::client;
use webml_ratio::mvc::RuntimeOptions;
use webml_ratio::webratio::fixtures;

fn main() {
    let app = fixtures::acm_library();
    let d = app.deploy(RuntimeOptions::default()).expect("deploy");
    fixtures::seed_acm(&d.db, 5, 4, 6); // 5 volumes × 4 issues × 6 papers

    let server = d.serve(0, 4).expect("bind");
    let addr = server.addr();
    println!("ACM Digital Library reproduction serving at http://{addr}/acm_dl/volumes");
    println!("pages:");
    for p in &d.generated.descriptors.pages {
        println!("  http://{addr}{}", p.url);
    }

    // drive the hypertext the way a browser would
    let volumes = client::get(addr, "/acm_dl/volumes").expect("home");
    let body = String::from_utf8(volumes.body).unwrap();
    assert!(body.contains("TODS Volume 27"));
    println!("\nGET /acm_dl/volumes → {} bytes", body.len());

    // follow the first volume link (Fig. 1's contextual link carrying the
    // volume oid)
    let href = body
        .split("href=\"")
        .find(|s| s.starts_with("/acm_dl/volume_page"))
        .and_then(|s| s.split('"').next())
        .expect("volume link");
    let volume_page = client::get(addr, href).expect("volume page");
    let vbody = String::from_utf8(volume_page.body).unwrap();
    assert!(vbody.contains("Issues&amp;Papers"));
    assert!(vbody.contains("Enter keyword"));
    println!(
        "GET {href} → Volume Page with hierarchical index ({} bytes)",
        vbody.len()
    );

    // keyword search through the entry unit's generated form target
    let results = client::get(addr, "/acm_dl/search_results?kw=%251.2.%25").expect("search");
    let rbody = String::from_utf8(results.body).unwrap();
    let matches = rbody.matches("href=\"/acm_dl/paper_details").count();
    assert!(matches > 0, "search returned nothing:\n{rbody}");
    println!("GET /acm_dl/search_results?kw=%1.2.% → {matches} matching paper rows");

    // paper details via the hierarchy's leaf anchors
    let paper_href = vbody
        .split("href=\"")
        .find(|s| s.starts_with("/acm_dl/paper_details"))
        .and_then(|s| s.split('"').next())
        .expect("paper link");
    let paper = client::get(addr, paper_href).expect("paper page");
    println!("GET {paper_href} → {} bytes", paper.body.len());

    if std::env::var("ACM_ONESHOT").is_ok() {
        println!("\nself-test passed");
        server.stop();
        return;
    }
    println!("\nPress Ctrl-C to stop.");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
