//! Run the whole-application model checker over every shipped
//! application — the two paper fixtures and a mid-size synthetic model —
//! and print the reports. Exits non-zero if any application has
//! analysis errors, which makes this the "analyze smoke" step of
//! `verify.sh`.
//!
//! ```sh
//! cargo run --example analyze            # text reports
//! ANALYZE_JSON=1 cargo run --example analyze   # machine-readable
//! ```
//!
//! The tail of the run demonstrates what a *defective* model looks like:
//! a paramless link into a keyed detail page, the paper's canonical
//! modelling slip, reported with its witness path.

use webml_ratio::analyze::{analyze_deployment, Topology};
use webml_ratio::webml::LinkEnd;
use webml_ratio::webratio::{fixtures, synthesize, Application, SynthSpec};

fn main() {
    let json = std::env::var("ANALYZE_JSON").is_ok();
    let apps: Vec<(&str, Application)> = vec![
        ("bookstore", fixtures::bookstore()),
        ("acm_library", fixtures::acm_library()),
        ("synth_40p", synthesize(&SynthSpec::scaled(40, 5))),
    ];

    let mut failed = false;
    for (name, app) in &apps {
        let t0 = std::time::Instant::now();
        let report = app.analyze_report();
        let elapsed = t0.elapsed();
        if json {
            println!("{}", report.render_json());
        } else {
            println!("{}", report.render_text(name));
            println!("  (analyzed in {elapsed:?})\n");
        }
        if report.has_errors() {
            failed = true;
        }
    }

    // distribution-safety smoke: the paper fixtures must be deployable —
    // zero errors — on a replicated, sharded topology. (The synthetic
    // apps stay out: their operations are deliberately unlinked, which
    // the per-app analysis above already reports as AZ004.)
    let topo = Topology {
        replicas: 1,
        shards: 3,
    };
    for (name, app) in apps.iter().take(2) {
        let generated = app.generate().expect("generate");
        let report = analyze_deployment(
            &app.er,
            &app.mapping,
            &app.hypertext,
            &generated.descriptors,
            &topo,
        );
        if !json {
            println!(
                "{}",
                report.render_text(&format!("{name} @ replicas=1 shards=3"))
            );
        }
        if report.has_errors() {
            failed = true;
        }
    }

    if !json {
        // what a distribution defect looks like: a cross-shard GROUP BY
        // smuggled into a generated unit query fires AZ401 and would deny
        // the deploy at Gate::Deny before any durable side effect
        let app = fixtures::bookstore();
        let mut generated = app.generate().expect("generate");
        let victim = &mut generated.descriptors.units[0].queries[0];
        victim.sql = "SELECT t.title, COUNT(*) FROM book t GROUP BY t.title".into();
        let report = analyze_deployment(
            &app.er,
            &app.mapping,
            &app.hypertext,
            &generated.descriptors,
            &topo,
        );
        println!("--- for comparison: a seeded distribution defect ---");
        println!("{}", report.render_text("bookstore+group_by @ shards=3"));

        // what a defect looks like: break the bookstore on purpose
        let mut broken = fixtures::bookstore();
        let (sv, _) = broken.hypertext.site_view_by_name("Store").unwrap();
        let (books, _) = broken.hypertext.page_by_name(sv, "Books").unwrap();
        let (detail, _) = broken.hypertext.page_by_name(sv, "Book Detail").unwrap();
        let index = broken.hypertext.page(books).units[0];
        broken.hypertext.link_contextual(
            LinkEnd::Unit(index),
            LinkEnd::Page(detail),
            "bare",
            vec![],
        );
        println!("--- for comparison: a seeded defect ---");
        println!(
            "{}",
            broken.analyze_report().render_text("bookstore+defect")
        );
    }

    if failed {
        eprintln!("analysis errors found");
        std::process::exit(1);
    }
}
