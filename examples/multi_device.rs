//! Multi-device adaptation (§5): the same template skeleton styled at
//! runtime with different rule sets, selected by User-Agent.
//!
//! ```sh
//! cargo run --example multi_device
//! ```

use webml_ratio::mvc::{Controller, RuntimeOptions, StylingMode, WebRequest};
use webml_ratio::presentation::{DeviceClass, DeviceRegistry, RuleSet, Stylesheet};
use webml_ratio::webratio::fixtures;

fn main() {
    let app = fixtures::acm_library();

    // runtime styling + a custom device registry with three rule sets
    let mut devices = DeviceRegistry::new();
    devices.register(
        DeviceClass {
            name: "pda".into(),
            ua_markers: vec!["pda".into(), "mobile".into(), "palm".into()],
        },
        RuleSet::minimal_device("pda"),
    );
    devices.register(
        DeviceClass {
            name: "wap".into(),
            ua_markers: vec!["wap".into()],
        },
        RuleSet::minimal_device("wap"),
    );
    let mut desktop = RuleSet::default_desktop("desktop");
    desktop.page_rules[0].banner = "ACM Digital Library".into();
    devices.set_default(desktop.clone());

    let d = app
        .deploy_with(|generated, db| {
            Controller::with_registry(
                generated.descriptors,
                generated.skeletons,
                db,
                RuntimeOptions {
                    styling: StylingMode::Runtime, // §5: rules applied per request
                    ..RuntimeOptions::default()
                },
                webml_ratio::mvc::ServiceRegistry::standard(),
                devices,
            )
        })
        .expect("deploy");
    fixtures::seed_acm(&d.db, 2, 2, 2);

    // the generated modular CSS (one module per unit kind, §5)
    let css = Stylesheet::for_rule_set(
        &desktop,
        &["data", "index", "hierarchy", "entry", "scroller"],
    );
    println!(
        "generated stylesheet '{}': {} modules, {} rules\n",
        css.name,
        css.modules.len(),
        css.rule_count()
    );

    let page = "/acm_dl/volume_page?volume=1";
    for (label, ua) in [
        ("desktop ", "Mozilla/5.0 (Windows NT 10.0; Win64)"),
        ("pda     ", "SuperHandheld PalmOS PDA/2.1"),
        ("wap     ", "Nokia7110/1.0 WAP-Gateway"),
    ] {
        let resp = d.handle(
            &WebRequest::get("/acm_dl/volume_page")
                .with_param("volume", "1")
                .with_user_agent(ua),
        );
        let has_banner = resp.body.contains("class=\"banner\"");
        let has_nav = resp.body.contains("<nav");
        println!(
            "{label} UA → {:>5} bytes | banner: {:5} | navigation: {:5}",
            resp.body.len(),
            has_banner,
            has_nav
        );
    }
    println!("\nsame model, same skeleton, three presentations — no template was edited ({page})");
}
