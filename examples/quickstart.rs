//! Quickstart: model a bookstore, generate the application, deploy it,
//! and exercise it — all in process.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use webml_ratio::mvc::WebRequest;
use webml_ratio::webratio::{fixtures, Application, DeployOptions};

fn main() {
    // 1. The models: fixtures::bookstore() builds an ER model (entity
    //    Book) and a WebML hypertext (a Books list page with an entry
    //    form, a Book Detail page, and a CreateBook operation).
    let app: Application = fixtures::bookstore();

    // 2. Validate (the generator refuses invalid models).
    let issues = app.validate();
    println!("validation: {} finding(s)", issues.len());
    for i in &issues {
        println!("  {i}");
    }

    // 3. Generate: descriptors, controller config, skeletons, DDL.
    let generated = app.generate().expect("generation");
    println!(
        "\ngenerated artifacts: {} unit descriptors, {} page descriptors, {} operations, {} action mappings",
        generated.descriptors.units.len(),
        generated.descriptors.pages.len(),
        generated.descriptors.operations.len(),
        generated.descriptors.controller.mappings.len(),
    );
    println!("--- DDL ---\n{}", generated.ddl);
    println!(
        "--- unit descriptor (XML, Fig. 5) ---\n{}",
        generated.descriptors.units[0].to_xml().to_document()
    );
    println!(
        "--- template skeleton (Fig. 7, left) ---\n{}",
        generated.skeletons[0].root.to_source()
    );

    // 4. Deploy behind the static-analysis gate: the analyzer proves the
    //    model's parameter flow, cache invalidation and descriptor/model
    //    agreement before anything serves (gate level Deny by default).
    let d = app
        .deploy_checked(DeployOptions::default())
        .expect("deploy (analysis gate)");
    let report = d.analysis.as_ref().expect("analysis report");
    println!(
        "\nstatic analysis: {} error(s), {} warning(s) across {} pages / {} units / {} operations",
        report.errors().count(),
        report.warnings().count(),
        report.stats.pages,
        report.stats.units,
        report.stats.operations,
    );

    // 5. Create content through the generated create operation (the
    //    controller executes it and forwards to the books page).
    let op_url = d.generated.descriptors.operations[0].url.clone();
    for (title, price) in [
        ("Design Principles for Data-Intensive Web Sites", "35.0"),
        ("Building Data-Intensive Web Applications", "55.0"),
        ("Design Patterns", "49.0"),
    ] {
        let resp = d.handle(
            &WebRequest::get(&op_url)
                .with_param("title", title)
                .with_param("price", price),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    println!(
        "created {} books via the CreateBook operation",
        d.db.table_len("book").unwrap()
    );

    // 6. Browse: home page lists books with generated anchors.
    let home = d.home_url("store").unwrap();
    let resp = d.handle(&WebRequest::get(&home));
    println!(
        "\n--- GET {home} ({} bytes) ---\n{}",
        resp.body.len(),
        resp.body
    );

    // 7. Follow a detail link.
    let resp = d.handle(&WebRequest::get("/store/book_detail").with_param("oid", "2"));
    assert!(resp
        .body
        .contains("Building Data-Intensive Web Applications"));
    println!("detail page for oid=2 renders correctly");
}
