//! # webml-ratio — umbrella crate
//!
//! Re-exports the whole workspace so examples and integration tests (and
//! downstream users who want a single dependency) can reach every layer:
//!
//! * [`webratio`] — the facade ([`webratio::Application`] →
//!   [`webratio::Deployment`]);
//! * [`er`], [`webml`] — the two modelling languages;
//! * [`codegen`], [`descriptors`], [`presentation`] — the generation
//!   pipeline;
//! * [`mvc`], [`webcache`], [`relstore`], [`httpd`] — the runtime stack;
//! * [`wal`] — the durability spine (write-ahead log, snapshots, recovery);
//! * [`obs`] — the request observability spine (span trees + metrics);
//! * [`analyze`] — the whole-application model checker and deploy gate.
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system map.

pub use analyze;
pub use codegen;
pub use descriptors;
pub use er;
pub use httpd;
pub use mvc;
pub use obs;
pub use presentation;
pub use relstore;
pub use repl;
pub use wal;
pub use webcache;
pub use webml;
pub use webratio;
