//! Integration tests of the static-analysis deploy gate: gate levels,
//! metrics export, and the headline soundness property — an
//! analyzer-clean model never produces an undefined-context-parameter KO
//! flow or a provably-stale cached bean at runtime.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use proptest::prelude::*;
use webml_ratio::analyze;
use webml_ratio::mvc::WebRequest;
use webml_ratio::webml::{LinkEnd, Severity};
use webml_ratio::webratio::{
    fixtures, seed_data, synthesize, DeployError, DeployOptions, Deployment, SynthSpec,
};

// ---- gate levels -----------------------------------------------------------

#[test]
fn deny_gate_accepts_clean_bookstore() {
    let app = fixtures::bookstore();
    let d = app
        .deploy_checked(DeployOptions::default())
        .expect("deploy");
    let report = d.analysis.as_ref().expect("analysis attached");
    assert!(report.is_clean(), "{}", report.render_text("bookstore"));
    assert!(report.stats.pages >= 2 && report.stats.edges >= 3);

    // the run and the (empty) diagnostic family are visible at /metrics
    let prom = d.obs.render_prometheus();
    assert!(prom.contains("analyze_runs_total 1"), "{prom}");
    assert!(prom.contains("# TYPE analyze_diagnostics_total counter"));
    assert!(prom.contains("analyze_run_micros_count 1"), "{prom}");

    // and the deployment actually serves
    let home = d.home_url("store").unwrap();
    assert_eq!(d.handle(&WebRequest::get(&home)).status, 200);
}

/// A paramless second route into the keyed detail page is the paper's
/// canonical modelling slip: the page renders empty for users arriving
/// that way. `Deny` refuses to deploy it; `Warn` deploys but attaches
/// the findings.
#[test]
fn deny_gate_rejects_defective_model_warn_passes_it() {
    let mut app = fixtures::bookstore();
    let (sv, _) = app.hypertext.site_view_by_name("Store").unwrap();
    let (books, _) = app.hypertext.page_by_name(sv, "Books").unwrap();
    let (detail, _) = app.hypertext.page_by_name(sv, "Book Detail").unwrap();
    let index = app.hypertext.page(books).units[0];
    app.hypertext
        .link_contextual(LinkEnd::Unit(index), LinkEnd::Page(detail), "bare", vec![]);

    match app.deploy_checked(DeployOptions::default()) {
        Err(DeployError::Analysis(report)) => {
            assert!(report.has_errors());
            assert!(
                report.diagnostics.iter().any(|d| d.code == analyze::AZ001),
                "{}",
                report.render_text("defective")
            );
            // the witness names the offending route
            let az = report
                .diagnostics
                .iter()
                .find(|d| d.code == analyze::AZ001)
                .unwrap();
            assert!(az.witness.is_some());
        }
        Err(other) => panic!("expected analysis denial, got {other}"),
        Ok(_) => panic!("expected analysis denial, deployment succeeded"),
    }

    let d = app
        .deploy_checked(DeployOptions::with_gate(analyze::Gate::Warn))
        .expect("warn gate deploys");
    assert!(d.analysis.as_ref().unwrap().has_errors());
}

#[test]
fn off_gate_skips_analysis() {
    let app = fixtures::bookstore();
    let d = app
        .deploy_checked(DeployOptions::with_gate(analyze::Gate::Off))
        .expect("deploy");
    assert!(d.analysis.is_none());
    assert!(d.obs.render_prometheus().contains("analyze_runs_total 0"));
}

#[test]
fn metrics_expose_diagnostic_families() {
    // synthetic apps carry standalone operations (no inbound links): AZ004
    let app = synthesize(&SynthSpec::scaled(10, 3));
    let d = app
        .deploy_checked(DeployOptions::default())
        .expect("deploy");
    let report = d.analysis.as_ref().unwrap();
    assert!(!report.has_errors(), "{}", report.render_text("synth"));
    assert!(report.codes().contains(&analyze::AZ004));

    let prom = d.obs.render_prometheus();
    assert!(
        prom.contains("analyze_diagnostics_total{code=\"AZ004\",severity=\"warning\"}"),
        "{prom}"
    );
}

// ---- the soundness property ------------------------------------------------

/// Turn a rendered `href` back into an in-process request (the httpd
/// adapter does this split/decode for real HTTP traffic).
fn request_for(url: &str) -> WebRequest {
    use webml_ratio::httpd::{parse_query, percent_decode};
    match url.split_once('?') {
        None => WebRequest::get(percent_decode(url)),
        Some((path, q)) => {
            let mut req = WebRequest::get(percent_decode(path));
            for (k, v) in parse_query(q) {
                req.params.insert(k, v);
            }
            req
        }
    }
}

/// Breadth-first crawl from the landmark pages, following every href the
/// rendered markup exposes that the controller maps (stylesheets and
/// other assets are skipped), bounded by `limit` requests.
fn crawl(d: &Deployment, limit: usize) -> BTreeMap<String, String> {
    let mut queue: VecDeque<String> = d
        .generated
        .descriptors
        .pages
        .iter()
        .filter(|p| p.landmark)
        .map(|p| p.url.clone())
        .collect();
    let mut seen: BTreeSet<String> = queue.iter().cloned().collect();
    let mut bodies = BTreeMap::new();
    while let Some(url) = queue.pop_front() {
        if bodies.len() >= limit {
            break;
        }
        let resp = d.handle(&request_for(&url));
        assert_eq!(resp.status, 200, "crawl of {url} failed: {}", resp.body);
        let mapped = |h: &str| {
            let path = h.split('?').next().unwrap_or(h);
            d.generated.descriptors.controller.resolve(path).is_some()
        };
        for href in resp
            .body
            .split("href=\"")
            .skip(1)
            .filter_map(|s| s.split('"').next())
            .filter(|h| h.starts_with('/') && mapped(h))
        {
            if seen.insert(href.to_string()) {
                queue.push_back(href.to_string());
            }
        }
        bodies.insert(url, resp.body);
    }
    bodies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary synthetic models that the analyzer passes (no
    /// errors), crawling every reachable URL never KOs, and after write
    /// operations every page served through the bean cache equals the
    /// page recomputed from scratch — no provably-stale bean.
    #[test]
    fn analyzer_clean_models_are_runtime_safe(
        pages in 2usize..14,
        upp in 1usize..5,
        seed in 0u64..500,
    ) {
        let mut spec = SynthSpec::scaled(pages, upp);
        spec.seed = seed;
        let app = synthesize(&spec);

        let report = app.analyze_report();
        prop_assert!(!report.has_errors(), "{}", report.render_text("synth"));

        let d = app.deploy_checked(DeployOptions::default()).expect("deny gate");
        seed_data(&app, &d.db, 3, seed);

        // crawl the whole navigable surface: no KO flows
        let warm = crawl(&d, 120);
        prop_assert!(!warm.is_empty());
        prop_assert_eq!(d.obs.ko_flows.get(), 0);

        // run every create operation (guaranteed OK flows that write)
        for op in d
            .generated
            .descriptors
            .operations
            .iter()
            .filter(|o| o.op_type == "create")
        {
            let resp = d.handle(&WebRequest::get(&op.url).with_param("name", "freshly-written"));
            prop_assert_eq!(resp.status, 200, "{}", resp.body);
        }

        // staleness equivalence: each page served with the warm cache must
        // equal the page recomputed after dropping every cached bean
        for url in warm.keys() {
            let cached = d.handle(&request_for(url));
            if let Some(cache) = d.controller.bean_cache() {
                cache.clear();
            }
            let fresh = d.handle(&request_for(url));
            prop_assert_eq!(
                cached.body, fresh.body,
                "stale bean served at {url} after create operations"
            );
        }
    }
}

// ---- shared diagnostic vocabulary ------------------------------------------

/// The validator's WVxxx findings flow into the analyzer report under the
/// same `Diagnostic` shape, and deploy reports never show a finding twice.
#[test]
fn validator_findings_join_the_report_deduplicated() {
    let mut app = fixtures::bookstore();
    // an unreachable page: WV060 (warning) from the validator
    let (sv, _) = app.hypertext.site_view_by_name("Store").unwrap();
    app.hypertext.add_page(sv, None, "Island");

    let report = app.analyze_report();
    let wv: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code.starts_with("WV"))
        .collect();
    assert!(
        wv.iter().any(|d| d.code == "WV060"),
        "{}",
        report.render_text("island")
    );
    assert!(wv.iter().all(|d| d.severity == Severity::Warning));

    // dedup: no (code, location, message) triple appears twice
    let mut keys = BTreeSet::new();
    for d in &report.diagnostics {
        assert!(
            keys.insert((d.code, d.location.clone(), d.message.clone())),
            "duplicate finding {d}"
        );
    }
}
