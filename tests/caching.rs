//! Integration tests of the §6 two-level cache semantics across
//! deployment configurations.

use std::time::Duration;
use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::webratio::fixtures;

fn options(bean: bool, fragment: bool, ttl: Duration) -> RuntimeOptions {
    RuntimeOptions {
        bean_cache: bean,
        fragment_cache: fragment,
        fragment_ttl: ttl,
        ..RuntimeOptions::default()
    }
}

/// With the bean cache on, reads after a write always see fresh data —
/// the §6 model-driven invalidation guarantee.
#[test]
fn bean_cache_is_never_stale() {
    let app = fixtures::bookstore();
    let d = app
        .deploy(options(true, false, Duration::from_secs(3600)))
        .unwrap();
    let home = d.home_url("store").unwrap();
    let op = d.generated.descriptors.operations[0].url.clone();
    for i in 0..30 {
        let title = format!("Volume {i}");
        let resp = d.handle(
            &WebRequest::get(&op)
                .with_param("title", &title)
                .with_param("price", "1.0"),
        );
        assert_eq!(resp.status, 200);
        let page = d.handle(&WebRequest::get(&home));
        assert!(page.body.contains(&title), "stale read after create #{i}");
    }
    let stats = d.controller.bean_cache().unwrap().stats();
    assert!(stats.invalidations > 0);
}

/// The fragment cache alone serves stale markup until TTL — the §6
/// limitation that motivates the second level.
#[test]
fn fragment_cache_alone_can_be_stale_but_expires() {
    let app = fixtures::bookstore();
    let d = app
        .deploy(options(false, true, Duration::from_millis(60)))
        .unwrap();
    let home = d.home_url("store").unwrap();
    let op = d.generated.descriptors.operations[0].url.clone();

    d.handle(&WebRequest::get(&home)); // prime fragments (empty list)
    d.handle(
        &WebRequest::get(&op)
            .with_param("title", "Invisible")
            .with_param("price", "2.0"),
    );
    std::thread::sleep(Duration::from_millis(80));
    // after TTL expiry the fragment is regenerated from fresh beans
    let fresh = d.handle(&WebRequest::get(&home));
    assert!(fresh.body.contains("Invisible"));
}

/// Fragment hits spare markup generation but never spare data queries —
/// the quantitative version of the §6 claim.
#[test]
fn fragment_hits_do_not_spare_queries_bean_hits_do() {
    let app = fixtures::bookstore();

    // fragment only
    let d = app
        .deploy(options(false, true, Duration::from_secs(3600)))
        .unwrap();
    let home = d.home_url("store").unwrap();
    d.handle(&WebRequest::get(&home));
    let q0 = d.db.statements_executed();
    d.handle(&WebRequest::get(&home));
    let fragment_queries = d.db.statements_executed() - q0;
    assert!(fragment_queries > 0, "fragment cache spared queries?!");

    // bean only
    let d = app
        .deploy(options(true, false, Duration::from_secs(3600)))
        .unwrap();
    d.handle(&WebRequest::get(&home));
    let q0 = d.db.statements_executed();
    d.handle(&WebRequest::get(&home));
    let bean_queries = d.db.statements_executed() - q0;
    assert_eq!(
        bean_queries, 0,
        "bean cache must spare the cached unit's queries"
    );
}

/// All four configurations produce byte-identical page content for
/// read-only traffic (caches must be semantically transparent there).
#[test]
fn cache_configs_agree_on_read_only_content() {
    let mut bodies = Vec::new();
    for (bean, fragment) in [(false, false), (true, false), (false, true), (true, true)] {
        let app = fixtures::acm_library();
        let d = app
            .deploy(options(bean, fragment, Duration::from_secs(3600)))
            .unwrap();
        fixtures::seed_acm(&d.db, 2, 2, 2);
        let mut pages = String::new();
        for p in &d.generated.descriptors.pages {
            // request twice so cached paths are actually exercised
            d.handle(
                &WebRequest::get(&p.url)
                    .with_param("volume", "1")
                    .with_param("paper", "1")
                    .with_param("kw", "%1%"),
            );
            let resp = d.handle(
                &WebRequest::get(&p.url)
                    .with_param("volume", "1")
                    .with_param("paper", "1")
                    .with_param("kw", "%1%"),
            );
            assert_eq!(resp.status, 200);
            pages.push_str(&resp.body);
        }
        bodies.push(pages);
    }
    assert!(bodies.windows(2).all(|w| w[0] == w[1]));
}

/// The maintenance path preserves the no-stale-bean property: under a
/// randomized write schedule (operation-driven inserts plus direct SQL
/// updates and deletes), a warm maintained deployment — beans patched in
/// place from the WAL stream, fragments re-rendered only when dirty —
/// serves pages byte-identical to a cacheless deployment recomputing from
/// scratch after every single op. Override the schedule with
/// `RELSTORE_STRESS_SEED`.
#[test]
fn maintained_cache_matches_cold_recompute() {
    use webml_ratio::relstore::Params;
    use webml_ratio::webratio::DurabilityConfig;

    let seed: u64 = std::env::var("RELSTORE_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC1D2_2003);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let dir = webml_ratio::wal::TempDir::new("maint-prop").unwrap();
    let mut durability = DurabilityConfig::new(dir.path());
    durability.incremental_maintenance = true;
    let warm = fixtures::bookstore()
        .deploy_durable(
            RuntimeOptions {
                bean_cache: true,
                fragment_cache: true,
                fragment_ttl: Duration::from_secs(3600),
                ..RuntimeOptions::default()
            },
            &durability,
        )
        .unwrap();
    let cold = fixtures::bookstore()
        .deploy(options(false, false, Duration::from_secs(3600)))
        .unwrap();

    let home = warm.home_url("store").unwrap();
    let op = warm.generated.descriptors.operations[0].url.clone();
    let wal = warm.wal.as_ref().unwrap();

    for step in 0..40u64 {
        match next() % 3 {
            0 => {
                // insert through the generated operation on both apps;
                // autoincrement keeps the oid spaces aligned
                let title = format!("Book {}", next() % 400);
                let price = format!("{}.5", next() % 90 + 1);
                for d in [&warm, &cold] {
                    let r = d.handle(
                        &WebRequest::get(&op)
                            .with_param("title", &title)
                            .with_param("price", &price),
                    );
                    assert_eq!(r.status, 200);
                }
            }
            1 => {
                // in-place edit of a (possibly absent) row — the patch path
                let sql = format!(
                    "UPDATE book SET title = 'Rev {step}.{}' WHERE oid = {}",
                    next() % 100,
                    next() % 40 + 1
                );
                warm.db.execute(&sql, &Params::new()).unwrap();
                cold.db.execute(&sql, &Params::new()).unwrap();
                wal.flush_and_notify();
            }
            _ => {
                let sql = format!("DELETE FROM book WHERE oid = {}", next() % 40 + 1);
                warm.db.execute(&sql, &Params::new()).unwrap();
                cold.db.execute(&sql, &Params::new()).unwrap();
                wal.flush_and_notify();
            }
        }
        // after every op the warm caches must agree with cold recompute
        let w = warm.handle(&WebRequest::get(&home));
        let c = cold.handle(&WebRequest::get(&home));
        assert_eq!(w.status, 200);
        assert_eq!(
            w.body, c.body,
            "maintained cache diverged from recompute at step {step} (seed {seed})"
        );
    }
    // the schedule must actually exercise the warm path: beans were hit,
    // and durable changes were folded in place or counted as fallbacks
    let stats = warm.controller.bean_cache().unwrap().stats();
    assert!(stats.hits > 0, "schedule never hit the bean cache");
    let maint = &warm.obs.maint;
    let folded =
        maint.patches_applied.get() + maint.fallback_counts().iter().map(|(_, n)| *n).sum::<u64>();
    assert!(folded > 0, "schedule never reached the maintenance layer");
}

/// TTL-based cache annotations expire as configured.
#[test]
fn ttl_annotated_units_expire() {
    use webml_ratio::webml::CacheSpec;
    let mut app = fixtures::bookstore();
    // find the index unit and re-tag it with a short TTL, no write
    // invalidation
    let (uid, _) = app
        .hypertext
        .units()
        .find(|(_, u)| u.name == "All books")
        .unwrap();
    app.hypertext
        .set_cache(uid, CacheSpec::ttl(Duration::from_millis(50)));
    let d = app
        .deploy(options(true, false, Duration::from_secs(1)))
        .unwrap();
    let home = d.home_url("store").unwrap();
    d.handle(&WebRequest::get(&home));
    d.handle(&WebRequest::get(&home));
    let s1 = d.controller.bean_cache().unwrap().stats();
    assert_eq!(s1.hits, 1);
    std::thread::sleep(Duration::from_millis(70));
    d.handle(&WebRequest::get(&home));
    let s2 = d.controller.bean_cache().unwrap().stats();
    assert_eq!(s2.expirations, 1, "TTL did not expire the bean");
}
