//! Distribution-safety analysis, end to end: the AZ4xx passes behind the
//! `deploy_replicated` gate, the `analyze_distribution_total` metrics
//! family, and the headline single-source-of-truth property — for every
//! model-generated statement in every example app, the analyzer's
//! deploy-time routing verdict equals the sharded store's actual runtime
//! routing outcome (single-shard / fan-out / rejected), with zero
//! disagreements.

use std::sync::Arc;
use std::time::Duration;

use webml_ratio::analyze::routing::{self, ShardKeyMap, Verdict};
use webml_ratio::analyze::{self, Topology};
use webml_ratio::codegen;
use webml_ratio::obs::ReplCounters;
use webml_ratio::relstore::{parse_statement, Error, Params, Statement, Value};
use webml_ratio::repl::{deploy_replicated, ShardedStore};
use webml_ratio::wal::TempDir;
use webml_ratio::webml::LinkEnd;
use webml_ratio::webratio::{fixtures, Application, DeployError, DeployOptions, DurabilityConfig};

const SHARDS: usize = 3;

fn manual(dir: &TempDir) -> DurabilityConfig {
    let mut d = DurabilityConfig::new(dir.path());
    d.group_commit_window = Duration::from_secs(3600);
    d
}

/// Every generated statement of `app`, with the named inputs it binds and
/// a label for failure messages.
fn generated_statements(app: &Application) -> Vec<(String, Vec<String>, String)> {
    let generated = app.generate().expect("generate");
    let mut out = Vec::new();
    for u in &generated.descriptors.units {
        for q in &u.queries {
            out.push((
                q.sql.clone(),
                q.inputs.clone(),
                format!("{}/{}", u.name, q.name),
            ));
        }
    }
    for o in &generated.descriptors.operations {
        if let Some(sql) = &o.sql {
            out.push((sql.clone(), o.inputs.clone(), o.name.clone()));
        }
    }
    out
}

fn bind(inputs: &[String], v: Value) -> Params {
    let mut p = Params::new();
    for name in inputs {
        p.set(name.clone(), v.clone());
    }
    p
}

fn total_reads(counters: &ReplCounters) -> u64 {
    (0..SHARDS)
        .map(|i| counters.reads_for(&format!("shard-{i}")))
        .sum()
}

fn rows_per_shard(store: &ShardedStore, table: &str) -> Vec<i64> {
    store
        .shards()
        .iter()
        .map(|db| {
            let rs = db
                .query(&format!("SELECT COUNT(*) FROM {table}"), &Params::new())
                .unwrap();
            match &rs.rows()[0][0] {
                Value::Integer(n) => *n,
                other => panic!("count came back as {other:?}"),
            }
        })
        .collect()
}

/// The acceptance property: lower every generated statement through the
/// shared classifier AND execute it against a real sharded store; the
/// two must agree statement by statement.
fn assert_classifier_matches_runtime(app: &Application) {
    let generated = app.generate().expect("generate");
    let shard_keys = codegen::derive_shard_keys(&app.er, &app.mapping, &app.hypertext);
    let keys = ShardKeyMap::new(&shard_keys);
    let counters = Arc::new(ReplCounters::new());
    let store = ShardedStore::bootstrap(SHARDS, &generated.ddl, &shard_keys, Arc::clone(&counters))
        .expect("bootstrap");

    let statements = generated_statements(app);
    assert!(
        statements.len() >= 3,
        "property would be vacuous: only {} statements",
        statements.len()
    );

    for (sql, inputs, label) in &statements {
        let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("{label}: parse {sql}: {e}"));
        let verdict = routing::classify(sql, &stmt, &keys);

        // execute with everything bound; retry with text bindings when an
        // integer binding trips a non-routing execution error
        let run = |v: Value| store.execute(sql, &bind(inputs, v));
        let before = total_reads(&counters);
        let insert_table = match &stmt {
            Statement::Insert(i) => Some(i.table.clone()),
            _ => None,
        };
        let counts_before = insert_table.as_deref().map(|t| rows_per_shard(&store, t));
        let mut outcome = run(Value::Integer(7));
        if let Err(e) = &outcome {
            let routing_rejection =
                matches!(e, Error::Unsupported(m) if m.starts_with("sharding: "));
            if !routing_rejection {
                outcome = run(Value::Text("7".into()));
            }
        }
        let reads = total_reads(&counters) - before;

        match (&verdict, &outcome) {
            // analyzer says unroutable ⇔ runtime rejects with the same
            // shared "sharding:" explanation
            (Err(unroutable), Err(Error::Unsupported(msg))) => {
                assert_eq!(
                    msg,
                    &unroutable.explain(),
                    "{label}: analyzer and runtime must render one explanation"
                );
            }
            (Err(unroutable), other) => panic!(
                "{label}: analyzer rejects ({}) but runtime ran: {other:?}",
                unroutable.explain()
            ),
            (Ok(v), Err(Error::Unsupported(msg))) if msg.starts_with("sharding: ") => {
                panic!("{label}: analyzer allows ({v:?}) but runtime rejected: {msg}")
            }
            // non-routing execution errors (type mismatches etc.) don't
            // contradict the routing verdict
            (Ok(_), Err(_)) => {}
            (Ok(v), Ok(_)) => {
                if matches!(stmt, Statement::Select(_)) {
                    let expect = match v {
                        Verdict::SingleShard => 1,
                        Verdict::Fanout => SHARDS as u64,
                    };
                    assert_eq!(
                        reads, expect,
                        "{label}: verdict {v:?} but {reads} shard reads for {sql}"
                    );
                }
                if let (Verdict::SingleShard, Some(t)) = (v, insert_table.as_deref()) {
                    let after = rows_per_shard(&store, t);
                    let changed = counts_before
                        .as_ref()
                        .unwrap()
                        .iter()
                        .zip(&after)
                        .filter(|(b, a)| b != a)
                        .count();
                    assert_eq!(changed, 1, "{label}: INSERT must land on exactly one shard");
                }
            }
        }
    }
}

#[test]
fn analyzer_verdict_equals_runtime_routing_for_every_generated_statement() {
    assert_classifier_matches_runtime(&fixtures::bookstore());
    assert_classifier_matches_runtime(&fixtures::acm_library());
}

// ---- the deploy gate -------------------------------------------------------

#[test]
fn deny_gate_blocks_replicated_deploy_before_any_durable_side_effect() {
    // the canonical modelling slip (paramless route into a keyed page)
    // must deny a replicated deploy exactly like a plain checked one
    let mut app = fixtures::bookstore();
    let (sv, _) = app.hypertext.site_view_by_name("Store").unwrap();
    let (books, _) = app.hypertext.page_by_name(sv, "Books").unwrap();
    let (detail, _) = app.hypertext.page_by_name(sv, "Book Detail").unwrap();
    let index = app.hypertext.page(books).units[0];
    app.hypertext
        .link_contextual(LinkEnd::Unit(index), LinkEnd::Page(detail), "bare", vec![]);

    let dir = TempDir::new("dist-deny").unwrap();
    match deploy_replicated(
        &app,
        DeployOptions::default()
            .with_replicas(1)
            .with_shards(SHARDS),
        &manual(&dir),
    ) {
        Err(DeployError::Analysis(report)) => {
            assert!(report.has_errors());
        }
        Err(other) => panic!("expected analysis denial, got {other}"),
        Ok(_) => panic!("expected analysis denial, deployment succeeded"),
    }
    // the gate ran before the leader touched durable storage
    let leftovers = std::fs::read_dir(dir.path())
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leftovers, 0, "denied deploy must leave no WAL artifacts");
}

#[test]
fn replicated_deploy_attaches_report_and_distribution_metrics() {
    // acm_library is clean at Deny (no errors) but carries one legitimate
    // AZ402: the paper detail unit probes paper.oid while papers shard by
    // issue_oid — a true scatter-gather on a hot path, surfaced not fatal
    let app = fixtures::acm_library();
    let dir = TempDir::new("dist-metrics").unwrap();
    let rd = deploy_replicated(
        &app,
        DeployOptions::default()
            .with_replicas(1)
            .with_shards(SHARDS),
        &manual(&dir),
    )
    .expect("replicated deploy at Deny");

    let report = rd.leader.analysis.as_ref().expect("report attached");
    assert!(report.is_clean(), "{}", report.render_text("acm"));
    assert!(
        report.with_code(analyze::AZ402).count() == 1,
        "expected the paper-detail scatter-gather advisory:\n{}",
        report.render_text("acm")
    );

    let prom = rd.leader.obs.render_prometheus();
    assert!(prom.contains("analyze_runs_total 1"), "{prom}");
    assert!(
        prom.contains("analyze_distribution_total{code=\"AZ402\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("analyze_diagnostics_total{code=\"AZ402\",severity=\"warning\"} 1"),
        "{prom}"
    );
}

#[test]
fn single_node_topology_reduces_to_plain_analysis() {
    let app = fixtures::acm_library();
    let generated = app.generate().expect("generate");
    let plain = analyze::analyze(
        &app.er,
        &app.mapping,
        &app.hypertext,
        &generated.descriptors,
    );
    let dist = analyze::analyze_deployment(
        &app.er,
        &app.mapping,
        &app.hypertext,
        &generated.descriptors,
        &Topology {
            replicas: 0,
            shards: 1,
        },
    );
    assert_eq!(plain.diagnostics, dist.diagnostics);
    assert!(
        dist.with_code(analyze::AZ402).count() == 0,
        "no AZ4xx without shards"
    );
}
