//! End-to-end durability: a model-driven application deployed with the
//! write-ahead log underneath it, exercised over HTTP, crashed, and
//! recovered — plus the replica-style cache story: bean invalidation
//! driven by the *durable* change stream rather than the in-process
//! operation service.

use std::sync::Arc;
use std::time::Duration;
use webml_ratio::httpd::client;
use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::relstore::Params;
use webml_ratio::webratio::{fixtures, DurabilityConfig};

/// Manual-flush durability config: a huge group-commit window so the
/// tests control exactly when batches become durable.
fn manual(dir: &webml_ratio::wal::TempDir) -> DurabilityConfig {
    let mut d = DurabilityConfig::new(dir.path());
    d.group_commit_window = Duration::from_secs(3600);
    d
}

/// Deploy → HTTP operation → crash → recover: the row created over HTTP
/// survives the crash, and `/metrics` exposes the wal counters.
#[test]
fn http_operations_survive_crash_and_recovery() {
    let dir = webml_ratio::wal::TempDir::new("e2e-durable").unwrap();
    let app = fixtures::bookstore();
    let durability = manual(&dir);

    // ---- first life: create a book over HTTP ----
    {
        let d = app
            .deploy_durable(RuntimeOptions::default(), &durability)
            .unwrap();
        let server = d.serve_traced(0, 2).unwrap();
        let addr = server.addr();

        let op_url = d.generated.descriptors.operations[0].url.clone();
        let resp =
            client::get(addr, &format!("{op_url}?title=Mission-critical&price=42.0")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(d.db.table_len("book").unwrap(), 1);

        // the web tier's /metrics surface carries the wal economics
        let metrics = String::from_utf8(client::get(addr, "/metrics").unwrap().body).unwrap();
        for name in [
            "wal_flushes",
            "wal_group_batch_size",
            "wal_bytes_written",
            "wal_recovery_micros",
        ] {
            assert!(metrics.contains(name), "/metrics lacks {name}:\n{metrics}");
        }

        let wal = Arc::clone(d.wal.as_ref().unwrap());
        wal.flush_and_notify(); // make the HTTP-created row durable
        wal.simulate_crash(); // ... and kill the log writer
        server.stop();
    }

    // ---- second life: everything durable is back ----
    let d = app
        .deploy_durable(RuntimeOptions::default(), &durability)
        .unwrap();
    let info = d.recovery.as_ref().unwrap();
    assert!(info.replayed_records >= 2, "DDL + insert must replay");
    assert!(info.tables_touched.contains("book"));
    assert_eq!(d.db.table_len("book").unwrap(), 1);
    let home = d.home_url("store").unwrap();
    let resp = d.handle(&WebRequest::get(&home));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("Mission-critical"));
}

/// The replica topology in miniature: a write applied *behind the
/// controller's back* (directly on the database, as a replicated write
/// would be) does not invalidate the bean cache until it is durable —
/// and does as soon as it is.
#[test]
fn bean_cache_invalidation_is_driven_by_the_durable_log() {
    let dir = webml_ratio::wal::TempDir::new("e2e-replica").unwrap();
    let app = fixtures::bookstore();
    let durability = manual(&dir);
    let d = app
        .deploy_durable(
            RuntimeOptions {
                fragment_cache: false, // isolate the bean (second) level
                ..RuntimeOptions::default()
            },
            &durability,
        )
        .unwrap();
    let wal = Arc::clone(d.wal.as_ref().unwrap());
    let home = d.home_url("store").unwrap();

    d.db.execute(
        "INSERT INTO book (title, price) VALUES (:t, :p)",
        &Params::new().bind("t", "First").bind("p", 10.0),
    )
    .unwrap();
    wal.flush_and_notify();

    // Render once: the index unit's bean is now cached.
    let r1 = d.handle(&WebRequest::get(&home));
    assert!(r1.body.contains("First"));

    // A write the controller never sees (replica-applied).
    d.db.execute(
        "INSERT INTO book (title, price) VALUES (:t, :p)",
        &Params::new().bind("t", "Second").bind("p", 20.0),
    )
    .unwrap();

    // Not durable yet → the cached bean must still be served (a crash
    // could still un-happen this write; dropping the bean would be wrong).
    let r2 = d.handle(&WebRequest::get(&home));
    assert!(
        !r2.body.contains("Second"),
        "bean invalidated before the write was durable"
    );

    // Durable → the log observer drops the bean; the next render is fresh.
    wal.flush_and_notify();
    let r3 = d.handle(&WebRequest::get(&home));
    assert!(r3.body.contains("Second"), "{}", r3.body);
    assert!(r3.body.contains("First"));
}
