//! End-to-end integration: model → generation → deployment → HTTP,
//! following hyperlinks the way a browser would (E10: the Fig. 1/2 page).

use webml_ratio::httpd::client;
use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::webratio::{fixtures, seed_data, synthesize, SynthSpec};

/// Extract all application hrefs (ignores static assets).
fn hrefs(body: &str, prefix: &str) -> Vec<String> {
    body.split("href=\"")
        .skip(1)
        .filter_map(|s| s.split('"').next())
        .filter(|h| h.starts_with(prefix))
        .map(str::to_string)
        .collect()
}

#[test]
fn acm_full_navigation_over_http() {
    let app = fixtures::acm_library();
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    fixtures::seed_acm(&d.db, 3, 2, 3);
    let server = d.serve(0, 2).unwrap();
    let addr = server.addr();

    // home → volume page (contextual link with implicit oid transport)
    let home = String::from_utf8(client::get(addr, "/acm_dl/volumes").unwrap().body).unwrap();
    let volume_links = hrefs(&home, "/acm_dl/volume_page");
    assert_eq!(volume_links.len(), 3, "one link per volume");

    let volume = String::from_utf8(client::get(addr, &volume_links[0]).unwrap().body).unwrap();
    // Fig. 2 content: volume data + nested hierarchy + keyword form
    assert!(volume.contains("Volume data"));
    assert!(volume.contains("hierarchy-unit"));
    assert!(volume.contains("<form"));

    // hierarchy leaf → paper details
    let paper_links = hrefs(&volume, "/acm_dl/paper_details");
    assert_eq!(paper_links.len(), 6, "2 issues x 3 papers");
    let paper = String::from_utf8(client::get(addr, &paper_links[0]).unwrap().body).unwrap();
    assert!(paper.contains("Paper data"));

    // entry unit → search results with LIKE
    let results = String::from_utf8(
        client::get(addr, "/acm_dl/search_results?kw=%25Paper%25")
            .unwrap()
            .body,
    )
    .unwrap();
    assert_eq!(hrefs(&results, "/acm_dl/paper_details").len(), 18); // all papers
    server.stop();
}

#[test]
fn every_synthetic_page_serves_on_every_deployment_mode() {
    let spec = SynthSpec::scaled(16, 5);
    for (label, options) in [
        ("default", RuntimeOptions::default()),
        (
            "no caches",
            RuntimeOptions {
                bean_cache: false,
                fragment_cache: false,
                ..RuntimeOptions::default()
            },
        ),
        (
            "runtime styling",
            RuntimeOptions {
                styling: webml_ratio::mvc::StylingMode::Runtime,
                ..RuntimeOptions::default()
            },
        ),
        (
            "app server",
            RuntimeOptions {
                app_server_clones: Some(2),
                ..RuntimeOptions::default()
            },
        ),
    ] {
        let app = synthesize(&spec);
        let d = app.deploy(options).unwrap();
        seed_data(&app, &d.db, 6, 5);
        for p in &d.generated.descriptors.pages {
            let resp = d.handle(&WebRequest::get(&p.url));
            assert_eq!(resp.status, 200, "[{label}] {}: {}", p.url, resp.body);
            assert!(
                resp.body.contains("<!DOCTYPE html>"),
                "[{label}] {} returned non-HTML",
                p.url
            );
        }
    }
}

#[test]
fn deployment_modes_render_identical_content() {
    // in-process and app-server must produce byte-identical pages
    let spec = SynthSpec::scaled(8, 4);
    let app1 = synthesize(&spec);
    let d1 = app1.deploy(RuntimeOptions::default()).unwrap();
    seed_data(&app1, &d1.db, 5, 9);
    let app2 = synthesize(&spec);
    let d2 = app2
        .deploy(RuntimeOptions {
            app_server_clones: Some(3),
            ..RuntimeOptions::default()
        })
        .unwrap();
    seed_data(&app2, &d2.db, 5, 9);
    for p in &d1.generated.descriptors.pages {
        let r1 = d1.handle(&WebRequest::get(&p.url));
        let r2 = d2.handle(&WebRequest::get(&p.url));
        assert_eq!(r1.body, r2.body, "divergence on {}", p.url);
    }
}

#[test]
fn bookstore_create_and_browse_via_http_form_flow() {
    let app = fixtures::bookstore();
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    let server = d.serve(0, 2).unwrap();
    let addr = server.addr();

    // the rendered form points at the operation URL
    let home = String::from_utf8(client::get(addr, "/store/books").unwrap().body).unwrap();
    let action = home
        .split("action=\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("form action");
    assert!(action.starts_with("/op/"));

    // submit the form (GET with query params, as the generated form does)
    let resp = client::get(addr, &format!("{action}?title=Hypertext+Design&price=42.0")).unwrap();
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).unwrap();
    assert!(body.contains("Hypertext Design"), "{body}");

    // the detail link works
    let detail_href = hrefs(&body, "/store/book_detail")
        .first()
        .cloned()
        .expect("detail link");
    let detail = String::from_utf8(client::get(addr, &detail_href).unwrap().body).unwrap();
    assert!(detail.contains("Hypertext Design"));
    assert!(detail.contains("42.0"));
    server.stop();
}

#[test]
fn login_logout_flow_with_sessions() {
    use webml_ratio::relstore::Params;
    // build a tiny app with login/logout operations
    let mut er = webml_ratio::er::ErModel::new();
    let item = er
        .add_entity(
            "Item",
            vec![webml_ratio::er::Attribute::new(
                "name",
                webml_ratio::er::AttrType::String,
            )],
        )
        .unwrap();
    let mut ht = webml_ratio::webml::HypertextModel::new();
    let sv = ht.add_site_view("Main", webml_ratio::webml::Audience::default());
    let home = ht.add_page(sv, None, "Home");
    ht.set_home(sv, home);
    ht.add_index_unit(home, "Items", item);
    let login = ht.add_operation(
        "Login",
        webml_ratio::webml::OperationKind::Login,
        vec!["username".into(), "password".into()],
    );
    ht.link_ok(login, webml_ratio::webml::LinkEnd::Page(home));
    ht.link_ko(login, webml_ratio::webml::LinkEnd::Page(home));
    let logout = ht.add_operation("Logout", webml_ratio::webml::OperationKind::Logout, vec![]);
    ht.link_ok(logout, webml_ratio::webml::LinkEnd::Page(home));
    let app = webml_ratio::webratio::Application::new("auth", er, ht);
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    d.db.execute_script(
        "CREATE TABLE webuser (oid INTEGER PRIMARY KEY AUTOINCREMENT, username TEXT, password TEXT, groupname TEXT);",
    )
    .unwrap();
    d.db.execute(
        "INSERT INTO webuser (username, password, groupname) VALUES ('anna', 'pw', 'staff')",
        &Params::new(),
    )
    .unwrap();

    // establish a session, log in through it
    let r0 = d.handle(&WebRequest::get("/main/home"));
    let sid = r0.set_session.unwrap();
    let login_url = &d.generated.descriptors.operations[0].url;
    let r1 = d.handle(
        &WebRequest::get(login_url)
            .with_session(&sid)
            .with_param("username", "anna")
            .with_param("password", "pw"),
    );
    assert_eq!(r1.status, 200);
    let session = d.controller.sessions.get(&sid).unwrap();
    assert_eq!(session.lock().user, Some(1));
    assert_eq!(session.lock().group.as_deref(), Some("staff"));

    // logout destroys the session
    let logout_url = &d.generated.descriptors.operations[1].url;
    let r2 = d.handle(&WebRequest::get(logout_url).with_session(&sid));
    assert_eq!(r2.status, 200);
    assert!(d.controller.sessions.get(&sid).is_none());

    // bad credentials are a KO, not an error
    let r3 = d.handle(
        &WebRequest::get(login_url)
            .with_param("username", "anna")
            .with_param("password", "wrong"),
    );
    assert_eq!(r3.status, 200); // KO forwards to the home page
}
