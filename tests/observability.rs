//! The observability spine, end to end: a request served over HTTP yields
//! a ≥3-level span tree (`request > page > unit > sql`), `/metrics`
//! reports request, cache and plan-cache counters that match the traffic,
//! and span enter/exit stays balanced under arbitrary interleavings.

use proptest::prelude::*;
use webml_ratio::httpd::client;
use webml_ratio::mvc::RuntimeOptions;
use webml_ratio::webratio::{fixtures, SESSION_COOKIE};

/// One span parsed from the `X-Trace` summary header:
/// `(name, depth, start_us, dur_us)`.
fn parse_trace(summary: &str) -> Vec<(String, usize, u64, u64)> {
    summary
        .split(';')
        .skip(1) // leading request id
        .filter(|s| !s.is_empty())
        .map(|s| {
            let mut f = s.split('~');
            let name = f.next().unwrap().to_string();
            let depth: usize = f.next().unwrap().parse().unwrap();
            let timing = f.next().unwrap();
            let (start, dur) = timing.split_once('+').unwrap();
            (name, depth, start.parse().unwrap(), dur.parse().unwrap())
        })
        .collect()
}

/// Pull the value of a single-sample counter line out of Prometheus text.
fn metric(text: &str, line_start: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(line_start))
        .unwrap_or_else(|| panic!("metric {line_start} missing:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn http_request_produces_span_tree_and_metrics() {
    let app = fixtures::bookstore();
    let options = RuntimeOptions {
        bean_cache: true,
        fragment_cache: true,
        fragment_ttl: std::time::Duration::from_secs(300),
        ..RuntimeOptions::default()
    };
    let d = app.deploy(options).unwrap();
    d.db.execute_script(
        "INSERT INTO book (title, price) VALUES ('TODS primer', 30.0);
         INSERT INTO book (title, price) VALUES ('WebML handbook', 50.0);",
    )
    .unwrap();
    let prepares_after_deploy = d.obs.db.prepares.get();
    assert!(d.db.pinned_plan_count() > 0, "deploy should pin plans");

    let server = d.serve_traced(0, 2).unwrap();
    let addr = server.addr();
    let home = d.home_url("store").unwrap();

    // ---- first request: cold caches --------------------------------------
    let r1 = client::get(addr, &home).unwrap();
    assert_eq!(r1.status, 200);
    let req_id = r1.find_header("X-Request-Id").unwrap();
    assert!(req_id.starts_with("req-"), "{req_id}");
    let trace = r1.find_header("X-Trace").unwrap().to_string();
    let spans = parse_trace(&trace);

    // the tree is request > page:* > unit:* > sql — at least 3 levels deep
    let max_depth = spans.iter().map(|s| s.1).max().unwrap();
    assert!(max_depth >= 3, "depth {max_depth} in {trace}");
    assert_eq!(spans[0].0, "request");
    assert!(spans.iter().any(|s| s.0.starts_with("page:")), "{trace}");
    assert!(spans.iter().any(|s| s.0.starts_with("unit:")), "{trace}");
    assert!(spans.iter().any(|s| s.0 == "sql"), "{trace}");
    assert!(spans.iter().any(|s| s.0 == "render"), "{trace}");

    // timings are plausible and monotone: the root took real time and every
    // child interval nests inside its parent's interval.
    assert!(spans[0].3 > 0, "root duration must be non-zero: {trace}");
    let mut stack: Vec<(usize, u64, u64)> = Vec::new(); // depth, start, end
    for (name, depth, start, dur) in &spans {
        while stack.last().is_some_and(|(d, _, _)| d >= depth) {
            stack.pop();
        }
        if let Some((pd, ps, pe)) = stack.last() {
            assert_eq!(depth - 1, *pd, "{name} skips a level in {trace}");
            assert!(
                ps <= start && start + dur <= *pe,
                "{name} [{start},{}] escapes parent [{ps},{pe}] in {trace}",
                start + dur
            );
        }
        stack.push((*depth, *start, *start + *dur));
    }

    // ---- second request, same session: caches hit ------------------------
    let cookie = r1.find_header("set-cookie").unwrap().to_string();
    let sid = cookie.split(';').next().unwrap().to_string();
    let r2 = client::get_with_headers(addr, &home, &[("Cookie", &sid)]).unwrap();
    assert_eq!(r2.status, 200);

    // ---- /metrics: counters line up with the traffic ---------------------
    let m = client::get(addr, "/metrics").unwrap();
    assert_eq!(m.status, 200);
    assert_eq!(
        m.find_header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(m.body).unwrap();

    // exactly the two page requests went through the controller
    assert_eq!(metric(&text, "webml_requests_total "), 2);
    assert_eq!(metric(&text, "webml_page_requests_total "), 2);
    assert_eq!(metric(&text, "webml_request_latency_us_count "), 2);
    assert_eq!(metric(&text, "webml_errors_total "), 0);

    // request 1 missed both cache levels, request 2 hit them
    assert!(metric(&text, "webml_cache_misses_total{level=\"bean\"}") >= 1);
    assert!(metric(&text, "webml_cache_hits_total{level=\"bean\"}") >= 1);
    assert!(metric(&text, "webml_cache_hits_total{level=\"fragment\"}") >= 1);

    // every runtime statement reused a deploy-time pinned plan: the prepare
    // counter did not move, the plan-cache hit counter did
    assert_eq!(
        metric(&text, "webml_sql_prepares_total "),
        prepares_after_deploy
    );
    assert!(metric(&text, "webml_sql_plan_cache_hits_total ") >= 1);
    assert!(metric(&text, "webml_sql_rows_scanned_total ") >= 1);

    // the query planner reports its access-path choices: every SELECT
    // lands in the per-query rows-scanned histogram, and all four
    // path counters are exposed (values depend on the workload mix)
    assert!(metric(&text, "db_rows_scanned_per_query_count ") >= 1);
    for name in [
        "db_index_probes_total ",
        "db_hash_joins_total ",
        "db_topk_shortcuts_total ",
        "db_scan_fallbacks_total ",
    ] {
        metric(&text, name); // panics with context if the line is missing
    }

    // the unit service-time histogram saw the index unit on both requests
    assert!(
        text.contains("webml_unit_service_time_us_count{kind=\"index\"} 2"),
        "{text}"
    );

    // the JSON trace dump carries the same tree shape
    let sid_header = [("Cookie", sid.as_str())];
    let url = format!(
        "{home}{}__trace=json",
        if home.contains('?') { "&" } else { "?" }
    );
    let j = client::get_with_headers(addr, &url, &sid_header).unwrap();
    let body = String::from_utf8(j.body).unwrap();
    assert!(body.contains("\"name\":\"request\""), "{body}");
    assert!(body.contains("\"name\":\"page:"), "{body}");
    assert!(body.contains("\"name\":\"unit:"), "{body}");

    // cookie sanity: the session flowed, so no second Set-Cookie
    assert!(sid.contains(SESSION_COOKIE));
    assert!(r2.find_header("set-cookie").is_none());

    server.stop();
}

/// The four MVCC metrics render at `/metrics` and move under a concurrent
/// transactional workload: pinned snapshots show in the gauge while open,
/// losing a first-writer-wins race bumps the conflict counter, version
/// chains register in the live-versions gauge, and vacuum reports what it
/// reclaimed.
#[test]
fn mvcc_counters_render_and_move() {
    use webml_ratio::relstore::{Error, Params, Session};

    let app = fixtures::bookstore();
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    d.db.execute_script(
        "INSERT INTO book (title, price) VALUES ('TODS primer', 30.0);
         INSERT INTO book (title, price) VALUES ('WebML handbook', 50.0);",
    )
    .unwrap();
    let server = d.serve_traced(0, 2).unwrap();
    let addr = server.addr();

    // all four families render before any transactional traffic
    let m = client::get(addr, "/metrics").unwrap();
    let before = String::from_utf8(m.body).unwrap();
    for name in [
        "db_write_conflicts_total ",
        "db_vacuum_reclaimed_total ",
        "db_snapshots_active ",
        "db_versions_live ",
    ] {
        metric(&before, name); // panics with context if the line is missing
    }
    let conflicts_before = metric(&before, "db_write_conflicts_total ");
    let reclaimed_before = metric(&before, "db_vacuum_reclaimed_total ");

    // pin a snapshot and lose a first-writer-wins race from another thread
    let mut pinned = Session::new(std::sync::Arc::clone(&d.db));
    pinned.execute("BEGIN", &Params::new()).unwrap();
    pinned
        .execute("UPDATE book SET price = 31.0 WHERE oid = 1", &Params::new())
        .unwrap();
    let mid = {
        let m = client::get(addr, "/metrics").unwrap();
        String::from_utf8(m.body).unwrap()
    };
    assert!(
        metric(&mid, "db_snapshots_active ") >= 1,
        "open transaction must show in the snapshots gauge:\n{mid}"
    );

    let db = std::sync::Arc::clone(&d.db);
    let loser = std::thread::spawn(move || {
        let mut s = Session::new(db);
        s.execute("BEGIN", &Params::new()).unwrap();
        let r = s.execute("UPDATE book SET price = 32.0 WHERE oid = 1", &Params::new());
        assert!(
            matches!(r, Err(Error::WriteConflict { .. })),
            "expected a write conflict, got {r:?}"
        );
        s.execute("ROLLBACK", &Params::new()).unwrap();
    });
    loser.join().unwrap();
    pinned.execute("COMMIT", &Params::new()).unwrap();

    // bury versions, then vacuum them away
    for i in 0..8 {
        d.db.execute(
            "UPDATE book SET price = :p WHERE oid = 2",
            &Params::new().bind("p", 50.0 + f64::from(i)),
        )
        .unwrap();
    }
    let reclaimed = d.db.vacuum();
    assert!(reclaimed >= 1, "vacuum found nothing to reclaim");

    let m = client::get(addr, "/metrics").unwrap();
    let after = String::from_utf8(m.body).unwrap();
    assert!(
        metric(&after, "db_write_conflicts_total ") > conflicts_before,
        "conflict counter did not move:\n{after}"
    );
    assert!(
        metric(&after, "db_vacuum_reclaimed_total ") > reclaimed_before,
        "vacuum counter did not move:\n{after}"
    );
    assert!(
        metric(&after, "db_versions_live ") >= 1,
        "live-versions gauge empty with committed rows present:\n{after}"
    );
    assert!(
        after.contains("# TYPE db_snapshots_active gauge"),
        "{after}"
    );
    assert!(after.contains("# TYPE db_versions_live gauge"), "{after}");

    server.stop();
}

/// The five maintenance-layer metric families render at `/metrics` and
/// move under a maintained durable deployment: a conditional GET whose
/// validator still matches answers 304; a committed write patches the
/// cached bean in place (or counts its fallback) and forces exactly the
/// dirty fragment to re-render.
#[test]
fn maintenance_counters_render_and_move() {
    use webml_ratio::relstore::Params;
    use webml_ratio::webratio::DurabilityConfig;

    let dir = webml_ratio::wal::TempDir::new("obs-maint").unwrap();
    let app = fixtures::bookstore();
    let mut durability = DurabilityConfig::new(dir.path());
    durability.incremental_maintenance = true;
    let options = RuntimeOptions {
        bean_cache: true,
        fragment_cache: true,
        fragment_ttl: std::time::Duration::from_secs(300),
        conditional_get: true,
        ..RuntimeOptions::default()
    };
    let d = app.deploy_durable(options, &durability).unwrap();
    d.db.execute_script("INSERT INTO book (title, price) VALUES ('TODS primer', 30.0);")
        .unwrap();
    d.wal.as_ref().unwrap().flush_and_notify();
    let server = d.serve_traced(0, 2).unwrap();
    let addr = server.addr();
    let home = d.home_url("store").unwrap();

    // cold request: 200 with a strong validator, session minted
    let r1 = client::get(addr, &home).unwrap();
    assert_eq!(r1.status, 200);
    let etag1 = r1.find_header("etag").unwrap().to_string();
    assert!(etag1.starts_with('"') && etag1.ends_with('"'), "{etag1}");
    let cookie = r1.find_header("set-cookie").unwrap().to_string();
    let sid = cookie.split(';').next().unwrap().to_string();

    // same session, matching validator → 304 with an empty body
    let r2 = client::get_with_headers(addr, &home, &[("Cookie", &sid), ("If-None-Match", &etag1)])
        .unwrap();
    assert_eq!(r2.status, 304);
    assert!(r2.body.is_empty(), "304 must not carry a body");

    // a committed write to a non-order column patches the cached index
    // bean in place (the index is title-ordered, so the price edit cannot
    // move the row) …
    d.db.execute("UPDATE book SET price = 99.5 WHERE oid = 1", &Params::new())
        .unwrap();
    d.wal.as_ref().unwrap().flush_and_notify();

    // … so the stale validator now re-validates to a full 200 whose body
    // already shows the patched row (no invalidation round-trip)
    let r3 = client::get_with_headers(addr, &home, &[("Cookie", &sid), ("If-None-Match", &etag1)])
        .unwrap();
    assert_eq!(r3.status, 200);
    let etag3 = r3.find_header("etag").unwrap().to_string();
    assert_ne!(etag1, etag3, "validator must move with the write");
    let body = String::from_utf8(r3.body).unwrap();
    assert!(body.contains("99.5"), "{body}");

    let m = client::get(addr, "/metrics").unwrap();
    let text = String::from_utf8(m.body).unwrap();
    assert!(metric(&text, "cache_patches_applied_total ") >= 1, "{text}");
    assert_eq!(metric(&text, "http_304_total "), 1);
    assert!(metric(&text, "fragment_rerenders_total ") >= 1, "{text}");
    assert!(metric(&text, "maint_apply_micros_count ") >= 1, "{text}");
    // the fallback family renders even when empty (total line or labels)
    assert!(text.contains("cache_patch_fallbacks_total"), "{text}");

    server.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any interleaving of span enters and exits — including abandoned
    /// (never-exited) spans — finishing the context leaves a balanced tree
    /// whose depth never exceeds the deepest live nesting.
    #[test]
    fn span_enter_exit_is_balanced(ops in proptest::collection::vec((any::<bool>(), 0u8..6), 0..64)) {
        let mut ctx = webml_ratio::obs::RequestContext::new("prop");
        let mut live = Vec::new();
        let mut depth = 0usize;
        let mut deepest = 0usize;
        for (enter, name) in ops {
            if enter {
                live.push(ctx.enter(format!("s{name}")));
                depth += 1;
                deepest = deepest.max(depth);
            } else if let Some(token) = live.pop() {
                ctx.exit(token);
                depth = depth.saturating_sub(1);
            }
        }
        let total = ctx.finish();
        prop_assert!(ctx.balanced(), "unbalanced after finish");
        prop_assert!(ctx.max_depth() <= deepest, "depth {} > {}", ctx.max_depth(), deepest);
        // finish() closes the root; a second finish must not change it
        prop_assert_eq!(ctx.finish(), total);
        // the summary mentions the root and parses back span-per-span
        let summary = ctx.trace_summary();
        prop_assert!(summary.contains("request"));
    }
}
