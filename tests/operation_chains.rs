//! Operation chains: the OK link of one operation can target another
//! operation, forming the chains WebML uses for composite updates
//! ("create then notify", "connect then redirect"). The Controller
//! follows OK/KO forwards through the action mappings until a page
//! renders.

use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::webml::{Audience, HypertextModel, LinkEnd, OperationKind};
use webml_ratio::webratio::Application;

fn chained_app() -> Application {
    let mut er = webml_ratio::er::ErModel::new();
    let order = er
        .add_entity(
            "Order",
            vec![
                webml_ratio::er::Attribute::new("item", webml_ratio::er::AttrType::String)
                    .required(),
            ],
        )
        .unwrap();
    let mut ht = HypertextModel::new();
    let sv = ht.add_site_view("Shop", Audience::default());
    let home = ht.add_page(sv, None, "Orders");
    ht.set_home(sv, home);
    ht.add_index_unit(home, "All orders", order);

    // chain: CreateOrder --OK--> NotifyWarehouse --OK--> Orders page
    let create = ht.add_operation(
        "CreateOrder",
        OperationKind::Create { entity: order },
        vec!["item".into()],
    );
    let notify = ht.add_operation("NotifyWarehouse", OperationKind::SendMail, vec![]);
    ht.link_ok(create, LinkEnd::Operation(notify));
    ht.link_ko(create, LinkEnd::Page(home));
    ht.link_ok(notify, LinkEnd::Page(home));
    Application::new("chains", er, ht)
}

#[test]
fn ok_chain_executes_both_operations_then_renders() {
    let app = chained_app();
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    let create_url = d.generated.descriptors.operations[0].url.clone();
    let resp = d.handle(
        &WebRequest::get(&create_url)
            .with_param("item", "Aspire laptop")
            .with_param("to", "warehouse@example.org")
            .with_param("subject", "new order"),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    // the page at the end of the chain shows the created order
    assert!(resp.body.contains("Aspire laptop"));
    // the sendmail step actually ran
    let outbox = d.controller.ops.outbox.lock();
    assert_eq!(outbox.len(), 1);
    assert_eq!(outbox[0].to, "warehouse@example.org");
    // two forwards: create→notify, notify→page
    assert_eq!(d.controller.obs().forwards.get(), 2);
}

#[test]
fn ko_breaks_the_chain() {
    let app = chained_app();
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    let create_url = d.generated.descriptors.operations[0].url.clone();
    // force a KO with a unique-index violation on the second insert
    let table = d.generated.descriptors.operations[0]
        .entity_table
        .clone()
        .unwrap();
    d.db.execute_script(&format!("CREATE UNIQUE INDEX ux_item ON {table} (item);"))
        .unwrap();
    let before_mail = d.controller.ops.outbox.lock().len();
    d.handle(&WebRequest::get(&create_url).with_param("item", "dup"));
    let resp = d.handle(&WebRequest::get(&create_url).with_param("item", "dup"));
    assert_eq!(resp.status, 200); // KO forwarded to the page
    assert!(resp.body.contains("unique violation") || resp.body.contains("dup"));
    // the second (failing) create did not reach the notify step
    let after_mail = d.controller.ops.outbox.lock().len();
    assert_eq!(after_mail - before_mail, 1, "KO leaked into the chain");
}

#[test]
fn forward_loops_are_detected() {
    // a pathological chain: operation forwarding to itself
    let mut er = webml_ratio::er::ErModel::new();
    er.add_entity("X", vec![]).unwrap();
    let mut ht = HypertextModel::new();
    let sv = ht.add_site_view("Loop", Audience::default());
    let home = ht.add_page(sv, None, "Home");
    ht.set_home(sv, home);
    let op = ht.add_operation("Echo", OperationKind::SendMail, vec![]);
    let (op_end, _) = (LinkEnd::Operation(op), ());
    ht.link_ok(op, op_end);
    ht.link_ko(op, LinkEnd::Page(home));
    let app = Application::new("loopy", er, ht);
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    let url = d.generated.descriptors.operations[0].url.clone();
    let resp = d.handle(&WebRequest::get(&url));
    assert_eq!(resp.status, 500);
    assert!(resp.body.contains("loop"), "{}", resp.body);
}
