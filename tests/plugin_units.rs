//! §7 plug-in units end to end: "we have added to WebRatio the notion of
//! 'plug-in units', i.e. of new components, which can be easily plugged
//! into the design and runtime environment ... Plug-in units are being
//! used for adding to WebRatio content and operation units interacting
//! with Web services and implementing workflow functionalities."
//!
//! We define a custom "weather" content unit and a custom "approve"
//! workflow operation, plug both into the runtime, and serve them.

use std::sync::Arc;
use webml_ratio::mvc::{
    Controller, MvcError, OpResult, OperationHandler, ParamMap, RuntimeOptions, ServiceRegistry,
    UnitBean, UnitService, WebRequest,
};
use webml_ratio::presentation::DeviceRegistry;
use webml_ratio::relstore::{Database, Params};
use webml_ratio::webml::{Audience, HypertextModel, LinkEnd, OperationKind, UnitKind};
use webml_ratio::webratio::Application;

/// A plug-in content unit simulating a Web-service call (§7's example of
/// "content units interacting with Web services").
struct WeatherUnit;

impl UnitService for WeatherUnit {
    fn compute(
        &self,
        _desc: &webml_ratio::descriptors::UnitDescriptor,
        params: &ParamMap,
        _db: &Database,
    ) -> Result<UnitBean, MvcError> {
        let city = params
            .get("city")
            .map(|v| v.render())
            .unwrap_or_else(|| "Como".to_string());
        Ok(UnitBean::Raw(format!(
            "<div class=\"weather\">Weather in {city}: 23°C, sunny</div>"
        )))
    }
}

/// A plug-in workflow operation (§7's "operation units ... implementing
/// workflow functionalities").
struct ApproveStep;

impl OperationHandler for ApproveStep {
    fn execute(
        &self,
        _desc: &webml_ratio::descriptors::OperationDescriptor,
        params: &ParamMap,
        db: &Database,
    ) -> Result<OpResult, MvcError> {
        let id = params
            .get("request_id")
            .cloned()
            .ok_or(MvcError::MissingParameter {
                unit: "approve".into(),
                param: "request_id".into(),
            })?;
        let n = db
            .execute(
                "UPDATE request SET state = 'approved' WHERE oid = :id",
                &Params::new().bind("id", id),
            )
            .map_err(|e| MvcError::Database(e.to_string()))?
            .affected();
        Ok(OpResult {
            ok: n == 1,
            outputs: ParamMap::new(),
            message: Some(if n == 1 { "approved" } else { "not found" }.into()),
        })
    }
}

fn build_app() -> Application {
    let mut er = webml_ratio::er::ErModel::new();
    let request = er
        .add_entity(
            "Request",
            vec![
                webml_ratio::er::Attribute::new("title", webml_ratio::er::AttrType::String),
                webml_ratio::er::Attribute::new("state", webml_ratio::er::AttrType::String),
            ],
        )
        .unwrap();
    let mut ht = HypertextModel::new();
    let sv = ht.add_site_view("Workflow", Audience::default());
    let home = ht.add_page(sv, None, "Dashboard");
    ht.set_home(sv, home);
    ht.add_index_unit(home, "Pending requests", request);
    // the plug-in content unit, declared in the model like any other unit
    ht.add_unit(
        home,
        "Local weather",
        UnitKind::PlugIn {
            type_name: "weather".into(),
        },
        None,
    );
    let approve = ht.add_operation(
        "ApproveRequest",
        OperationKind::Custom {
            type_name: "workflow-approve".into(),
        },
        vec!["request_id".into()],
    );
    ht.link_ok(approve, LinkEnd::Page(home));
    ht.link_ko(approve, LinkEnd::Page(home));
    Application::new("workflow", er, ht)
}

#[test]
fn plugin_unit_and_operation_serve_end_to_end() {
    let app = build_app();
    let d = app
        .deploy_with(|generated, db| {
            let mut registry = ServiceRegistry::standard();
            registry.register("weather", "weather", Arc::new(WeatherUnit));
            let mut c = Controller::with_registry(
                generated.descriptors,
                generated.skeletons,
                db,
                RuntimeOptions::default(),
                registry,
                DeviceRegistry::standard(),
            );
            c.ops.register("workflow-approve", Arc::new(ApproveStep));
            c
        })
        .unwrap();
    d.db.execute(
        "INSERT INTO request (title, state) VALUES ('Buy servers', 'pending')",
        &Params::new(),
    )
    .unwrap();

    // the plug-in unit renders inside the generated page
    let resp = d.handle(&WebRequest::get("/workflow/dashboard").with_param("city", "Milano"));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("Weather in Milano"));
    assert!(resp.body.contains("Buy servers"));

    // the plug-in operation executes and forwards
    let op_url = d.generated.descriptors.operations[0].url.clone();
    let resp = d.handle(&WebRequest::get(&op_url).with_param("request_id", "1"));
    assert_eq!(resp.status, 200);
    let state =
        d.db.query("SELECT state FROM request WHERE oid = 1", &Params::new())
            .unwrap();
    assert_eq!(state.first("state").unwrap().render(), "approved");

    // unknown request id → KO path (still a 200 page via the KO forward)
    let resp = d.handle(&WebRequest::get(&op_url).with_param("request_id", "99"));
    assert_eq!(resp.status, 200);
}

#[test]
fn plugin_descriptor_uses_type_name() {
    let app = build_app();
    let g = app.generate().unwrap();
    let plug = g
        .descriptors
        .units
        .iter()
        .find(|u| u.unit_type == "weather")
        .expect("plug-in descriptor");
    assert!(plug.queries.is_empty());
    let op = &g.descriptors.operations[0];
    assert_eq!(op.op_type, "workflow-approve");
    assert!(op.sql.is_none());
}
