//! §5 presentation pipeline invariants at the application level.

use webml_ratio::mvc::{Controller, RuntimeOptions, ServiceRegistry, StylingMode, WebRequest};
use webml_ratio::presentation::{DeviceRegistry, PageRule, RuleSet};
use webml_ratio::webratio::{fixtures, seed_data, synthesize, SynthSpec};

/// Compile-time and runtime styling must render byte-identical pages for
/// the same device — the §5 trade-off is purely about *when* the
/// transformation runs.
#[test]
fn compile_time_and_runtime_styling_agree() {
    let spec = SynthSpec::scaled(10, 4);
    let mut bodies = Vec::new();
    for mode in [StylingMode::CompileTime, StylingMode::Runtime] {
        let app = synthesize(&spec);
        let d = app
            .deploy(RuntimeOptions {
                styling: mode,
                bean_cache: false,
                ..RuntimeOptions::default()
            })
            .unwrap();
        seed_data(&app, &d.db, 4, 1);
        let mut all = String::new();
        for p in &d.generated.descriptors.pages {
            let r = d.handle(&WebRequest::get(&p.url));
            assert_eq!(r.status, 200);
            all.push_str(&r.body);
        }
        bodies.push(all);
    }
    assert_eq!(bodies[0], bodies[1]);
}

/// Layout-specific page rules are selected by the page's layout category.
#[test]
fn layout_specific_page_rules_apply() {
    let app = fixtures::acm_library(); // Volume Page is two-columns
    let mut rules = RuleSet::default_desktop("custom");
    rules.page_rules.insert(
        0,
        PageRule {
            matches_layout: "two-columns".into(),
            css_href: "/static/two.css".into(),
            banner: "TWO COLUMN BANNER".into(),
            footer: String::new(),
            grid_class: "grid-2".into(),
            with_navigation: true,
        },
    );
    let mut devices = DeviceRegistry::new();
    devices.set_default(rules);
    let d = app
        .deploy_with(|g, db| {
            Controller::with_registry(
                g.descriptors,
                g.skeletons,
                db,
                RuntimeOptions::default(),
                ServiceRegistry::standard(),
                devices,
            )
        })
        .unwrap();
    fixtures::seed_acm(&d.db, 1, 1, 1);

    let two_col = d.handle(&WebRequest::get("/acm_dl/volume_page").with_param("volume", "1"));
    assert!(two_col.body.contains("TWO COLUMN BANNER"));
    assert!(two_col.body.contains("grid-2"));

    // single-column pages fall back to the `*` rule
    let home = d.handle(&WebRequest::get("/acm_dl/volumes"));
    assert!(!home.body.contains("TWO COLUMN BANNER"));
    assert!(home.body.contains("WebML Application"));
}

/// Content is HTML-escaped everywhere user data flows into markup.
#[test]
fn injection_attempts_are_escaped() {
    let app = fixtures::bookstore();
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    let op = d.generated.descriptors.operations[0].url.clone();
    let evil = "<script>alert('xss')</script>";
    let r = d.handle(
        &WebRequest::get(&op)
            .with_param("title", evil)
            .with_param("price", "1.0"),
    );
    assert_eq!(r.status, 200);
    assert!(
        !r.body.contains("<script>"),
        "unescaped injection:\n{}",
        r.body
    );
    assert!(r.body.contains("&lt;script&gt;"));
}

/// The generated CSS references exactly the classes the rendered markup
/// uses for every unit kind.
#[test]
fn stylesheet_covers_rendered_classes() {
    use webml_ratio::presentation::Stylesheet;
    let rules = RuleSet::default_desktop("check");
    let kinds = [
        "data",
        "index",
        "multidata",
        "multichoice",
        "scroller",
        "entry",
        "hierarchy",
    ];
    let css = Stylesheet::for_rule_set(&rules, &kinds).render();
    for k in kinds {
        assert!(
            css.contains(&format!(".unit-{k}")),
            "missing module for {k}"
        );
    }
    assert!(css.contains(".banner"));
    assert!(css.contains("nav.landmarks"));
}
