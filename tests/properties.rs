//! Cross-crate property tests: for arbitrary model shapes, the whole
//! pipeline (synthesis → validation → generation → deployment → request
//! handling) upholds its invariants.

use proptest::prelude::*;
use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::webratio::{seed_data, synthesize, SynthSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Model synthesis hits the requested dimensions exactly and the
    /// result always validates.
    #[test]
    fn synthetic_models_hit_dimensions_and_validate(
        pages in 2usize..30,
        upp in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut spec = SynthSpec::scaled(pages, upp);
        spec.seed = seed;
        let app = synthesize(&spec);
        let stats = app.hypertext.stats();
        prop_assert_eq!(stats.pages, pages);
        prop_assert_eq!(stats.units, pages * upp);
        let errors: Vec<_> = app
            .validate()
            .into_iter()
            .filter(|i| i.severity == webml_ratio::webml::Severity::Error)
            .collect();
        prop_assert!(errors.is_empty(), "{:?}", errors);
    }

    /// Every generated SQL statement parses, every page's computation
    /// order respects its dataflow edges, and the controller maps every
    /// page and operation.
    #[test]
    fn generated_artifacts_are_internally_consistent(
        pages in 2usize..20,
        upp in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut spec = SynthSpec::scaled(pages, upp);
        spec.seed = seed;
        let app = synthesize(&spec);
        let g = app.generate().unwrap();
        // all SQL parses
        for u in &g.descriptors.units {
            for q in &u.queries {
                webml_ratio::relstore::parse_statement(&q.sql)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", u.id, q.sql));
            }
        }
        for o in &g.descriptors.operations {
            if let Some(sql) = &o.sql {
                webml_ratio::relstore::parse_statement(sql).unwrap();
            }
        }
        webml_ratio::relstore::parse_script(&g.ddl).unwrap();
        // topological order: every edge source precedes its target
        for p in &g.descriptors.pages {
            for e in &p.edges {
                let from = p.units.iter().position(|u| u == &e.from).unwrap();
                let to = p.units.iter().position(|u| u == &e.to).unwrap();
                prop_assert!(from < to, "page {}: edge {} -> {}", p.id, e.from, e.to);
            }
            prop_assert!(g.descriptors.controller.resolve(&p.url).is_some());
        }
        for o in &g.descriptors.operations {
            prop_assert!(g.descriptors.controller.resolve(&o.url).is_some());
        }
        // every unit referenced by a page exists, and vice versa
        for p in &g.descriptors.pages {
            for uid in &p.units {
                prop_assert!(g.descriptors.unit(uid).is_some());
            }
        }
        for u in &g.descriptors.units {
            prop_assert!(g.descriptors.page(&u.page).is_some());
        }
        // skeleton slots match page units exactly
        for sk in &g.skeletons {
            let p = g.descriptors.page(&sk.page).unwrap();
            prop_assert_eq!(&sk.root.unit_slots(), &p.units);
        }
    }

    /// Deployed applications answer 200 on every page with well-formed
    /// HTML, under any cache configuration.
    #[test]
    fn deployed_pages_always_render(
        pages in 2usize..10,
        upp in 1usize..6,
        bean in any::<bool>(),
        fragment in any::<bool>(),
        rows in 0usize..8,
    ) {
        let spec = SynthSpec::scaled(pages, upp);
        let app = synthesize(&spec);
        let d = app
            .deploy(RuntimeOptions {
                bean_cache: bean,
                fragment_cache: fragment,
                ..RuntimeOptions::default()
            })
            .unwrap();
        seed_data(&app, &d.db, rows, 3);
        for p in &d.generated.descriptors.pages {
            let resp = d.handle(&WebRequest::get(&p.url));
            prop_assert_eq!(resp.status, 200, "{}: {}", &p.url, &resp.body);
            // well-formed chrome
            prop_assert!(resp.body.contains("<html>"));
            prop_assert!(resp.body.contains("</html>"));
            // no unresolved custom tags leak to the browser
            prop_assert!(!resp.body.contains("webml:"));
        }
    }

    /// Project persistence is lossless: save → load → identical models and
    /// identical generated artifacts, for any synthetic model.
    #[test]
    fn project_files_round_trip(pages in 2usize..15, upp in 1usize..6, seed in 0u64..500) {
        let mut spec = SynthSpec::scaled(pages, upp);
        spec.seed = seed;
        let app = synthesize(&spec);
        let doc = app.save();
        let loaded = webml_ratio::webratio::Application::load(&doc).unwrap();
        prop_assert_eq!(&loaded.er, &app.er);
        prop_assert_eq!(&loaded.hypertext, &app.hypertext);
        let a = app.generate().unwrap();
        let b = loaded.generate().unwrap();
        prop_assert_eq!(a.descriptors, b.descriptors);
        prop_assert_eq!(a.ddl, b.ddl);
    }

    /// Regeneration is idempotent: generating twice from the same model
    /// yields identical artifacts.
    #[test]
    fn generation_is_idempotent(pages in 2usize..12, seed in 0u64..500) {
        let mut spec = SynthSpec::scaled(pages, 4);
        spec.seed = seed;
        let app = synthesize(&spec);
        let a = app.generate().unwrap();
        let b = app.generate().unwrap();
        prop_assert_eq!(a.descriptors, b.descriptors);
        prop_assert_eq!(a.ddl, b.ddl);
    }
}
