//! Protected site views (§8: Acer-Euro's 21 non-public site views were
//! "accessible only through the corporate VPN"): pages of a protected
//! site view answer 401 until the session authenticates via a login
//! operation.

use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::relstore::Params;
use webml_ratio::webml::{Audience, HypertextModel, LinkEnd, OperationKind};
use webml_ratio::webratio::Application;

fn app_with_protected_view() -> Application {
    let mut er = webml_ratio::er::ErModel::new();
    let product = er
        .add_entity(
            "Product",
            vec![webml_ratio::er::Attribute::new(
                "name",
                webml_ratio::er::AttrType::String,
            )],
        )
        .unwrap();
    let mut ht = HypertextModel::new();

    // public B2C view with the login form
    let b2c = ht.add_site_view("Public", Audience::default());
    let home = ht.add_page(b2c, None, "Home");
    ht.set_home(b2c, home);
    ht.add_index_unit(home, "Catalog", product);

    // protected product-manager view
    let b2b = ht.add_site_view(
        "Managers",
        Audience {
            group: "product-managers".into(),
            device: "desktop".into(),
        },
    );
    ht.protect_site_view(b2b);
    let admin = ht.add_page(b2b, None, "Admin");
    ht.set_home(b2b, admin);
    ht.add_multidata_unit(admin, "All products", product);

    let login = ht.add_operation(
        "Login",
        OperationKind::Login,
        vec!["username".into(), "password".into()],
    );
    ht.link_ok(login, LinkEnd::Page(admin));
    ht.link_ko(login, LinkEnd::Page(home));
    Application::new("protected", er, ht)
}

#[test]
fn protected_pages_require_login() {
    let app = app_with_protected_view();
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    d.db.execute_script(
        "CREATE TABLE webuser (oid INTEGER PRIMARY KEY AUTOINCREMENT, username TEXT, password TEXT, groupname TEXT);",
    )
    .unwrap();
    d.db.execute(
        "INSERT INTO webuser (username, password, groupname) VALUES ('pm', 'pw', 'product-managers')",
        &Params::new(),
    )
    .unwrap();

    // the public view serves anonymously
    let r = d.handle(&WebRequest::get("/public/home"));
    assert_eq!(r.status, 200);
    let sid = r.set_session.unwrap();

    // the protected view refuses the anonymous session
    let r = d.handle(&WebRequest::get("/managers/admin").with_session(&sid));
    assert_eq!(r.status, 401, "{}", r.body);

    // wrong credentials: KO link forwards to the public home (200), and
    // the protected page still refuses
    let login_url = d.generated.descriptors.operations[0].url.clone();
    let r = d.handle(
        &WebRequest::get(&login_url)
            .with_session(&sid)
            .with_param("username", "pm")
            .with_param("password", "nope"),
    );
    assert_eq!(r.status, 200);
    assert_eq!(
        d.handle(&WebRequest::get("/managers/admin").with_session(&sid))
            .status,
        401
    );

    // correct credentials: OK link forwards INTO the protected view
    let r = d.handle(
        &WebRequest::get(&login_url)
            .with_session(&sid)
            .with_param("username", "pm")
            .with_param("password", "pw"),
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("All products"));

    // and direct access now succeeds
    let r = d.handle(&WebRequest::get("/managers/admin").with_session(&sid));
    assert_eq!(r.status, 200);
}

#[test]
fn protection_flag_flows_through_descriptors() {
    let app = app_with_protected_view();
    let g = app.generate().unwrap();
    let admin = g.descriptors.page_by_url("/managers/admin").unwrap();
    assert!(admin.protected);
    let home = g.descriptors.page_by_url("/public/home").unwrap();
    assert!(!home.protected);
    // XML round trip preserves it
    let files = g.descriptors.to_files();
    let loaded = webml_ratio::descriptors::DescriptorSet::from_files(&files).unwrap();
    assert!(loaded.page_by_url("/managers/admin").unwrap().protected);
}
