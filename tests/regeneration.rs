//! Integration tests of the regeneration workflows: §6 descriptor
//! overrides and §7 topology changes.

use webml_ratio::codegen::{self, regenerate, template_based_artifacts};
use webml_ratio::webml::LinkEnd;
use webml_ratio::webratio::{synthesize, SynthSpec};

#[test]
fn optimized_descriptors_survive_any_model_change() {
    let spec = SynthSpec::scaled(20, 4);
    let mut app = synthesize(&spec);
    let g1 = app.generate().unwrap();
    let mut current = g1.descriptors.clone();

    // optimise three descriptors
    let ids: Vec<String> = current.units.iter().take(3).map(|u| u.id.clone()).collect();
    for id in &ids {
        current
            .unit_mut(id)
            .unwrap()
            .override_query("SELECT 1 AS tuned");
    }

    // a sequence of model edits, regenerating after each
    for round in 0..3 {
        let (target, _) = app.hypertext.pages().nth(round + 2).unwrap();
        let (lid, _) = app
            .hypertext
            .links()
            .filter(|(_, l)| l.kind == webml_ratio::webml::LinkKind::Contextual)
            .nth(round)
            .expect("a contextual link to retarget");
        app.hypertext.retarget_link(lid, LinkEnd::Page(target));
        let (g, preserved) = regenerate(&app.er, &app.mapping, &app.hypertext, &current).unwrap();
        assert_eq!(preserved.len(), 3, "round {round}");
        current = g.descriptors;
        for id in &ids {
            let u = current.unit(id).unwrap();
            assert!(u.optimized);
            assert_eq!(u.main_query().unwrap().sql, "SELECT 1 AS tuned");
        }
    }
}

#[test]
fn service_overrides_survive_regeneration() {
    let spec = SynthSpec::scaled(10, 3);
    let app = synthesize(&spec);
    let g1 = app.generate().unwrap();
    let mut current = g1.descriptors.clone();
    let victim = current.units[1].id.clone();
    current.unit_mut(&victim).unwrap().service = "HandRolledService".into();
    let (g2, preserved) = regenerate(&app.er, &app.mapping, &app.hypertext, &current).unwrap();
    assert_eq!(preserved, vec![victim.clone()]);
    assert_eq!(
        g2.descriptors.unit(&victim).unwrap().service,
        "HandRolledService"
    );
}

#[test]
fn controller_config_tracks_topology() {
    let spec = SynthSpec::scaled(12, 3);
    let mut app = synthesize(&spec);
    let g1 = app.generate().unwrap();

    // re-link: move a contextual link to a new page
    let (new_target, _) = app.hypertext.pages().last().unwrap();
    let (lid, _) = app
        .hypertext
        .links()
        .find(|(_, l)| l.kind == webml_ratio::webml::LinkKind::Contextual)
        .unwrap();
    app.hypertext.retarget_link(lid, LinkEnd::Page(new_target));
    let g2 = app.generate().unwrap();

    // the mapping set itself is stable (paths don't change when links move)
    assert_eq!(
        g1.descriptors.controller.mappings.len(),
        g2.descriptors.controller.mappings.len()
    );
    // but some page descriptor's links changed
    let changed = g1
        .descriptors
        .pages
        .iter()
        .zip(&g2.descriptors.pages)
        .filter(|(a, b)| a != b)
        .count();
    assert!(changed >= 1);
}

#[test]
fn template_based_baseline_embeds_everything() {
    // the §2 critique made concrete: every template contains request
    // decoding, inline SQL, and hard-wired URLs
    let spec = SynthSpec::scaled(8, 3);
    let app = synthesize(&spec);
    let g = app.generate().unwrap();
    let templates = template_based_artifacts(&g.descriptors);
    assert_eq!(templates.len(), 8);
    for (path, src) in &templates {
        assert!(path.ends_with(".jsp"));
        assert!(src.contains("executeQuery"), "no inline SQL in {path}");
        assert!(src.contains("<html>"), "no markup in {path}");
    }
    // at least one template hard-wires a URL of another page
    let any_hardwired = g
        .descriptors
        .pages
        .iter()
        .any(|p| codegen::artifacts_referencing(&templates, &p.url) > 0);
    assert!(any_hardwired);
}

#[test]
fn ddl_regeneration_is_stable_under_hypertext_changes() {
    // hypertext edits must never change the data tier
    let spec = SynthSpec::scaled(10, 3);
    let mut app = synthesize(&spec);
    let ddl1 = app.generate().unwrap().ddl;
    let (target, _) = app.hypertext.pages().last().unwrap();
    let (lid, _) = app
        .hypertext
        .links()
        .find(|(_, l)| l.kind == webml_ratio::webml::LinkKind::Contextual)
        .unwrap();
    app.hypertext.retarget_link(lid, LinkEnd::Page(target));
    let ddl2 = app.generate().unwrap().ddl;
    assert_eq!(ddl1, ddl2);
}
