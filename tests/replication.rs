//! Replication + partitioning, end to end: log-shipping replicas behind
//! the router (read-your-writes, staleness redirects), idempotent
//! convergence under duplicated/overlapping batch delivery, replica crash
//! recovery from its own snapshot + log catch-up, model-derived shard
//! routing, and the leader's vacuum horizon pinned to the slowest replica.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use webml_ratio::mvc::WebRequest;
use webml_ratio::relstore::{Database, Params, Value};
use webml_ratio::repl::{deploy_replicated, Replica};
use webml_ratio::wal::{TempDir, Wal, WalConfig};
use webml_ratio::webratio::{fixtures, DeployOptions, DurabilityConfig};

/// Manual-flush durability: a huge group-commit window, so each test
/// decides exactly when batches become durable (= visible to replicas).
fn manual(dir: &TempDir) -> DurabilityConfig {
    let mut d = DurabilityConfig::new(dir.path());
    d.group_commit_window = Duration::from_secs(3600);
    d
}

#[test]
fn router_reads_from_replicas_and_never_breaks_read_your_writes() {
    let dir = TempDir::new("repl-router").unwrap();
    let app = fixtures::bookstore();
    let rd = deploy_replicated(
        &app,
        DeployOptions::default().with_replicas(2),
        &manual(&dir),
    )
    .expect("replicated deploy");
    let wal = Arc::clone(rd.leader.wal.as_ref().unwrap());
    let repl = Arc::clone(&rd.leader.obs.repl);

    // schema (logged DDL) becomes durable → replicas bootstrap it
    wal.flush_and_notify();
    for r in &rd.replicas {
        assert!(r.applied_lsn() > 0, "replica missed the DDL batch");
        assert!(
            !r.db().table_names().is_empty(),
            "schema must arrive through the log stream"
        );
    }

    // an anonymous read is served by a replica, not the leader
    let home = rd.leader.home_url("store").unwrap();
    let r0 = rd.handle(&WebRequest::get(&home));
    assert_eq!(r0.status, 200, "{}", r0.body);
    let replica_reads: u64 = (0..2)
        .map(|i| repl.reads_for(&format!("replica-{i}")))
        .sum();
    assert_eq!(replica_reads, 1, "read should land on a replica");
    assert_eq!(repl.reads_for("leader"), 0);

    // a write routes to the leader and stamps the session's write LSN
    let op_url = rd.leader.generated.descriptors.operations[0].url.clone();
    let resp = rd.handle(
        &WebRequest::get(&op_url)
            .with_param("title", "Fresh ink")
            .with_param("price", "9.0"),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    let sid = resp.set_session.expect("operation starts a session");

    // the write is not durable yet, so both replicas lag the session's
    // floor: the read must redirect to the leader — and SEE the write
    let before = repl.stale_redirects.get();
    let r1 = rd.handle(&WebRequest::get(&home).with_session(&sid));
    assert!(
        r1.body.contains("Fresh ink"),
        "session read its own write nowhere: {}",
        r1.body
    );
    assert!(
        repl.stale_redirects.get() > before,
        "lagging replicas must redirect the session to the leader"
    );
    assert_eq!(repl.reads_for("leader"), 1);

    // once durable and applied, the same session reads from a replica
    wal.flush_and_notify();
    let replica_reads_before: u64 = (0..2)
        .map(|i| repl.reads_for(&format!("replica-{i}")))
        .sum();
    let r2 = rd.handle(&WebRequest::get(&home).with_session(&sid));
    assert!(r2.body.contains("Fresh ink"), "{}", r2.body);
    let replica_reads_after: u64 = (0..2)
        .map(|i| repl.reads_for(&format!("replica-{i}")))
        .sum();
    assert_eq!(replica_reads_after, replica_reads_before + 1);
    assert_eq!(repl.reads_for("leader"), 1, "no second leader read");

    // the whole story is observable
    let metrics = rd.leader.obs.render_prometheus();
    for family in [
        "repl_reads_total{target=\"replica-0\"}",
        "repl_applied_lsn{replica=\"replica-1\"}",
        "repl_lag_lsn{replica=\"replica-0\"}",
        "repl_stale_redirects_total",
    ] {
        assert!(metrics.contains(family), "/metrics lacks {family}");
    }
}

#[test]
fn replica_crashes_mid_stream_and_recovers_from_snapshot_plus_catchup() {
    let dir = TempDir::new("repl-crash").unwrap();
    let app = fixtures::bookstore();
    let d = app
        .deploy_durable(Default::default(), &manual(&dir))
        .unwrap();
    let wal = Arc::clone(d.wal.as_ref().unwrap());
    let counters = Arc::clone(&d.obs.repl);

    for i in 0..3 {
        d.db.execute(
            "INSERT INTO book (title, price) VALUES (:t, :p)",
            &Params::new().bind("t", format!("early {i}")).bind("p", 5.0),
        )
        .unwrap();
    }
    wal.flush_and_notify();

    // first life: bootstrap a replica from the durable log, snapshot it
    let snap_path = Replica::snapshot_path(dir.path(), "r0");
    let mid_lsn = {
        let db = Arc::new(Database::new());
        let info = wal.recover_into(&db).unwrap();
        let replica = Replica::new("r0", db, info.last_lsn, Arc::clone(&counters));
        let lsn = replica.snapshot_to(&snap_path).unwrap();
        assert_eq!(lsn, info.last_lsn);
        lsn
        // replica dropped here = crash mid-stream, before the tail below
    };

    // the leader keeps writing past the replica's snapshot
    for i in 0..4 {
        d.db.execute(
            "INSERT INTO book (title, price) VALUES (:t, :p)",
            &Params::new().bind("t", format!("late {i}")).bind("p", 7.0),
        )
        .unwrap();
    }
    d.db.execute(
        "DELETE FROM book WHERE title = :t",
        &Params::new().bind("t", "early 1"),
    )
    .unwrap();
    wal.flush_and_notify();

    // second life: restore from the replica's OWN snapshot, then catch up
    // only the tail via replay_from — no full re-ship needed
    let (db2, restored_lsn) = Replica::restore_db(&snap_path).unwrap();
    assert_eq!(restored_lsn, mid_lsn);
    let revived = Replica::new("r0", db2, restored_lsn, Arc::clone(&counters));
    let caught_up = wal
        .replay_from(
            restored_lsn,
            Arc::clone(&revived) as Arc<dyn webml_ratio::wal::LogObserver>,
        )
        .unwrap();
    assert!(caught_up > mid_lsn, "tail batches must replay");
    assert_eq!(
        revived.db().dump(),
        d.db.dump(),
        "recovered replica must be byte-identical to the leader"
    );
}

#[test]
fn sharded_store_routes_unit_queries_to_one_shard_and_fans_out_the_rest() {
    let dir = TempDir::new("repl-shards").unwrap();
    let app = fixtures::acm_library();
    let rd = deploy_replicated(&app, DeployOptions::default().with_shards(3), &manual(&dir))
        .expect("sharded deploy");
    let sharded = rd.sharded.as_ref().expect("shards requested");
    let repl = Arc::clone(&rd.leader.obs.repl);

    // the model decided the keys: children co-partition with their parent
    assert_eq!(sharded.shard_key("issue"), "volume_oid");

    for y in 0..6i64 {
        sharded
            .execute(
                "INSERT INTO volume (title, year) VALUES (?, ?)",
                &Params::positional([Value::Text(format!("vol {y}")), Value::Integer(1990 + y)]),
            )
            .unwrap();
    }
    for v in 1..=6i64 {
        for n in 1..=3i64 {
            sharded
                .execute(
                    "INSERT INTO issue (number, volume_oid) VALUES (?, ?)",
                    &Params::positional([Value::Integer(n), Value::Integer(v)]),
                )
                .unwrap();
        }
    }

    let shard_reads = |repl: &webml_ratio::obs::ReplCounters| -> u64 {
        (0..3).map(|i| repl.reads_for(&format!("shard-{i}"))).sum()
    };

    // the unit-query hot path (`issue WHERE volume_oid = ?`) is
    // single-shard by construction
    let before = shard_reads(&repl);
    let rs = sharded
        .query(
            "SELECT oid, number FROM issue WHERE volume_oid = ? ORDER BY number",
            &Params::positional([Value::Integer(4)]),
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(shard_reads(&repl) - before, 1, "exactly one shard touched");

    // scatter-gather: global Top-K across all shards, counts add
    let before = shard_reads(&repl);
    let rs = sharded
        .query(
            "SELECT title, year FROM volume ORDER BY year DESC LIMIT 2",
            &Params::new(),
        )
        .unwrap();
    assert_eq!(
        shard_reads(&repl) - before,
        3,
        "fan-out touches every shard"
    );
    assert_eq!(rs.first("title"), Some(&Value::Text("vol 5".into())));
    let rs = sharded
        .query("SELECT COUNT(*) FROM issue", &Params::new())
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Integer(18));
}

#[test]
fn leader_vacuum_horizon_is_pinned_to_the_slowest_replica() {
    let dir = TempDir::new("repl-vacuum").unwrap();
    let app = fixtures::bookstore();
    let rd = deploy_replicated(
        &app,
        DeployOptions::default().with_replicas(1),
        &manual(&dir),
    )
    .expect("replicated deploy");
    let wal = Arc::clone(rd.leader.wal.as_ref().unwrap());
    wal.flush_and_notify();
    let replica = &rd.replicas[0];
    let stale_lsn = replica.applied_lsn();
    assert!(stale_lsn > 0);

    // churn versions on the leader without making them durable: the
    // replica stays at `stale_lsn`, so vacuum must not reclaim past it
    rd.leader
        .db
        .execute(
            "INSERT INTO book (title, price) VALUES (:t, :p)",
            &Params::new().bind("t", "churn").bind("p", 1.0),
        )
        .unwrap();
    for i in 0..5 {
        rd.leader
            .db
            .execute(
                "UPDATE book SET price = :p WHERE title = :t",
                &Params::new().bind("p", f64::from(i)).bind("t", "churn"),
            )
            .unwrap();
    }
    rd.leader.db.vacuum();
    assert_eq!(
        rd.leader.obs.db.vacuum_horizon_lsn.get(),
        stale_lsn as i64,
        "horizon must clamp to the lagging replica's applied LSN"
    );

    // once the replica catches up, the horizon advances with it
    wal.flush_and_notify();
    assert!(replica.applied_lsn() > stale_lsn);
    rd.leader.db.vacuum();
    assert!(
        rd.leader.obs.db.vacuum_horizon_lsn.get() > stale_lsn as i64,
        "horizon follows the replica forward"
    );
}

/// One random op applied through the leader's SQL front door.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1i64..8, 0i64..100).prop_map(|(k, v)| Op::Insert(k, v)),
        (1i64..8, 0i64..100).prop_map(|(k, v)| Op::Update(k, v)),
        (1i64..8).prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Re-shipping the whole history — twice, plus an overlapping tail —
    /// leaves a replica byte-identical to one that saw each batch exactly
    /// once: LSN-idempotent apply makes delivery duplication harmless.
    #[test]
    fn duplicated_and_overlapping_batches_converge(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        split in 0usize..30,
    ) {
        let dir = TempDir::new("repl-converge").unwrap();
        let mut cfg = WalConfig::new(dir.path());
        cfg.group_commit_window = Duration::from_secs(3600);
        let wal = Wal::open(cfg, Arc::new(webml_ratio::obs::WalCounters::default())).unwrap();
        let db = Arc::new(Database::new());
        wal.recover_into(&db).unwrap();
        db.set_commit_sink(Arc::clone(&wal) as Arc<dyn webml_ratio::relstore::CommitSink>, false);
        db.execute_script(
            "CREATE TABLE t (oid INTEGER NOT NULL AUTOINCREMENT, k INTEGER, v INTEGER, PRIMARY KEY (oid))",
        ).unwrap();

        let split = split.min(ops.len());
        let mut mid_lsn = 0;
        for (i, op) in ops.iter().enumerate() {
            if i == split {
                wal.flush_and_notify();
                mid_lsn = wal.appended_lsn();
            }
            match op {
                Op::Insert(k, v) => db.execute(
                    "INSERT INTO t (k, v) VALUES (?, ?)",
                    &Params::positional([Value::Integer(*k), Value::Integer(*v)]),
                ),
                Op::Update(k, v) => db.execute(
                    "UPDATE t SET v = ? WHERE k = ?",
                    &Params::positional([Value::Integer(*v), Value::Integer(*k)]),
                ),
                Op::Delete(k) => db.execute(
                    "DELETE FROM t WHERE k = ?",
                    &Params::positional([Value::Integer(*k)]),
                ),
            }.unwrap();
        }
        wal.flush_and_notify();

        let counters = Arc::new(webml_ratio::obs::ReplCounters::new());
        // clean replica: every batch exactly once
        let clean = Replica::new("clean", Arc::new(Database::new()), 0, Arc::clone(&counters));
        wal.replay_from(0, Arc::clone(&clean) as Arc<dyn webml_ratio::wal::LogObserver>).unwrap();
        // messy replica: full history twice, then an overlapping tail
        let messy = Replica::new("messy", Arc::new(Database::new()), 0, Arc::clone(&counters));
        for from in [0, 0, mid_lsn] {
            wal.replay_from(from, Arc::clone(&messy) as Arc<dyn webml_ratio::wal::LogObserver>).unwrap();
        }

        prop_assert!(counters.batches_duplicate.get() > 0, "overlap must be exercised");
        prop_assert_eq!(clean.db().dump(), messy.db().dump());
        prop_assert_eq!(clean.db().dump(), db.dump());
    }
}
