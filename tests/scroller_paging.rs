//! Scroller units end to end: block-wise browsing with pager links, the
//! WebML idiom for long result lists.

use webml_ratio::mvc::{RuntimeOptions, WebRequest};
use webml_ratio::relstore::Params;
use webml_ratio::webml::{Audience, HypertextModel};
use webml_ratio::webratio::Application;

fn scroller_app(block: usize) -> Application {
    let mut er = webml_ratio::er::ErModel::new();
    let product = er
        .add_entity(
            "Product",
            vec![
                webml_ratio::er::Attribute::new("name", webml_ratio::er::AttrType::String)
                    .required(),
            ],
        )
        .unwrap();
    let mut ht = HypertextModel::new();
    let sv = ht.add_site_view("Catalog", Audience::default());
    let page = ht.add_page(sv, None, "Browse");
    ht.set_home(sv, page);
    let s = ht.add_scroller_unit(page, "Products", product, block);
    ht.add_sort(s, "name", true);
    // a multichoice over the same entity on its own page
    let pick = ht.add_page(sv, None, "Pick");
    ht.set_landmark(pick);
    ht.add_multichoice_unit(pick, "Pick products", product);
    Application::new("catalog", er, ht)
}

fn seed(d: &webml_ratio::webratio::Deployment, n: usize) {
    for i in 0..n {
        d.db.execute(
            "INSERT INTO product (name) VALUES (:n)",
            &Params::new().bind("n", format!("Product {i:03}")),
        )
        .unwrap();
    }
}

#[test]
fn scroller_blocks_and_pager_links() {
    let app = scroller_app(10);
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    seed(&d, 25);

    // first block: 10 rows, no prev, has next
    let r = d.handle(&WebRequest::get("/catalog/browse"));
    assert_eq!(r.status, 200);
    assert!(r.body.contains("Product 000"));
    assert!(r.body.contains("Product 009"));
    assert!(!r.body.contains("Product 010"));
    assert!(r.body.contains("1-10 of 25"));
    assert!(!r.body.contains("prev"));
    assert!(r.body.contains("block_offset=10"));

    // middle block
    let r = d.handle(&WebRequest::get("/catalog/browse").with_param("block_offset", "10"));
    assert!(r.body.contains("Product 010"));
    assert!(r.body.contains("11-20 of 25"));
    assert!(r.body.contains("block_offset=0")); // prev
    assert!(r.body.contains("block_offset=20")); // next

    // last (short) block: 5 rows, no next
    let r = d.handle(&WebRequest::get("/catalog/browse").with_param("block_offset", "20"));
    assert!(r.body.contains("Product 024"));
    assert!(r.body.contains("21-25 of 25"));
    assert!(!r.body.contains("next &gt;"));

    // overshoot renders an empty block without error
    let r = d.handle(&WebRequest::get("/catalog/browse").with_param("block_offset", "90"));
    assert_eq!(r.status, 200);
}

#[test]
fn multichoice_renders_checkboxes() {
    let app = scroller_app(50);
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    seed(&d, 4);
    let r = d.handle(&WebRequest::get("/catalog/pick"));
    // one checkbox per row in the multichoice unit
    assert_eq!(
        r.body
            .matches("type=\"checkbox\" name=\"selection\"")
            .count(),
        4
    );
    assert!(r.body.contains("value=\"3\""));
}

#[test]
fn scroller_with_empty_table() {
    let app = scroller_app(10);
    let d = app.deploy(RuntimeOptions::default()).unwrap();
    let r = d.handle(&WebRequest::get("/catalog/browse"));
    assert_eq!(r.status, 200);
    assert!(r.body.contains("0 of 0"));
}
