//! The concurrent serving fast path, end to end over real TCP: HTTP/1.1
//! keep-alive conversations (sequential and pipelined), connection-close
//! negotiation, bounded shutdown under open connections, and the
//! malformed-input suite — multibyte/truncated percent-escapes, oversized
//! header blocks, forged session cookies — which must yield 4xx or a
//! fresh session, never a panic or a wedged worker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use webml_ratio::httpd::{client, ServerConfig};
use webml_ratio::mvc::RuntimeOptions;
use webml_ratio::webratio::{fixtures, Deployment, SESSION_COOKIE};

fn options() -> RuntimeOptions {
    RuntimeOptions {
        bean_cache: true,
        fragment_cache: true,
        fragment_ttl: Duration::from_secs(300),
        ..RuntimeOptions::default()
    }
}

fn bookstore() -> Deployment {
    let d = fixtures::bookstore().deploy(options()).unwrap();
    d.db.execute_script(
        "INSERT INTO book (title, price) VALUES ('TODS primer', 30.0);
         INSERT INTO book (title, price) VALUES ('WebML handbook', 50.0);",
    )
    .unwrap();
    d
}

fn sid_of(resp: &webml_ratio::httpd::HttpResponse) -> Option<String> {
    resp.find_header("set-cookie")
        .and_then(|c| c.split(';').next())
        .and_then(|kv| kv.strip_prefix(&format!("{SESSION_COOKIE}=")))
        .map(str::to_string)
}

// ---- keep-alive conversations ---------------------------------------------

/// One TCP connection carries a whole conversation: N sequential requests,
/// one server-side connection accepted, N requests counted on it.
#[test]
fn keep_alive_reuses_one_connection_for_many_requests() {
    let d = bookstore();
    let server = d.serve_with(0, 2, ServerConfig::default()).unwrap();
    let home = d.home_url("store").unwrap();

    let mut conn = client::Connection::open(server.addr()).unwrap();
    let first = conn.get(&home).unwrap();
    assert_eq!(first.status, 200);
    let sid = sid_of(&first).expect("session minted");
    let cookie = format!("{SESSION_COOKIE}={sid}");

    for _ in 0..9 {
        let r = conn
            .get_with_headers(&home, &[("Cookie", &cookie)])
            .unwrap();
        assert_eq!(r.status, 200);
        // same session throughout the conversation: no new cookie minted
        assert_eq!(sid_of(&r), None, "server re-minted a session mid-conn");
    }

    let counters = server.http_counters();
    assert_eq!(counters.connections.get(), 1, "keep-alive must reuse");
    assert_eq!(counters.requests.get(), 10);
    server.stop();
}

/// Pipelined requests (all written before any response is read) come back
/// complete and in order — bytes of request N+1 buffered behind request N
/// survive worker hand-offs.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let d = bookstore();
    let server = d.serve_with(0, 2, ServerConfig::default()).unwrap();
    let home = d.home_url("store").unwrap();

    let mut conn = client::Connection::open(server.addr()).unwrap();
    let responses = conn.pipeline_get(&[&home, &home, &home, &home]).unwrap();
    assert_eq!(responses.len(), 4);
    for r in &responses {
        assert_eq!(r.status, 200);
        assert!(!r.body.is_empty());
    }
    assert_eq!(server.http_counters().connections.get(), 1);
    assert_eq!(server.http_counters().requests.get(), 4);
    server.stop();
}

/// `Connection: close` in the request is honored: the server answers,
/// closes, and the next request on the same socket fails.
#[test]
fn connection_close_is_negotiated() {
    let d = bookstore();
    let server = d.serve_with(0, 2, ServerConfig::default()).unwrap();
    let home = d.home_url("store").unwrap();

    let mut conn = client::Connection::open(server.addr()).unwrap();
    let r = conn
        .request("GET", &home, &[("Connection", "close")], None)
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(
        r.find_header("connection").map(str::to_ascii_lowercase),
        Some("close".into())
    );
    // the server hung up; the next request on this connection errors
    assert!(conn.get(&home).is_err(), "server should have closed");
    server.stop();
}

/// The per-connection request cap closes long conversations (and counts
/// them), so one client cannot hold a worker forever.
#[test]
fn request_cap_closes_the_conversation() {
    let d = bookstore();
    let server = d
        .serve_with(
            0,
            2,
            ServerConfig {
                max_requests_per_conn: 3,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let home = d.home_url("store").unwrap();

    let mut conn = client::Connection::open(server.addr()).unwrap();
    for _ in 0..2 {
        let r = conn.get(&home).unwrap();
        assert_eq!(r.status, 200);
        assert_ne!(
            r.find_header("connection").map(str::to_ascii_lowercase),
            Some("close".into())
        );
    }
    // request 3 hits the cap: still served, but with Connection: close
    let r = conn.get(&home).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(
        r.find_header("connection").map(str::to_ascii_lowercase),
        Some("close".into())
    );
    assert!(conn.get(&home).is_err());
    assert_eq!(server.http_counters().conn_cap_closes.get(), 1);
    server.stop();
}

/// `stop()` returns promptly even while keep-alive connections are open
/// and idle — shutdown must not wait out idle timeouts.
#[test]
fn shutdown_is_bounded_with_open_connections() {
    let d = bookstore();
    let server = d.serve_with(0, 2, ServerConfig::default()).unwrap();
    let home = d.home_url("store").unwrap();

    // park two live keep-alive connections on the workers
    let mut c1 = client::Connection::open(server.addr()).unwrap();
    let mut c2 = client::Connection::open(server.addr()).unwrap();
    assert_eq!(c1.get(&home).unwrap().status, 200);
    assert_eq!(c2.get(&home).unwrap().status, 200);

    let t0 = Instant::now();
    server.stop();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "stop() took {:?} with open connections",
        t0.elapsed()
    );
    // the parked connections are dead now
    assert!(c1.get(&home).is_err() || c2.get(&home).is_err());
}

// ---- malformed input never panics the serving path ------------------------

/// Send raw bytes on a fresh socket and read whatever comes back.
fn raw_roundtrip(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(bytes).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn status_of(raw: &str) -> Option<u16> {
    raw.split_whitespace().nth(1).and_then(|s| s.parse().ok())
}

/// Percent-escapes that land inside multibyte UTF-8, truncated escapes,
/// and raw high bytes in the request target: every variant gets an HTTP
/// answer (never a worker panic) and the server keeps serving afterwards.
#[test]
fn hostile_percent_escapes_get_answers_not_panics() {
    let d = bookstore();
    let server = d.serve_with(0, 2, ServerConfig::default()).unwrap();
    let home = d.home_url("store").unwrap();

    let hostile = [
        format!("GET {home}?q=%C3%A9 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        format!("GET {home}?q=%C3 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        format!("GET {home}?q=%é HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        format!("GET {home}?%=%%25%2 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        "GET /%C3%A9/%ZZ%1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".to_string(),
    ];
    for req in &hostile {
        let raw = raw_roundtrip(server.addr(), req.as_bytes());
        let status = status_of(&raw).unwrap_or_else(|| panic!("no response to {req:?}"));
        assert!(
            (200..500).contains(&status),
            "{req:?} answered {status} — must be a page or a 4xx, not a 5xx"
        );
    }

    // the pool survived all of it
    let alive = client::get(server.addr(), &home).unwrap();
    assert_eq!(alive.status, 200);
    server.stop();
}

/// A header block over the configured bound draws `431` (read bounded —
/// the server must not buffer the excess) and is counted; the connection
/// closes but the server keeps serving.
#[test]
fn oversized_header_block_draws_431() {
    let d = bookstore();
    let server = d
        .serve_with(
            0,
            2,
            ServerConfig {
                max_header_bytes: 1024,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let home = d.home_url("store").unwrap();

    let mut req = format!("GET {home} HTTP/1.1\r\nHost: x\r\n");
    for i in 0..64 {
        req.push_str(&format!("X-Filler-{i}: {}\r\n", "y".repeat(64)));
    }
    req.push_str("\r\n");
    let raw = raw_roundtrip(server.addr(), req.as_bytes());
    assert_eq!(status_of(&raw), Some(431), "{raw}");
    assert!(server.http_counters().header_overflows.get() >= 1);

    let alive = client::get(server.addr(), &home).unwrap();
    assert_eq!(alive.status, 200);
    server.stop();
}

/// A forged (or long-expired) session cookie is not an error: the
/// controller mints a fresh session and serves the page.
#[test]
fn forged_session_cookie_gets_a_fresh_session() {
    let d = bookstore();
    let server = d.serve_with(0, 2, ServerConfig::default()).unwrap();
    let home = d.home_url("store").unwrap();

    for forged in ["deadbeef", "s-1", "../../etc/passwd", ""] {
        let cookie = format!("{SESSION_COOKIE}={forged}");
        let r = client::get_with_headers(server.addr(), &home, &[("Cookie", &cookie)]).unwrap();
        assert_eq!(r.status, 200, "forged cookie {forged:?} must not error");
        let fresh = sid_of(&r).expect("fresh session minted for forged cookie");
        assert_ne!(fresh, forged);
    }
    server.stop();
}

// ---- observability --------------------------------------------------------

/// The traced server exports the connection-lifecycle counters at
/// `/metrics`, and they reconcile with the traffic that was sent.
#[test]
fn metrics_report_connection_lifecycle() {
    let d = bookstore();
    let server = d.serve_traced(0, 2).unwrap();
    let home = d.home_url("store").unwrap();

    // one keep-alive conversation of 3 requests + one one-shot request
    let mut conn = client::Connection::open(server.addr()).unwrap();
    for _ in 0..3 {
        assert_eq!(conn.get(&home).unwrap().status, 200);
    }
    drop(conn);
    assert_eq!(client::get(server.addr(), &home).unwrap().status, 200);

    let m = client::get(server.addr(), "/metrics").unwrap();
    assert_eq!(m.status, 200);
    let text = String::from_utf8(m.body).unwrap();
    let value = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    // Connections: conversation + one-shot + the /metrics connection
    // (accepted before rendering). Requests: the /metrics request itself
    // is counted only after its response renders, so it reports the 4
    // page requests that preceded it.
    assert_eq!(value("http_connections_total"), 3);
    assert_eq!(value("http_requests_total"), 4);
    server.stop();
}

// ---- C10K reactor: slow-loris, admission control, fd lifecycle -------------

/// A header-dripping client parks in the reactor without holding a worker:
/// with more dribblers than workers, normal requests still get served
/// immediately, and each dribbler draws `408` when its mid-request
/// deadline expires (the deadline is set once per request, not reset per
/// dripped byte).
#[test]
fn slow_loris_parks_threadless_and_draws_408() {
    let d = bookstore();
    let server = d
        .serve_with(
            0,
            2,
            ServerConfig {
                idle_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let home = d.home_url("store").unwrap();

    // 4 dribblers > 2 workers: if dripping held a worker thread, the
    // normal requests below would starve behind them.
    let mut drips: Vec<TcpStream> = (0..4)
        .map(|_| {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.set_nodelay(true).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\nX-Drip: ").unwrap();
            s
        })
        .collect();
    for s in &mut drips {
        s.write_all(b"y").unwrap();
    }
    for _ in 0..4 {
        let r = client::get(server.addr(), &home).unwrap();
        assert_eq!(r.status, 200, "dribblers must not occupy the pool");
    }
    // mid-request expiry: best-effort 408, then close
    for s in &mut drips {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let raw = String::from_utf8_lossy(&out);
        assert_eq!(status_of(&raw), Some(408), "{raw}");
    }
    assert!(server.http_counters().idle_timeouts.get() >= 4);
    server.stop();
}

/// Dripping an ever-growing header block never outruns the header cap:
/// the excess draws `431` even though no terminator ever arrives.
#[test]
fn slow_loris_oversized_drip_draws_431() {
    let d = bookstore();
    let server = d
        .serve_with(
            0,
            2,
            ServerConfig {
                max_header_bytes: 256,
                ..ServerConfig::default()
            },
        )
        .unwrap();

    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n").unwrap();
    for i in 0..24 {
        // 24 × ~24 bytes ≫ 256; dripped in separate segments. The server
        // answers 431 and closes as soon as the cap trips, so later drips
        // may hit a broken pipe — that IS the defense working.
        if s.write_all(format!("X-F{i:02}: {}\r\n", "z".repeat(14)).as_bytes())
            .is_err()
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    let raw = String::from_utf8_lossy(&out);
    assert_eq!(status_of(&raw), Some(431), "{raw}");
    assert!(server.http_counters().header_overflows.get() >= 1);
    server.stop();
}

/// Past the admission budget the server sheds with `503 Retry-After: 1`
/// instead of queueing without bound; shed responses keep the connection
/// usable, every response is a clean 200 or 503, and afterwards the
/// in-flight gauge drains to zero and the fds are all returned.
#[test]
fn admission_budget_sheds_load_end_to_end() {
    let d = bookstore();
    let server = d
        .serve_with(
            0,
            4,
            ServerConfig {
                max_in_flight: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
    let home = d.home_url("store").unwrap();

    let shed = std::sync::atomic::AtomicU64::new(0);
    let ok = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                let mut conn = client::Connection::open(server.addr()).unwrap();
                for _ in 0..50 {
                    let r = conn.get(&home).unwrap();
                    match r.status {
                        200 => ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        503 => {
                            assert_eq!(r.find_header("retry-after"), Some("1"));
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                        }
                        other => panic!("unexpected status {other}"),
                    };
                }
            });
        }
    });
    let ok = ok.load(std::sync::atomic::Ordering::Relaxed);
    let shed = shed.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(ok + shed, 400);
    assert!(ok > 0, "some requests must get through");
    assert!(shed > 0, "8 clients vs budget 1 must shed");
    assert_eq!(server.http_counters().admission_rejects.get(), shed);

    // the storm leaves no residue: in-flight drains, a fresh request works
    let t0 = Instant::now();
    while server.http_counters().in_flight.get() != 0 {
        assert!(t0.elapsed() < Duration::from_secs(5), "in_flight stuck");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(client::get(server.addr(), &home).unwrap().status, 200);
    server.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// fd lifecycle: any interleaving of keep-alive conversations,
    /// one-shot closes, client aborts mid-request, silently idle
    /// connections, and admission-shed bursts leaves the open-fd gauge
    /// back at its baseline of zero once the churn settles — no leaked
    /// sockets on any exit path.
    #[test]
    fn churned_connections_return_open_fds_to_baseline(
        plan in proptest::collection::vec(0u8..5, 4..14),
    ) {
        let d = bookstore();
        let server = d
            .serve_with(
                0,
                2,
                ServerConfig {
                    idle_timeout: Duration::from_millis(200),
                    max_in_flight: 1,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
        let home = d.home_url("store").unwrap();

        // held open on the client side; the server must reap them itself
        let mut idle: Vec<TcpStream> = Vec::new();
        for op in plan {
            match op {
                // keep-alive conversation, then client hangs up (an
                // earlier burst may still be draining, so a shed 503 is a
                // legal answer — the property here is fd accounting)
                0 => {
                    let mut c = client::Connection::open(server.addr()).unwrap();
                    for _ in 0..3 {
                        let status = c.get(&home).unwrap().status;
                        prop_assert!(status == 200 || status == 503, "status {}", status);
                    }
                }
                // one-shot Connection: close request
                1 => {
                    let status = client::get(server.addr(), &home).unwrap().status;
                    prop_assert!(status == 200 || status == 503, "status {}", status);
                }
                // client aborts mid-request (half a header block)
                2 => {
                    let mut s = TcpStream::connect(server.addr()).unwrap();
                    s.write_all(b"GET / HTTP/1.1\r\nX-Half:").unwrap();
                }
                // silent connection left to the idle reaper
                3 => {
                    idle.push(TcpStream::connect(server.addr()).unwrap());
                }
                // concurrent burst over the admission budget: some shed 503
                4 => {
                    std::thread::scope(|scope| {
                        for _ in 0..4 {
                            scope.spawn(|| {
                                if let Ok(r) = client::get(server.addr(), &home) {
                                    assert!(r.status == 200 || r.status == 503);
                                }
                            });
                        }
                    });
                }
                _ => unreachable!(),
            }
        }

        // every accepted socket is eventually closed server-side, on every
        // path: EOF, abort, timeout reap, cap, shed
        let t0 = Instant::now();
        while server.http_counters().open_fds.get() != 0 {
            prop_assert!(
                t0.elapsed() < Duration::from_secs(5),
                "open_fds stuck at {}",
                server.http_counters().open_fds.get()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        prop_assert_eq!(server.http_counters().in_flight.get(), 0);
        drop(idle);
        server.stop();
    }
}
