//! Scatter-gather merge vs. a single-store oracle.
//!
//! A 3-shard [`ShardedStore`] and one plain [`Database`] get the same DDL
//! and the same rows; every fan-out query must come back identical to the
//! unsharded answer. The generator deliberately aims at the merge path's
//! edge cases: NULLs inside ORDER BY keys (ordered by `total_cmp`, NULLs
//! first), OFFSET at and beyond the total row count, DISTINCT under
//! LIMIT pushdown, and COUNT(*) when some shards hold zero rows.

use proptest::prelude::*;
use std::sync::Arc;

use webml_ratio::codegen::ShardKey;
use webml_ratio::obs::ReplCounters;
use webml_ratio::relstore::{Database, Params, Value};
use webml_ratio::repl::ShardedStore;

const DDL: &str = "CREATE TABLE item (\
     oid INTEGER NOT NULL PRIMARY KEY,\
     score FLOAT NULL,\
     grp INTEGER NULL\
     );";

fn stores() -> (ShardedStore, Database) {
    let keys = vec![ShardKey {
        table: "item".into(),
        column: "oid".into(),
        reasons: vec!["merge oracle".into()],
    }];
    let sharded = ShardedStore::bootstrap(3, DDL, &keys, Arc::new(ReplCounters::new())).unwrap();
    let oracle = Database::new();
    oracle.execute_script(DDL).unwrap();
    (sharded, oracle)
}

/// (score, grp) per row; oid is the row index. Small domains force ties,
/// duplicates for DISTINCT, and plenty of NULLs.
fn rows() -> impl Strategy<Value = Vec<(Option<i32>, i32)>> {
    proptest::collection::vec((proptest::option::of(0..4i32), 0..3i32), 0..12)
}

fn load(sharded: &ShardedStore, oracle: &Database, rows: &[(Option<i32>, i32)]) {
    for (oid, (score, grp)) in rows.iter().enumerate() {
        let sql = format!("INSERT INTO item (oid, score, grp) VALUES ({oid}, ?, ?)");
        let params = Params::positional([
            score
                .map(|s| Value::Real(s as f64 * 0.5))
                .unwrap_or(Value::Null),
            Value::Integer(*grp as i64),
        ]);
        sharded.execute(&sql, &params).unwrap();
        oracle.execute(&sql, &params).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fanout_merge_agrees_with_single_store_oracle(
        rows in rows(),
        limit in 0usize..16,
        offset in 0usize..16,
        desc in any::<bool>(),
    ) {
        let (sharded, oracle) = stores();
        load(&sharded, &oracle, &rows);
        let dir = if desc { "DESC" } else { "ASC" };

        // total order (score with NULLs, oid tiebreak) + Top-K pushdown
        let q = format!(
            "SELECT score, oid FROM item ORDER BY score {dir}, oid {dir} \
             LIMIT {limit} OFFSET {offset}"
        );
        let merged = sharded.query(&q, &Params::new()).unwrap();
        let expect = oracle.query(&q, &Params::new()).unwrap();
        prop_assert_eq!(merged.rows(), expect.rows(), "{}", q);

        // DISTINCT under LIMIT: per-shard dedupe + global dedupe must not
        // drop or double-count values that straddle shards
        let q = format!(
            "SELECT DISTINCT score FROM item ORDER BY score {dir} LIMIT {limit} OFFSET {offset}"
        );
        let merged = sharded.query(&q, &Params::new()).unwrap();
        let expect = oracle.query(&q, &Params::new()).unwrap();
        prop_assert_eq!(merged.rows(), expect.rows(), "{}", q);

        // COUNT(*) sums shard-local counts — empty shards contribute zero
        let q = "SELECT COUNT(*) FROM item";
        let merged = sharded.query(q, &Params::new()).unwrap();
        let expect = oracle.query(q, &Params::new()).unwrap();
        prop_assert_eq!(merged.rows(), expect.rows(), "{}", q);

        // predicate fan-out without LIMIT, still merged in global order
        let q = format!("SELECT oid, grp FROM item WHERE grp = 1 ORDER BY oid {dir}");
        let merged = sharded.query(&q, &Params::new()).unwrap();
        let expect = oracle.query(&q, &Params::new()).unwrap();
        prop_assert_eq!(merged.rows(), expect.rows(), "{}", q);
    }
}
