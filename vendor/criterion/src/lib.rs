//! Offline vendored shim for the `criterion` API subset this workspace
//! uses: `Criterion::benchmark_group`, group `sample_size` /
//! `measurement_time` / `throughput` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple wall-clock mean over an adaptively chosen
//! iteration count (no statistics, no HTML reports). Requested
//! measurement times are capped so `cargo bench` stays fast offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation; echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one parameterised benchmark: `function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs closures and records wall-clock time.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    /// Time `f` repeatedly until the measurement budget is used.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: run once to size batches.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let mut batch = (Duration::from_millis(5).as_nanos() / first.as_nanos()).clamp(1, 10_000);

        let start = Instant::now();
        let mut iters: u64 = 1;
        let mut timed = first;
        while start.elapsed() < self.target {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            timed += t.elapsed();
            iters += batch as u64;
            batch = (batch * 2).min(100_000);
        }
        self.iters_done = iters;
        self.elapsed = timed;
    }

    fn mean_ns(&self) -> f64 {
        if self.iters_done == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters_done as f64
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Requested time is capped at 500 ms per benchmark to keep offline
    /// runs quick.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t.min(Duration::from_millis(500));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target: self.measurement_time,
        };
        f(&mut b);
        let mean = b.mean_ns();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 * 1e9 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 * 1e9 / mean)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12}/iter  [{} iters]{}",
            self.name,
            id,
            human_time(mean),
            b.iters_done,
            rate
        );
    }

    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let id = id.to_string();
        self.run_one(&id, f);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F)
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let name = id.to_string();
        self.run_one(&name, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        // `cargo bench` passes `--bench` (and possibly filters); this
        // shim runs everything and ignores argv.
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        let default = self.default_measurement_time;
        BenchmarkGroup {
            criterion: self,
            name,
            measurement_time: default,
            throughput: None,
        }
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.measurement_time(Duration::from_millis(30));
        g.throughput(Throughput::Elements(1));
        let mut total = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                total = total.wrapping_add(1);
                total
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, i| {
            b.iter(|| i * 2)
        });
        g.finish();
        assert!(total > 0);
    }

    #[test]
    fn id_formats_as_function_slash_param() {
        assert_eq!(
            BenchmarkId::new("synthesize", 30).to_string(),
            "synthesize/30"
        );
    }
}
