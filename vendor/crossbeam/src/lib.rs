//! Offline vendored shim for the `crossbeam::channel` API subset this
//! workspace uses: `bounded`/`unbounded` MPMC channels with cloneable
//! senders *and* receivers, blocking `recv`, `try_recv`, and
//! `recv_timeout`. Backed by `Mutex<VecDeque>` + condvars — correctness
//! over raw throughput, which is all the thread pools here need.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// The sending half of a channel; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value without blocking: fails with
        /// [`TrySendError::Full`] when a bounded channel is at capacity
        /// and [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = match self.inner.queue.lock() {
                Ok(q) => q,
                Err(e) => e.into_inner(),
            };
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Send a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = match self.inner.queue.lock() {
                Ok(q) => q,
                Err(e) => e.into_inner(),
            };
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = match self.inner.not_full.wait(queue) {
                            Ok(q) => q,
                            Err(e) => e.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::SeqCst) == 0
        }

        /// Receive a value, blocking until one is available or every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = match self.inner.queue.lock() {
                Ok(q) => q,
                Err(e) => e.into_inner(),
            };
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = match self.inner.not_empty.wait(queue) {
                    Ok(q) => q,
                    Err(e) => e.into_inner(),
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = match self.inner.queue.lock() {
                Ok(q) => q,
                Err(e) => e.into_inner(),
            };
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = match self.inner.queue.lock() {
                Ok(q) => q,
                Err(e) => e.into_inner(),
            };
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = match self.inner.not_empty.wait_timeout(queue, deadline - now) {
                    Ok(r) => r,
                    Err(e) => e.into_inner(),
                };
                queue = q;
            }
        }

        pub fn len(&self) -> usize {
            match self.inner.queue.lock() {
                Ok(q) => q.len(),
                Err(e) => e.into_inner().len(),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// A bounded MPMC channel (capacity 0 behaves as capacity 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn mpmc_fan_out() {
        let (tx, rx) = unbounded::<u64>();
        let mut workers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            workers.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            }));
        }
        drop(rx);
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_fails_after_senders_gone() {
        let (tx, rx) = bounded::<u8>(4);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }
}
