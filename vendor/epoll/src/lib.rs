//! Offline vendored shim: a thin safe wrapper over the Linux `epoll` and
//! `eventfd` syscalls — the API subset the httpd readiness reactor needs.
//!
//! No registry access in this container, so instead of pulling `mio` or
//! the `libc` crate we declare the five syscall entry points ourselves
//! against the C library std already links. The surface is deliberately
//! small: one [`Epoll`] instance per reactor, oneshot (re)registration of
//! interest, a blocking-with-timeout [`Epoll::wait`], and a [`WakeFd`]
//! (eventfd) for cross-thread wakeups.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

// epoll event mask bits (from <sys/epoll.h>).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// Mirror of `struct epoll_event`. The kernel ABI packs it on x86-64
/// (12 bytes); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable (or peer half-closed: `EPOLLRDHUP` is always armed too).
    Read,
    /// Writable.
    Write,
}

impl Interest {
    fn mask(self) -> u32 {
        match self {
            Interest::Read => EPOLLIN | EPOLLRDHUP,
            Interest::Write => EPOLLOUT,
        }
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `token` the fd was registered with.
    pub token: u64,
    /// `EPOLLIN` / `EPOLLRDHUP`: bytes (or EOF) are waiting.
    pub readable: bool,
    /// `EPOLLOUT`: the socket send buffer has room again.
    pub writable: bool,
    /// `EPOLLERR` / `EPOLLHUP`: the fd is dead; close it.
    pub error: bool,
}

/// A level-triggered epoll instance.
pub struct Epoll {
    fd: RawFd,
}

// The fd is just an integer capability; epoll syscalls are thread-safe.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token`. With `oneshot`, the registration
    /// disarms after one notification and must be re-armed with
    /// [`Epoll::rearm`] — the hand-a-conn-to-one-worker discipline.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest, oneshot: bool) -> io::Result<()> {
        let mut events = interest.mask() | EPOLLERR | EPOLLHUP;
        if oneshot {
            events |= EPOLLONESHOT;
        }
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arm (or change interest of) an existing oneshot registration.
    pub fn rearm(
        &self,
        fd: RawFd,
        token: u64,
        interest: Interest,
        oneshot: bool,
    ) -> io::Result<()> {
        let mut events = interest.mask() | EPOLLERR | EPOLLHUP;
        if oneshot {
            events |= EPOLLONESHOT;
        }
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove a registration (closing the fd does this implicitly; the
    /// explicit form exists for fds that outlive their registration).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// lapses (`None` = forever). Appends up to `events.capacity()`
    /// notifications into the cleared `events` buffer.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let cap = events.capacity().clamp(1, 1024) as i32;
        let mut raw = [EpollEvent { events: 0, data: 0 }; 1024];
        // Round up so a deadline 0.4ms out does not busy-spin at 0ms.
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
        };
        let n = loop {
            let rc = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), cap, timeout_ms) };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the same (coarse) timeout.
        };
        for r in raw.iter().take(n) {
            let bits = r.events;
            events.push(Event {
                token: r.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

impl AsRawFd for Epoll {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

/// An `eventfd`-backed wakeup pipe: any thread calls [`WakeFd::wake`],
/// the reactor sees the fd readable and [`WakeFd::drain`]s it.
pub struct WakeFd {
    fd: RawFd,
}

unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

impl WakeFd {
    pub fn new() -> io::Result<WakeFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// Make the fd readable (coalesces: N wakes before a drain read once).
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, &one as *const u64 as *const u8, 8);
        }
    }

    /// Consume pending wakeups so the level-triggered fd goes quiet.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

impl AsRawFd for WakeFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wakefd_round_trip() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.as_raw_fd(), 7, Interest::Read, false).unwrap();
        let mut events = Vec::with_capacity(8);
        // nothing pending: times out empty
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        wake.wake();
        wake.wake();
        let n = ep.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        wake.drain();
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drain must quiesce the eventfd");
    }

    #[test]
    fn oneshot_socket_readiness_disarms_and_rearms() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, Interest::Read, true)
            .unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Vec::with_capacity(8);
        let n = ep.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // oneshot: without a rearm the (still readable) fd stays silent
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "oneshot registration must disarm");

        // rearm: level-triggered, the unread byte fires immediately
        ep.rearm(server.as_raw_fd(), 42, Interest::Read, true)
            .unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        let got = (&server).read(&mut buf).unwrap();
        assert_eq!(got, 1);
    }

    #[test]
    fn write_interest_reports_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(client.as_raw_fd(), 1, Interest::Write, true)
            .unwrap();
        let mut events = Vec::with_capacity(8);
        let n = ep.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);
    }
}
