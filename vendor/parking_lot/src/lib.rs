//! Offline vendored shim for the `parking_lot` API subset this workspace
//! uses: `Mutex::lock`, `RwLock::{read, write}` — non-poisoning, backed by
//! `std::sync`. Poisoned locks are transparently recovered, matching
//! parking_lot's semantics of not propagating panics to other threads.

use std::sync;
// Real parking_lot exports its guard types; the shim re-exports std's,
// which are what `lock`/`read`/`write` hand back.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let mut hs = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            hs.push(std::thread::spawn(move || *l.read()));
        }
        for h in hs {
            assert_eq!(h.join().unwrap(), 7);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() = 5; // must not panic
        assert_eq!(*m.lock(), 5);
    }
}
