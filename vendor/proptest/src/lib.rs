//! Offline vendored shim for the `proptest` API subset this workspace
//! uses: the `proptest!` / `prop_assert*` / `prop_oneof!` macros, `any`,
//! `Just`, range and regex-literal strategies, tuple strategies,
//! `collection::vec`, `option::of`, `char::range`, `prop_map`,
//! `prop_filter`, `boxed`, `ProptestConfig`, and `TestCaseError`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (file + test name + case index) and there
//! is **no shrinking** — a failing case panics with the generated
//! arguments printed, which is enough to reproduce since generation is
//! deterministic.

use std::ops::Range;
use std::rc::Rc;

// ---- deterministic test RNG -------------------------------------------------

/// Splitmix64-based generator seeded per (test, case).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(file: &str, test: &str, case: u32) -> TestRng {
        // FNV-1a over the identifying strings, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(test.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

// ---- errors & config --------------------------------------------------------

/// A failed test case (assertion failure or explicit `fail`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// ---- the Strategy trait -----------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Regenerate until `pred` passes (bounded; panics if the predicate
    /// almost never holds — same spirit as proptest's rejection limit).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy (cloneable; single-threaded use).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased uniform choice — the engine behind [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// ---- primitive strategies ---------------------------------------------------

/// Full-domain generation, `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

// ---- tuple strategies -------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---- regex-literal string strategies ----------------------------------------

enum Atom {
    /// Inclusive char ranges (single chars are `(c, c)`).
    Class(Vec<(char, char)>),
    /// `.` — printable ASCII here.
    AnyChar,
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated char class in pattern");
        match c {
            ']' => {
                if let Some(p) = pending {
                    out.push((p, p));
                }
                return out;
            }
            '-' => {
                // Range if we have a pending start and a non-']' follow.
                match (pending.take(), chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        out.push((lo, hi));
                    }
                    (p, _) => {
                        if let Some(p) = p {
                            out.push((p, p));
                        }
                        out.push(('-', '-'));
                    }
                }
            }
            c => {
                if let Some(p) = pending.replace(c) {
                    out.push((p, p));
                }
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            if let Some((lo, hi)) = spec.split_once(',') {
                let lo: usize = lo.trim().parse().expect("bad quantifier");
                if hi.trim().is_empty() {
                    (lo, lo + 8)
                } else {
                    (lo, hi.trim().parse().expect("bad quantifier"))
                }
            } else {
                let n: usize = spec.trim().parse().expect("bad quantifier");
                (n, n)
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '.' => Atom::AnyChar,
            '\\' => {
                let esc = chars.next().expect("dangling escape in pattern");
                Atom::Class(vec![(esc, esc)])
            }
            c => Atom::Class(vec![(c, c)]),
        };
        let (min, max) = parse_quantifier(&mut chars);
        atoms.push(Quantified { atom, min, max });
    }
    atoms
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::AnyChar => char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap(),
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let size = (*hi as u64) - (*lo as u64) + 1;
                if pick < size {
                    return char::from_u32(*lo as u32 + pick as u32).expect("bad class range");
                }
                pick -= size;
            }
            unreachable!()
        }
    }
}

/// `&'static str` as a regex-subset string strategy (char classes, `.`,
/// `{m,n}` / `{n}` / `*` / `+` / `?`, literals).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for q in &atoms {
            let n = if q.max > q.min {
                q.min + rng.below((q.max - q.min + 1) as u64) as usize
            } else {
                q.min
            };
            for _ in 0..n {
                out.push(generate_atom(&q.atom, rng));
            }
        }
        out
    }
}

// ---- combinator modules -----------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `of(strategy)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod char {
    use super::{Strategy, TestRng};

    pub struct CharRange {
        start: u32,
        end: u32,
    }

    /// Uniform char in `[start, end]` (inclusive, like proptest).
    pub fn range(start: ::core::primitive::char, end: ::core::primitive::char) -> CharRange {
        CharRange {
            start: start as u32,
            end: end as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
            let span = (self.end - self.start + 1) as u64;
            ::core::primitive::char::from_u32(self.start + rng.below(span) as u32)
                .expect("invalid char range")
        }
    }
}

// ---- macros -----------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The test harness macro. Supports an optional
/// `#![proptest_config(...)]` header and any number of `#[test] fn
/// name(arg in strategy, ...) { body }` items (doc comments and other
/// attributes pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(file!(), stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let formatted_args: Vec<String> = vec![
                    $(format!(concat!("  ", stringify!($arg), " = {:?}"), &$arg)),*
                ];
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\nwith inputs:\n{}",
                        case + 1,
                        config.cases,
                        e,
                        formatted_args.join("\n")
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---- self tests -------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::for_case("f", "t", 0);
        let s = (0u8..6, 0i64..50, "[a-z]{1,4}");
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 6);
            assert!((0..50).contains(&b));
            assert!((1..=4).contains(&c.len()));
            assert!(c.chars().all(|ch| ch.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_classes_with_literals() {
        let mut rng = TestRng::for_case("f", "t2", 0);
        for _ in 0..300 {
            let s = "[a-zA-Z][a-zA-Z0-9_.-]{0,10}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic());
            for c in s.chars().skip(1) {
                assert!(
                    c.is_ascii_alphanumeric() || "_.-".contains(c),
                    "bad char {c:?}"
                );
            }
            let t = "[a-c%_]{0,8}".generate(&mut rng);
            for c in t.chars() {
                assert!(('a'..='c').contains(&c) || c == '%' || c == '_');
            }
        }
    }

    #[test]
    fn oneof_map_filter_box() {
        let mut rng = TestRng::for_case("f", "t3", 0);
        let s = prop_oneof![
            Just(0u32),
            (1u32..10).prop_map(|v| v * 100),
            any::<u32>().prop_filter("even", |v| v % 2 == 0),
        ]
        .boxed();
        let mut saw_zero = false;
        let mut saw_hundreds = false;
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            if v == 0 {
                saw_zero = true;
            }
            if (100..1000).contains(&v) && v.is_multiple_of(100) {
                saw_hundreds = true;
            }
        }
        assert!(saw_zero && saw_hundreds);
    }

    #[test]
    fn collection_and_option() {
        let mut rng = TestRng::for_case("f", "t4", 0);
        let s = crate::collection::vec(crate::option::of(0u8..3), 2..5);
        let mut saw_none = false;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            saw_none |= v.iter().any(|o| o.is_none());
        }
        assert!(saw_none);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself: args bind, asserts return Err, harness loops.
        #[test]
        fn macro_end_to_end(a in 0usize..10, b in any::<bool>(), s in "[a-z]{0,3}") {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a + 1, a);
            prop_assert!(s.len() <= 3, "len was {}", s.len());
        }
    }

    proptest! {
        #[test]
        fn char_range_inclusive(c in crate::char::range('a', 'c')) {
            prop_assert!(('a'..='c').contains(&c));
        }
    }
}
