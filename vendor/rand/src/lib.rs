//! Offline vendored shim for the `rand` API subset this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen_range` (over `Range`/`RangeInclusive` of the integer types
//! used here), `gen_bool`, and `gen::<u64>()`-style raw draws. Backed by a
//! splitmix64 generator — statistically fine for tests and benches, not
//! cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range usable with [`Rng::gen_range`]; mirrors real rand's
/// `SampleRange<T>` so type inference behaves identically.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        // 53 bits of mantissa is plenty for test workloads.
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64: tiny, fast, passes basic statistical tests. Stands in
    /// for rand's `StdRng` (which is seed-stable only per rand version
    /// anyway, so no compatibility is lost for this workspace's tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..=6usize);
            assert!((3..=6).contains(&v));
            let w = r.gen_range(0..10i64);
            assert!((0..10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
