//! Offline vendored shim for the `serde_json` API subset this workspace
//! uses: [`Value`] with `Null`/`Array`/`Object` constructible variants and
//! the usual `as_*`/`get`/`is_null` accessors, [`Map`], the [`json!`]
//! macro, [`from_str`] (to `Value`), and `Display` producing compact JSON.
//! No serde derive machinery — the workspace only marshals dynamically
//! typed values across the app-server boundary.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. Real serde_json defaults to a BTreeMap too
/// (without `preserve_order`), so key ordering matches.
pub type Map = BTreeMap<String, Value>;

/// A dynamically typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integer-valued number (parsed without fraction/exponent).
    Int(i64),
    /// Any other number.
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (no array indexing — unused here).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

// ---- construction (`json!` support) ---------------------------------------

/// Conversion into [`Value`] for everything `json!` call sites interpolate.
pub trait IntoJson {
    fn into_json(self) -> Value;
}

#[doc(hidden)]
pub fn to_value<T: IntoJson>(v: T) -> Value {
    v.into_json()
}

impl IntoJson for Value {
    fn into_json(self) -> Value {
        self
    }
}

impl IntoJson for &Value {
    fn into_json(self) -> Value {
        self.clone()
    }
}

impl IntoJson for bool {
    fn into_json(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoJson for &bool {
    fn into_json(self) -> Value {
        Value::Bool(*self)
    }
}

impl IntoJson for &str {
    fn into_json(self) -> Value {
        Value::String(self.to_string())
    }
}

impl IntoJson for String {
    fn into_json(self) -> Value {
        Value::String(self)
    }
}

impl IntoJson for &String {
    fn into_json(self) -> Value {
        Value::String(self.clone())
    }
}

impl IntoJson for f64 {
    fn into_json(self) -> Value {
        Value::Float(self)
    }
}

impl IntoJson for &f64 {
    fn into_json(self) -> Value {
        Value::Float(*self)
    }
}

impl IntoJson for f32 {
    fn into_json(self) -> Value {
        Value::Float(self as f64)
    }
}

macro_rules! impl_into_json_int {
    ($($t:ty),*) => {$(
        impl IntoJson for $t {
            fn into_json(self) -> Value {
                Value::Int(self as i64)
            }
        }
        impl IntoJson for &$t {
            fn into_json(self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_into_json_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: IntoJson> IntoJson for Vec<T> {
    fn into_json(self) -> Value {
        Value::Array(self.into_iter().map(IntoJson::into_json).collect())
    }
}

impl<T: IntoJson + Clone> IntoJson for &Vec<T> {
    fn into_json(self) -> Value {
        Value::Array(self.iter().cloned().map(IntoJson::into_json).collect())
    }
}

impl<T: IntoJson> IntoJson for Option<T> {
    fn into_json(self) -> Value {
        match self {
            Some(v) => v.into_json(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] from an object/array literal. Supports the subset
/// this workspace uses: flat `{ "key": expr, ... }` objects, `[expr, ...]`
/// arrays, and bare expressions (via [`IntoJson`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value($elem) ),* ])
    };
    ({ $( $k:literal : $v:expr ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($k).to_string(), $crate::to_value($v)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value($other) };
}

// ---- printing --------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognisable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(v, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(self, &mut s);
        f.write_str(&s)
    }
}

// ---- parsing ----------------------------------------------------------------

/// Parse error, with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error {
            msg: msg.to_string(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => self.err("unexpected character"),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error {
                msg: "bad \\u escape".into(),
                offset: self.pos,
            })?
            .to_string();
        let v = u16::from_str_radix(&s, 16).map_err(|_| Error {
            msg: "bad \\u escape".into(),
            offset: self.pos,
        })?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let cp = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi as u32)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| Error {
                        msg: "invalid utf-8".into(),
                        offset: self.pos,
                    })?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return self.err("control character in string");
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            match text.parse::<f64>() {
                Ok(f) => Ok(Value::Float(f)),
                Err(_) => self.err("bad number"),
            }
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // integer overflow: fall back to float like serde_json's
                // arbitrary_precision-less behaviour for u64 is close enough
                Err(_) => match text.parse::<f64>() {
                    Ok(f) => Ok(Value::Float(f)),
                    Err(_) => self.err("bad number"),
                },
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = json!({
            "page": "home",
            "n": 42,
            "neg": -7,
            "pi": 2.5,
            "flag": true,
            "none": Value::Null,
            "items": vec![json!([1, 2]), json!("x")],
            "text": "a\"b\\c\nd",
        });
        let s = v.to_string();
        let back = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn accessors() {
        let v = from_str(r#"{"a": [1, 2.5, "s", true, null]}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[1].as_i64(), None);
        assert_eq!(a[2].as_str(), Some("s"));
        assert_eq!(a[3].as_bool(), Some(true));
        assert!(a[4].is_null());
        assert!(v.as_object().is_some());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes() {
        let v = from_str(r#""tab\tnl\nuA pair😀""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\tnl\nuA pair😀"));
        // control chars print escaped
        let s = Value::String("\u{1}".into()).to_string();
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn float_stays_float() {
        let v = Value::Float(2.0);
        assert_eq!(v.to_string(), "2.0");
        assert_eq!(from_str("2.0").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn option_and_refs_interpolate() {
        let some: Option<Value> = Some(json!(1));
        let none: Option<Value> = None;
        let n = 5usize;
        let v = json!({ "s": some, "n": none, "count": &n, "blob": &vec![1u8, 2u8] });
        assert_eq!(v.get("s").unwrap().as_i64(), Some(1));
        assert!(v.get("n").unwrap().is_null());
        assert_eq!(v.get("count").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("blob").unwrap().as_array().unwrap().len(), 2);
    }
}
