#!/usr/bin/env bash
# Gate for every PR: formatting, lints, and the tier-1 test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== wal fault-injection smoke (crash-point matrix + recovery properties)"
cargo test -p wal --release -q

echo "== analyze smoke (mutation matrix + analyzer over every shipped app)"
cargo test -p analyze --release -q
cargo run --release --example analyze > /dev/null

echo "== serving-path smoke (keep-alive grid + cache microbench, reduced load)"
cargo run -p bench --release --bin exp_serving -- --smoke

echo "== query-planner smoke (derived indexes, hash join, Top-K; reduced dataset)"
cargo run -p bench --release --bin exp_query -- --smoke

echo "== tier-1 tests (root package: unit + integration + property suites)"
cargo test --release -q

echo "verify.sh: all green"
