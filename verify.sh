#!/usr/bin/env bash
# Gate for every PR: formatting, lints, and the tier-1 test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== wal fault-injection smoke (crash-point matrix + recovery properties)"
cargo test -p wal --release -q

echo "== analyze smoke (mutation matrix + analyzer over every shipped app)"
cargo test -p analyze --release -q
cargo run --release --example analyze > /dev/null

echo "== distribution-analysis smoke (AZ4xx at Deny over shipped apps, replicated + sharded)"
cargo test --release -q --test distribution

echo "== serving-path smoke (reactor mode: keep-alive grid, C10K fan-in, 503-admission shed, cache microbench)"
cargo run -p bench --release --bin exp_serving -- --smoke

echo "== 503-admission smoke (budget sheds with Retry-After, fds drain to baseline)"
cargo test --release -q --test serving admission_budget_sheds_load_end_to_end

echo "== query-planner smoke (derived indexes, hash join, Top-K; reduced dataset)"
cargo run -p bench --release --bin exp_query -- --smoke

echo "== MVCC smoke (snapshot reads vs one slow open writer; throughput + p95 gates)"
cargo run -p bench --release --bin exp_mvcc -- --smoke

echo "== replication smoke (read scale-out, read-your-writes, shard routing gates)"
cargo run -p bench --release --bin exp_repl -- --smoke

echo "== maintenance smoke (WAL bean patching, dirty-fragment re-render, conditional GET)"
cargo run -p bench --release --bin exp_maint -- --smoke

echo "== MVCC seeded-schedule stress (snapshot-isolation properties under three seeds)"
for seed in 1 20030108 "${RELSTORE_STRESS_SEED:-3224275387}"; do
  RELSTORE_STRESS_SEED="$seed" \
    cargo test -p relstore --release -q --test concurrent seeded_schedule_stress
done

echo "== tier-1 tests (root package: unit + integration + property suites)"
cargo test --release -q

echo "verify.sh: all green"
